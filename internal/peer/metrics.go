package peer

// Node instrumentation. Every instrument is nil when Config.Metrics is
// unset, and all metrics.* methods are no-ops on nil receivers, so the
// serving hot path pays nothing for an uninstrumented node.

import (
	"asymshare/internal/fairshare"
	"asymshare/internal/metrics"
)

// Exported peer metric names (see DESIGN.md §7).
const (
	MetricConnections    = "peer_connections_total"
	MetricConnsActive    = "peer_connections_active"
	MetricConnsShed      = "peer_connections_shed_total"
	MetricAcceptErrors   = "peer_accept_errors_total"
	MetricStreamsActive  = "peer_streams_active"
	MetricCapacity       = "peer_capacity_bytes_per_second"
	MetricGrantedRate    = "peer_granted_rate_bytes_per_second"
	MetricReallocDur     = "peer_realloc_duration_seconds"
	MetricServedBytes    = "peer_served_bytes_total"
	MetricServedRate     = "peer_served_bytes_rate"
	MetricStoredBytes    = "peer_stored_bytes_total"
	MetricFeedback       = "peer_feedback_reports_total"
	MetricAuditsAnswered = "peer_audit_challenges_total"
	MetricAuditSampled   = "peer_audit_messages_sampled_total"
	MetricAuditHeld      = "peer_audit_messages_held_total"

	// Overload-resilience families (DESIGN.md §15).
	MetricOverloadSheds    = "overload_sheds_total"
	MetricOverloadPreempts = "overload_preempts_total"
	MetricOverloadExpired  = "overload_expired_total"
	MetricOverloadBrownout = "overload_brownout_active"
	MetricOverloadAdmitted = "overload_admitted_total"

	// Ratelimit families shared by every stream bucket of the node.
	MetricWaitSeconds = "ratelimit_wait_seconds"
	MetricThrottled   = "ratelimit_throttle_events_total"
)

// nodeMetrics holds one node's instruments. grants caches the
// per-requester granted-rate gauges; it is only touched under n.mu
// (from reallocateLocked), so it needs no lock of its own.
type nodeMetrics struct {
	reg *metrics.Registry

	conns        *metrics.Counter
	connsActive  *metrics.Gauge
	connsShed    *metrics.Counter
	acceptErrors *metrics.Counter

	streamsActive *metrics.Gauge
	capacity      *metrics.Gauge
	reallocDur    *metrics.Histogram
	grants        map[fairshare.ID]*metrics.Gauge

	servedBytes *metrics.Counter
	servedRate  *metrics.Rate
	storedBytes *metrics.Counter
	feedback    *metrics.Counter

	auditsAnswered *metrics.Counter
	auditSampled   *metrics.Counter
	auditHeld      *metrics.Counter

	overloadSheds    *metrics.Counter
	overloadPreempts *metrics.Counter
	overloadExpired  *metrics.Counter
	overloadBrownout *metrics.Gauge
	overloadAdmitted *metrics.Counter

	waitSeconds *metrics.Histogram
	throttled   *metrics.Counter
}

func newNodeMetrics(reg *metrics.Registry) nodeMetrics {
	return nodeMetrics{
		reg:            reg,
		conns:          reg.Counter(MetricConnections, "Connections accepted."),
		connsActive:    reg.Gauge(MetricConnsActive, "Connections currently open."),
		connsShed:      reg.Counter(MetricConnsShed, "Connections closed immediately because MaxConns was reached."),
		acceptErrors:   reg.Counter(MetricAcceptErrors, "Transient listener accept failures (retried with backoff)."),
		streamsActive:  reg.Gauge(MetricStreamsActive, "Download streams currently being served."),
		capacity:       reg.Gauge(MetricCapacity, "Upload capacity divided by the last realloc tick (configured or estimated)."),
		reallocDur:     reg.Histogram(MetricReallocDur, "Time to recompute all stream rates (Eq. 2 allocation).", metrics.UnitSeconds),
		grants:         make(map[fairshare.ID]*metrics.Gauge),
		servedBytes:    reg.Counter(MetricServedBytes, "Message bytes served to downloaders."),
		servedRate:     reg.Rate(MetricServedRate, "EWMA upload rate, bytes/second.", metrics.DefaultRateHalfLife),
		storedBytes:    reg.Counter(MetricStoredBytes, "Message bytes accepted via PUT."),
		feedback:       reg.Counter(MetricFeedback, "Owner feedback reports folded into the ledger."),
		auditsAnswered: reg.Counter(MetricAuditsAnswered, "Audit challenges answered."),
		overloadSheds:  reg.Counter(MetricOverloadSheds, "Download requests refused or preempted with BUSY under overload."),
		overloadPreempts: reg.Counter(MetricOverloadPreempts,
			"Active streams preempted in favor of a higher-standing requester."),
		overloadExpired: reg.Counter(MetricOverloadExpired,
			"Streams dropped because the requester's propagated deadline passed."),
		overloadBrownout: reg.Gauge(MetricOverloadBrownout,
			"1 while the node serves with halved batch sizes (brownout), 0 otherwise."),
		overloadAdmitted: reg.Counter(MetricOverloadAdmitted,
			"Download streams admitted by the bounded admission check."),
		auditSampled: reg.Counter(MetricAuditSampled, "Messages probed by incoming audit challenges."),
		auditHeld:    reg.Counter(MetricAuditHeld, "Probed messages the store still held."),
		waitSeconds:  reg.Histogram(MetricWaitSeconds, "Time send loops spent blocked in the token bucket.", metrics.UnitSeconds),
		throttled:    reg.Counter(MetricThrottled, "Shaped sends that had to block for tokens."),
	}
}

// grantGauge returns the cached granted-rate gauge for a requester,
// creating it on first sight. Callers hold n.mu. Returns nil when the
// node is uninstrumented.
func (m *nodeMetrics) grantGauge(id fairshare.ID) *metrics.Gauge {
	if m.reg == nil {
		return nil
	}
	if g, ok := m.grants[id]; ok {
		return g
	}
	g := m.reg.Gauge(MetricGrantedRate,
		"Upload bandwidth currently granted to each requester by the allocator.",
		metrics.L("requester", id))
	m.grants[id] = g
	return g
}
