package peer_test

// End-to-end data modification (Sec. VI-A): the owner pushes delta
// messages over the wire; peers patch their stored messages in place;
// the user then fetches the NEW version, authenticated by recomputed
// digests.

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"asymshare/internal/client"
	"asymshare/internal/peer"
	"asymshare/internal/rlnc"
	"asymshare/internal/store"
)

func TestPatchThenFetchNewVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	params := smallParams(t, 8, 64, 512)
	oldData := make([]byte, 512)
	rng.Read(oldData)
	newData := bytes.Clone(oldData)
	copy(newData[100:130], bytes.Repeat([]byte{0xEE}, 30)) // in-place edit

	owner := identity(t, 230)
	c, err := client.New(owner, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	oldEnc, err := rlnc.NewEncoder(params, 88, testSecret(), oldData)
	if err != nil {
		t.Fatal(err)
	}
	newEnc, err := rlnc.NewEncoder(params, 88, testSecret(), newData)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := rlnc.NewDeltaEncoder(params, 88, testSecret(), oldData, newData)
	if err != nil {
		t.Fatal(err)
	}

	var addrs []string
	newDigests := make(map[uint64]rlnc.Digest)
	for i := 0; i < 2; i++ {
		node := startPeer(t, peer.Config{Identity: identity(t, byte(231+i)), Store: store.NewMemory()})
		batch, err := oldEnc.BatchForPeer(i, params.K)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Disseminate(ctx, node.Addr().String(), batch); err != nil {
			t.Fatal(err)
		}
		// Owner computes deltas for exactly the ids this peer holds and
		// records the new-version digests for the manifest.
		deltas := make([]*rlnc.Message, 0, len(batch))
		for _, msg := range batch {
			deltas = append(deltas, delta.Delta(msg.MessageID))
			newDigests[msg.MessageID] = newEnc.Message(msg.MessageID).Digest()
		}
		if err := c.Patch(ctx, node.Addr().String(), deltas); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, node.Addr().String())
	}

	got, stats, err := c.FetchGeneration(ctx, addrs, params, 88, testSecret(), newDigests)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Fatal("fetched data is not the new version")
	}
	if stats.Rejected != 0 {
		t.Errorf("rejected = %d; patched messages should verify against new digests", stats.Rejected)
	}
}

func TestPatchRejectedFromNonOwner(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	params := smallParams(t, 4, 32, 128)
	data := make([]byte, 128)
	rng.Read(data)
	enc, err := rlnc.NewEncoder(params, 77, testSecret(), data)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := enc.BatchForPeer(0, params.K)
	if err != nil {
		t.Fatal(err)
	}

	node := startPeer(t, peer.Config{Identity: identity(t, 240), Store: store.NewMemory()})
	owner, err := client.New(identity(t, 241), nil)
	if err != nil {
		t.Fatal(err)
	}
	intruder, err := client.New(identity(t, 242), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := owner.Disseminate(ctx, node.Addr().String(), batch); err != nil {
		t.Fatal(err)
	}

	// A different identity may neither patch nor overwrite the file.
	forged := batch[0].Clone()
	forged.Payload[0] ^= 1
	if err := intruder.Patch(ctx, node.Addr().String(), []*rlnc.Message{forged}); err == nil {
		t.Error("non-owner patch accepted")
	}
	if err := intruder.Disseminate(ctx, node.Addr().String(), []*rlnc.Message{forged}); err == nil {
		t.Error("non-owner overwrite accepted")
	}
	// The stored data is untouched: the owner still fetches the
	// original bytes.
	got, _, err := owner.FetchGeneration(ctx, []string{node.Addr().String()}, params, 77, testSecret(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stored data was corrupted by non-owner")
	}
}

func TestPatchUnknownMessageFails(t *testing.T) {
	node := startPeer(t, peer.Config{Identity: identity(t, 243), Store: store.NewMemory()})
	c, err := client.New(identity(t, 244), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	delta := &rlnc.Message{FileID: 5, MessageID: 9, Payload: []byte{1, 2}}
	if err := c.Patch(ctx, node.Addr().String(), []*rlnc.Message{delta}); err == nil {
		t.Error("patch for unknown message accepted")
	}
}

func TestListFiles(t *testing.T) {
	node := startPeer(t, peer.Config{Identity: identity(t, 245), Store: store.NewMemory()})
	c, err := client.New(identity(t, 246), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Empty store lists empty.
	files, err := c.ListFiles(ctx, node.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Errorf("empty store list = %v", files)
	}
	// Store two generations.
	msgs := []*rlnc.Message{
		{FileID: 10, MessageID: 1, Payload: []byte{1}},
		{FileID: 10, MessageID: 2, Payload: []byte{2}},
		{FileID: 20, MessageID: 1, Payload: []byte{3}},
	}
	if err := c.Disseminate(ctx, node.Addr().String(), msgs); err != nil {
		t.Fatal(err)
	}
	files, err = c.ListFiles(ctx, node.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("list = %v", files)
	}
	if files[0].FileID != 10 || files[0].Messages != 2 || files[1].FileID != 20 || files[1].Messages != 1 {
		t.Errorf("list contents = %v", files)
	}
}
