package peer_test

// Protocol-robustness tests: a peer confronted with malformed or
// out-of-order frames must fail the offending connection cleanly and
// keep serving others.

import (
	"net"
	"testing"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/peer"
	"asymshare/internal/rlnc"
	"asymshare/internal/store"
	"asymshare/internal/wire"
)

// dialAuthed opens an authenticated user connection to the node.
func dialAuthed(t *testing.T, node *peer.Node, user *auth.Identity) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", node.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.InitiatorHandshake(conn, user, wire.RoleUser, nil); err != nil {
		t.Fatal(err)
	}
	return conn
}

func TestPeerRejectsGarbageBeforeHandshake(t *testing.T) {
	node := startPeer(t, peer.Config{Identity: identity(t, 200), Store: store.NewMemory()})
	conn, err := net.DialTimeout("tcp", node.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	// A DATA frame where a HELLO is expected.
	if err := wire.WriteFrame(conn, wire.TypeData, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	// The peer must answer with an error or just close; either way the
	// connection dies without a successful handshake.
	f, err := wire.ReadFrame(conn)
	if err == nil && f.Type != wire.TypeError {
		t.Errorf("peer answered %s to garbage, want error/close", f.Type)
	}
	// The node still serves a well-behaved client afterwards.
	user := identity(t, 201)
	good := dialAuthed(t, node, user)
	if err := wire.WriteFrame(good, wire.TypeBye, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPeerRejectsMalformedGet(t *testing.T) {
	node := startPeer(t, peer.Config{Identity: identity(t, 202), Store: store.NewMemory()})
	conn := dialAuthed(t, node, identity(t, 203))
	if err := wire.WriteFrame(conn, wire.TypeGet, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ReadFrame(conn)
	if err == nil && f.Type != wire.TypeError {
		t.Errorf("malformed GET answered with %s", f.Type)
	}
}

func TestPeerRejectsMalformedPut(t *testing.T) {
	node := startPeer(t, peer.Config{Identity: identity(t, 204), Store: store.NewMemory()})
	conn := dialAuthed(t, node, identity(t, 205))
	// A PUT shorter than a message header kills the connection.
	if err := wire.WriteFrame(conn, wire.TypePut, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.Expect(conn, wire.TypePutOK); err == nil {
		t.Error("malformed PUT acknowledged")
	}
}

func TestPeerRejectsUnexpectedFrameType(t *testing.T) {
	node := startPeer(t, peer.Config{Identity: identity(t, 206), Store: store.NewMemory()})
	conn := dialAuthed(t, node, identity(t, 207))
	if err := wire.WriteFrame(conn, wire.TypeChallenge, nil); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ReadFrame(conn)
	if err == nil && f.Type != wire.TypeError {
		t.Errorf("unexpected frame answered with %s", f.Type)
	}
}

func TestPeerStopForUnknownStreamIsHarmless(t *testing.T) {
	node := startPeer(t, peer.Config{Identity: identity(t, 208), Store: store.NewMemory()})
	conn := dialAuthed(t, node, identity(t, 209))
	stop := wire.Stop{FileID: 424242}
	if err := wire.WriteFrame(conn, wire.TypeStop, stop.Marshal()); err != nil {
		t.Fatal(err)
	}
	// The connection stays usable: a PUT still round-trips.
	msg := rlnc.Message{FileID: 1, MessageID: 1, Payload: []byte{1}}
	buf, err := msg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.TypePut, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.Expect(conn, wire.TypePutOK); err != nil {
		t.Fatalf("PUT after stray STOP failed: %v", err)
	}
}

func TestMaxConnsSheds(t *testing.T) {
	node := startPeer(t, peer.Config{
		Identity: identity(t, 210),
		Store:    store.NewMemory(),
		MaxConns: 1,
	})
	user := identity(t, 211)
	// First connection occupies the only slot.
	first := dialAuthed(t, node, user)
	_ = first

	// Second connection is shed: the handshake cannot complete.
	conn, err := net.DialTimeout("tcp", node.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.InitiatorHandshake(conn, user, wire.RoleUser, nil); err == nil {
		t.Error("second connection handshake succeeded despite MaxConns=1")
	}

	// Releasing the first slot lets new connections through.
	if err := wire.WriteFrame(first, wire.TypeBye, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c2, err := net.DialTimeout("tcp", node.Addr().String(), time.Second)
		if err != nil {
			continue
		}
		c2.SetDeadline(time.Now().Add(2 * time.Second))
		_, err = wire.InitiatorHandshake(c2, user, wire.RoleUser, nil)
		c2.Close()
		if err == nil {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Error("slot was never released after BYE")
}

func TestPeerFrameSizeLimitEnforced(t *testing.T) {
	node := startPeer(t, peer.Config{Identity: identity(t, 212), Store: store.NewMemory()})
	conn, err := net.DialTimeout("tcp", node.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Forge a frame header announcing an absurd size; the peer must
	// drop the connection rather than allocate.
	hdr := []byte{byte(wire.TypeHello), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 64)
	n, _ := conn.Read(buf)
	// Any response must be an error frame or a close, never a CHALLENGE.
	if n >= 1 && wire.Type(buf[0]) == wire.TypeChallenge {
		t.Error("peer proceeded with handshake after oversize frame header")
	}
}
