package peer

// Contract frame handlers: the storage-peer side of the capacity
// negotiation. Accepting an obligation claims the file-id for the
// proposing owner (same rule as a first PUT), and every mutation is
// answered with a grant frame or a typed error — over-capacity and
// unknown-contract refusals carry their own codes so owners can branch
// without string matching.

import (
	"errors"
	"fmt"
	"time"

	"asymshare/internal/contract"
	"asymshare/internal/fairshare"
	"asymshare/internal/wire"
)

// handleContractPropose admits (or refuses) one storage obligation.
func (n *Node) handleContractPropose(lw *connWriter, client fairshare.ID, payload []byte) error {
	var p wire.ContractPropose
	if err := p.Unmarshal(payload); err != nil {
		_ = lw.writeErrorFrame(wire.CodeBadRequest, "malformed contract proposal")
		return err
	}
	// An obligation for a file-id binds it to the proposing owner just
	// like a first upload, so a stranger cannot contract storage for —
	// and later overwrite — someone else's generation.
	if !n.claimFile(p.FileID, client) {
		_ = lw.writeErrorFrame(wire.CodeNotPermitted, "file owned by another user")
		return fmt.Errorf("contract for file %d owned by another user", p.FileID)
	}
	c := contract.Contract{
		ID:       p.ContractID,
		FileID:   p.FileID,
		Owner:    string(client),
		Messages: int(p.Messages),
		Bytes:    int64(p.Bytes),
		Expires:  time.Now().Add(time.Duration(p.TTLSeconds) * time.Second),
	}
	if err := n.book.Accept(c); err != nil {
		switch {
		case errors.Is(err, contract.ErrOverCapacity):
			_ = lw.writeErrorFrame(wire.CodeOverCapacity, "over advertised capacity")
		case errors.Is(err, contract.ErrNotOwner):
			_ = lw.writeErrorFrame(wire.CodeNotPermitted, "contract owned by another user")
		default:
			_ = lw.writeErrorFrame(wire.CodeBadRequest, "bad contract proposal")
		}
		return err
	}
	n.log.Debug("contract accepted", "client", client, "contract", c.ID,
		"file", c.FileID, "bytes", c.Bytes, "expires", c.Expires)
	return lw.writeFrame(wire.TypeContractGrant, n.grantFor(c.ID, c.Expires).Marshal())
}

// handleContractRenew extends an accepted obligation's term.
func (n *Node) handleContractRenew(lw *connWriter, client fairshare.ID, payload []byte) error {
	var r wire.ContractRenew
	if err := r.Unmarshal(payload); err != nil {
		_ = lw.writeErrorFrame(wire.CodeBadRequest, "malformed contract renewal")
		return err
	}
	expires := time.Now().Add(time.Duration(r.TTLSeconds) * time.Second)
	c, err := n.book.Renew(r.ContractID, string(client), expires)
	if err != nil {
		n.refuseContract(lw, err)
		return err
	}
	return lw.writeFrame(wire.TypeContractGrant, n.grantFor(c.ID, c.Expires).Marshal())
}

// handleContractRelease ends an obligation early, freeing capacity.
// The grant answers with a zero expiry to mark the contract gone.
func (n *Node) handleContractRelease(lw *connWriter, client fairshare.ID, payload []byte) error {
	var r wire.ContractRelease
	if err := r.Unmarshal(payload); err != nil {
		_ = lw.writeErrorFrame(wire.CodeBadRequest, "malformed contract release")
		return err
	}
	c, err := n.book.Release(r.ContractID, string(client))
	if err != nil {
		n.refuseContract(lw, err)
		return err
	}
	return lw.writeFrame(wire.TypeContractGrant, n.grantFor(c.ID, time.Unix(0, 0)).Marshal())
}

// handleContractList reports the capacity line and the requesting
// owner's contracts — only theirs; one tenant cannot enumerate
// another's placements.
func (n *Node) handleContractList(lw *connWriter, client fairshare.ID) error {
	info := wire.ContractInfo{
		CapacityBytes: uint64(n.book.Capacity()),
		UsedBytes:     uint64(n.book.Used()),
	}
	for _, c := range n.book.ContractsOf(string(client)) {
		info.Contracts = append(info.Contracts, wire.ContractEntry{
			ContractID:  c.ID,
			FileID:      c.FileID,
			Messages:    uint32(c.Messages),
			Bytes:       uint64(c.Bytes),
			ExpiresUnix: c.Expires.Unix(),
		})
	}
	blob, err := info.Marshal()
	if err != nil {
		return err
	}
	return lw.writeFrame(wire.TypeContractInfo, blob)
}

// refuseContract maps a book error to its typed wire error frame,
// following the SendError contract (best-effort; the caller still
// treats the exchange as failed and closes the connection).
func (n *Node) refuseContract(lw *connWriter, err error) {
	switch {
	case errors.Is(err, contract.ErrUnknown):
		_ = lw.writeErrorFrame(wire.CodeUnknownContract, "unknown contract")
	case errors.Is(err, contract.ErrNotOwner):
		_ = lw.writeErrorFrame(wire.CodeNotPermitted, "contract owned by another user")
	case errors.Is(err, contract.ErrOverCapacity):
		_ = lw.writeErrorFrame(wire.CodeOverCapacity, "over advertised capacity")
	default:
		_ = lw.writeErrorFrame(wire.CodeBadRequest, "bad contract request")
	}
}

// grantFor snapshots the book's accounting into a grant frame, letting
// the owner steer future placements without an extra round-trip.
func (n *Node) grantFor(id uint64, expires time.Time) *wire.ContractGrant {
	return &wire.ContractGrant{
		ContractID:    id,
		ExpiresUnix:   expires.Unix(),
		UsedBytes:     uint64(n.book.Used()),
		CapacityBytes: uint64(n.book.Capacity()),
	}
}
