package transport

import (
	"context"
	"net"
	"testing"
	"time"
)

func TestTCPRoundTrip(t *testing.T) {
	ln, err := Default.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		buf := make([]byte, 4)
		if _, err := conn.Read(buf); err != nil {
			done <- err
			return
		}
		_, err = conn.Write(buf)
		done <- err
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := Default.DialContext(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Fatalf("echo = %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTCPDialContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Default.DialContext(ctx, "127.0.0.1:1"); err == nil {
		t.Fatal("cancelled dial succeeded")
	}
}

var _ net.Listener = mustListener{}

// compile-time interface sanity for test helpers elsewhere.
type mustListener struct{ net.Listener }
