// Package transport defines the network seam between the protocol
// stack (peer, client, tracker) and the medium it runs over. The
// default implementation is real TCP; internal/netsim provides an
// in-memory fabric with injectable latency, bandwidth caps, drops and
// partitions so the same wire code can be driven deterministically
// under go test -race.
package transport

import (
	"context"
	"net"
)

// Transport opens listeners and outbound connections. Implementations
// must be safe for concurrent use.
type Transport interface {
	// Listen binds addr (host:port, port 0 for ephemeral) and returns
	// a listener whose Addr().String() is dialable via DialContext.
	Listen(addr string) (net.Listener, error)

	// DialContext opens a connection to addr, honoring ctx
	// cancellation and deadline for the connection-establishment
	// phase.
	DialContext(ctx context.Context, addr string) (net.Conn, error)
}

// TCP is the production transport: plain TCP over the real network.
type TCP struct{}

// Listen binds a TCP listener.
func (TCP) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// DialContext opens a TCP connection.
func (TCP) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// Default is the transport used when a component's configuration
// leaves the transport nil.
var Default Transport = TCP{}
