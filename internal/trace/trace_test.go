package trace

import (
	"math"
	"testing"
)

func TestAlwaysNever(t *testing.T) {
	if !(Always{}).Requests(0) || !(Always{}).Requests(12345) {
		t.Error("Always must always request")
	}
	if (Never{}).Requests(0) || (Never{}).Requests(9) {
		t.Error("Never must never request")
	}
}

func TestBernoulliDeterministicAndSeedSensitive(t *testing.T) {
	a := NewBernoulli(0.5, 42)
	b := NewBernoulli(0.5, 42)
	c := NewBernoulli(0.5, 43)
	same, diff := true, false
	for slot := 0; slot < 200; slot++ {
		if a.Requests(slot) != b.Requests(slot) {
			same = false
		}
		if a.Requests(slot) != c.Requests(slot) {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different demand")
	}
	if !diff {
		t.Error("different seeds produced identical demand")
	}
}

func TestBernoulliFrequency(t *testing.T) {
	for _, gamma := range []float64{0.1, 0.5, 0.9} {
		d := NewBernoulli(gamma, 7)
		hits := 0
		const n = 5000
		for slot := 0; slot < n; slot++ {
			if d.Requests(slot) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-gamma) > 0.05 {
			t.Errorf("gamma=%v: empirical frequency %v", gamma, got)
		}
	}
}

func TestBernoulliClamping(t *testing.T) {
	if got := NewBernoulli(-1, 0).Gamma(); got != 0 {
		t.Errorf("clamped gamma = %v", got)
	}
	if got := NewBernoulli(2, 0).Gamma(); got != 1 {
		t.Errorf("clamped gamma = %v", got)
	}
	always := NewBernoulli(1, 0)
	for slot := 0; slot < 50; slot++ {
		if !always.Requests(slot) {
			t.Fatal("gamma=1 must always request")
		}
	}
}

func TestAfter(t *testing.T) {
	d := After{Start: 10, Inner: Always{}}
	if d.Requests(9) {
		t.Error("requested before start")
	}
	if !d.Requests(10) || !d.Requests(11) {
		t.Error("did not request after start")
	}
}

func TestBlocks(t *testing.T) {
	d := Blocks{Intervals: []Interval{{From: 5, To: 8}, {From: 20, To: 21}}}
	wantTrue := []int{5, 6, 7, 20}
	wantFalse := []int{0, 4, 8, 19, 21}
	for _, s := range wantTrue {
		if !d.Requests(s) {
			t.Errorf("slot %d should request", s)
		}
	}
	for _, s := range wantFalse {
		if d.Requests(s) {
			t.Errorf("slot %d should not request", s)
		}
	}
}

func TestDutyCycle(t *testing.T) {
	d, err := NewDutyCycle([]int{0, 2}, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Hours: [0,10) active, [10,20) idle, [20,30) active, [30,40) idle,
	// then the day repeats.
	cases := map[int]bool{
		0: true, 9: true, 10: false, 19: false, 20: true, 29: true,
		30: false, 39: false, 40: true, 55: false, -1: false,
	}
	for slot, want := range cases {
		if got := d.Requests(slot); got != want {
			t.Errorf("slot %d = %v, want %v", slot, got, want)
		}
	}
	hours := d.ActiveHours()
	if len(hours) != 2 || hours[0] != 0 || hours[1] != 2 {
		t.Errorf("ActiveHours = %v", hours)
	}
}

func TestDutyCycleValidation(t *testing.T) {
	if _, err := NewDutyCycle([]int{0}, 0, 24); err == nil {
		t.Error("zero slotsPerHour accepted")
	}
	if _, err := NewDutyCycle([]int{24}, 10, 24); err == nil {
		t.Error("out-of-range hour accepted")
	}
	if _, err := NewRandomDutyCycle(25, 10, 24, 1); err == nil {
		t.Error("too many active hours accepted")
	}
}

func TestRandomDutyCycleDeterministicAndHalfActive(t *testing.T) {
	a, err := NewRandomDutyCycle(12, 60, 24, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandomDutyCycle(12, 60, 24, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ActiveHours()) != 12 {
		t.Errorf("active hours = %d", len(a.ActiveHours()))
	}
	for i, h := range a.ActiveHours() {
		if b.ActiveHours()[i] != h {
			t.Fatal("same seed produced different duty cycles")
		}
	}
	// Roughly half the slots of a full day are active.
	active := 0
	day := 24 * 60
	for slot := 0; slot < day; slot++ {
		if a.Requests(slot) {
			active++
		}
	}
	if active != day/2 {
		t.Errorf("active slots = %d, want %d", active, day/2)
	}
}

func TestConstSchedule(t *testing.T) {
	s := Const(256)
	if s.Rate(0) != 256 || s.Rate(1e6) != 256 {
		t.Error("Const rate wrong")
	}
}

func TestStepsSchedule(t *testing.T) {
	// Fig. 8(b): 1024 kbps, dropping to 512 at t=1000, restored at 3000.
	s := Steps{{From: 0, Rate: 1024}, {From: 1000, Rate: 512}, {From: 3000, Rate: 1024}}
	cases := map[int]float64{0: 1024, 999: 1024, 1000: 512, 2999: 512, 3000: 1024, 9000: 1024}
	for slot, want := range cases {
		if got := s.Rate(slot); got != want {
			t.Errorf("Rate(%d) = %v, want %v", slot, got, want)
		}
	}
	var empty Steps
	if got := empty.Rate(5); got != 0 {
		t.Errorf("empty schedule rate = %v", got)
	}
}

func TestStartingAt(t *testing.T) {
	s := StartingAt{Start: 100, Inner: Const(512)}
	if got := s.Rate(99); got != 0 {
		t.Errorf("Rate(99) = %v", got)
	}
	if got := s.Rate(100); got != 512 {
		t.Errorf("Rate(100) = %v", got)
	}
}

func TestNewRandomSessions(t *testing.T) {
	b, err := NewRandomSessions(10000, 100, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Intervals) < 10 {
		t.Fatalf("too few sessions: %d", len(b.Intervals))
	}
	// Intervals are ordered, non-overlapping and within range.
	prevEnd := -1
	active := 0
	for _, iv := range b.Intervals {
		if iv.From <= prevEnd || iv.To <= iv.From || iv.To > 10000 {
			t.Fatalf("bad interval %+v after end %d", iv, prevEnd)
		}
		prevEnd = iv.To
		active += iv.To - iv.From
	}
	// Duty cycle roughly matches meanOn/(meanOn+meanOff) = 2/3.
	duty := float64(active) / 10000
	if duty < 0.4 || duty > 0.9 {
		t.Errorf("duty cycle = %v, want ~0.67", duty)
	}
	// Determinism.
	b2, err := NewRandomSessions(10000, 100, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.Intervals) != len(b.Intervals) {
		t.Error("same seed produced different sessions")
	}
	if _, err := NewRandomSessions(0, 1, 1, 1); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := NewRandomSessions(10, 0, 1, 1); err == nil {
		t.Error("zero meanOn accepted")
	}
}

func TestGate(t *testing.T) {
	g := Gate{Capacity: 256, On: Blocks{Intervals: []Interval{{From: 5, To: 10}}}}
	if got := g.Rate(4); got != 0 {
		t.Errorf("Rate(4) = %v", got)
	}
	if got := g.Rate(5); got != 256 {
		t.Errorf("Rate(5) = %v", got)
	}
	if got := g.Rate(10); got != 0 {
		t.Errorf("Rate(10) = %v", got)
	}
}
