// Package trace provides the workload generators used in the paper's
// evaluation (Sec. V): i.i.d. Bernoulli demand (Sec. IV-A's model),
// 24-hour duty cycles with 1-hour blocks (Figs. 6-7), delayed starts
// (Figs. 7, 8a) and piecewise-constant upload-capacity schedules
// (Fig. 8b). All generators are deterministic functions of the slot
// index and their seed, so simulations reproduce exactly.
package trace

import (
	"fmt"
	"math/rand"
)

// Demand decides whether a user requests download bandwidth at a slot
// (the indicator I_i(t) of Sec. IV-A).
type Demand interface {
	Requests(slot int) bool
}

// Schedule gives a peer's upload capacity at a slot.
type Schedule interface {
	Rate(slot int) float64
}

// Always is a demand that requests in every slot (the saturated regime
// gamma -> 1 of Corollary 1).
type Always struct{}

var _ Demand = Always{}

// Requests implements Demand.
func (Always) Requests(int) bool { return true }

// Never is a demand that never requests.
type Never struct{}

var _ Demand = Never{}

// Requests implements Demand.
func (Never) Requests(int) bool { return false }

// Bernoulli requests independently with probability Gamma each slot.
// The draw for slot t depends only on (seed, t).
type Bernoulli struct {
	gamma float64
	seed  int64
}

var _ Demand = (*Bernoulli)(nil)

// NewBernoulli returns an i.i.d. Bernoulli(gamma) demand. gamma is
// clamped to [0, 1].
func NewBernoulli(gamma float64, seed int64) *Bernoulli {
	if gamma < 0 {
		gamma = 0
	}
	if gamma > 1 {
		gamma = 1
	}
	return &Bernoulli{gamma: gamma, seed: seed}
}

// Gamma returns the request probability.
func (b *Bernoulli) Gamma() float64 { return b.gamma }

// Requests implements Demand.
func (b *Bernoulli) Requests(slot int) bool {
	// Per-slot generator keyed by (seed, slot) so that demand at slot t
	// is independent of how many earlier slots were evaluated.
	const mix = int64(-0x61C8864680B583EB) // golden-ratio mixing constant
	r := rand.New(rand.NewSource(b.seed ^ int64(slot)*mix))
	return r.Float64() < b.gamma
}

// After delays an inner demand: before Start the user never requests.
type After struct {
	Start int
	Inner Demand
}

var _ Demand = After{}

// Requests implements Demand.
func (a After) Requests(slot int) bool {
	if slot < a.Start {
		return false
	}
	return a.Inner.Requests(slot)
}

// Blocks requests during explicit slot intervals [From, To).
type Blocks struct {
	Intervals []Interval
}

// Interval is a half-open slot range.
type Interval struct {
	From, To int
}

var _ Demand = Blocks{}

// Requests implements Demand.
func (b Blocks) Requests(slot int) bool {
	for _, iv := range b.Intervals {
		if slot >= iv.From && slot < iv.To {
			return true
		}
	}
	return false
}

// DutyCycle requests during a fixed set of hour-long blocks out of a
// repeating day, matching the home-video experiment: "users streamed
// their home videos ... for 12 randomly chosen hours in a day ... in
// chunks of 1 hour".
type DutyCycle struct {
	activeHours  map[int]bool
	slotsPerHour int
	hoursPerDay  int
}

var _ Demand = (*DutyCycle)(nil)

// NewDutyCycle builds a duty cycle from explicit active hours.
func NewDutyCycle(activeHours []int, slotsPerHour, hoursPerDay int) (*DutyCycle, error) {
	if slotsPerHour <= 0 || hoursPerDay <= 0 {
		return nil, fmt.Errorf("trace: invalid duty cycle geometry %d/%d", slotsPerHour, hoursPerDay)
	}
	m := make(map[int]bool, len(activeHours))
	for _, h := range activeHours {
		if h < 0 || h >= hoursPerDay {
			return nil, fmt.Errorf("trace: hour %d out of range [0,%d)", h, hoursPerDay)
		}
		m[h] = true
	}
	return &DutyCycle{activeHours: m, slotsPerHour: slotsPerHour, hoursPerDay: hoursPerDay}, nil
}

// NewRandomDutyCycle chooses `active` distinct hours of the day using
// the given seed.
func NewRandomDutyCycle(active, slotsPerHour, hoursPerDay int, seed int64) (*DutyCycle, error) {
	if active < 0 || active > hoursPerDay {
		return nil, fmt.Errorf("trace: cannot pick %d of %d hours", active, hoursPerDay)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(hoursPerDay)
	return NewDutyCycle(perm[:active], slotsPerHour, hoursPerDay)
}

// ActiveHours returns the sorted list of active hours.
func (d *DutyCycle) ActiveHours() []int {
	out := make([]int, 0, len(d.activeHours))
	for h := 0; h < d.hoursPerDay; h++ {
		if d.activeHours[h] {
			out = append(out, h)
		}
	}
	return out
}

// Requests implements Demand.
func (d *DutyCycle) Requests(slot int) bool {
	if slot < 0 {
		return false
	}
	hour := (slot / d.slotsPerHour) % d.hoursPerDay
	return d.activeHours[hour]
}

// NewRandomSessions builds a Blocks demand of alternating on/off
// sessions with exponentially distributed lengths (means meanOn and
// meanOff slots), covering [0, slots). It models user churn: sessions
// of activity separated by idle periods.
func NewRandomSessions(slots int, meanOn, meanOff float64, seed int64) (Blocks, error) {
	if slots <= 0 || meanOn <= 0 || meanOff < 0 {
		return Blocks{}, fmt.Errorf("trace: invalid session geometry slots=%d on=%v off=%v",
			slots, meanOn, meanOff)
	}
	rng := rand.New(rand.NewSource(seed))
	var b Blocks
	t := 0
	// Randomize the phase so peers with the same seed offset differ.
	if meanOff > 0 {
		t = int(rng.ExpFloat64() * meanOff / 2)
	}
	for t < slots {
		on := 1 + int(rng.ExpFloat64()*meanOn)
		end := t + on
		if end > slots {
			end = slots
		}
		b.Intervals = append(b.Intervals, Interval{From: t, To: end})
		off := 1 + int(rng.ExpFloat64()*meanOff)
		t = end + off
	}
	return b, nil
}

// Gate turns a demand into a schedule: the peer uploads at Capacity
// while On is active and is offline (0) otherwise. It models churn,
// where peers only contribute during their sessions.
type Gate struct {
	Capacity float64
	On       Demand
}

var _ Schedule = Gate{}

// Rate implements Schedule.
func (g Gate) Rate(slot int) float64 {
	if g.On.Requests(slot) {
		return g.Capacity
	}
	return 0
}

// Const is a constant upload capacity.
type Const float64

var _ Schedule = Const(0)

// Rate implements Schedule.
func (c Const) Rate(int) float64 { return float64(c) }

// Steps is a piecewise-constant schedule: the rate at slot t is the
// rate of the last step whose From <= t (0 before the first step).
// Steps must be sorted by From.
type Steps []Step

// Step is one piece of a Steps schedule.
type Step struct {
	From int
	Rate float64
}

var _ Schedule = Steps{}

// Rate implements Schedule.
func (s Steps) Rate(slot int) float64 {
	rate := 0.0
	for _, st := range s {
		if slot < st.From {
			break
		}
		rate = st.Rate
	}
	return rate
}

// StartingAt delays a schedule: the capacity is 0 before Start (a peer
// that joins or begins contributing late, as in Figs. 7 and 8a).
type StartingAt struct {
	Start int
	Inner Schedule
}

var _ Schedule = StartingAt{}

// Rate implements Schedule.
func (s StartingAt) Rate(slot int) float64 {
	if slot < s.Start {
		return 0
	}
	return s.Inner.Rate(slot)
}
