package client

// Per-peer health tracking for the resilient fetch path (DESIGN.md
// §15). Every peer the client talks to accumulates an EWMA of stream
// latency, failure and shed counts, and a circuit-breaker state
// (breaker.go). The hedged chunk scheduler (hedge.go) ranks sessions by
// these scores, and the hedge delay — how long a stream may make no
// progress before it is re-issued on the next-healthiest peer — is
// derived from a small reservoir of recent stream latencies (p95 with
// headroom) unless Options.HedgeDelay pins it.

import (
	"sort"
	"sync"
	"time"
)

const (
	// latencyAlpha is the EWMA smoothing factor for per-peer stream
	// latency: recent transfers dominate, old history decays in ~3
	// samples.
	latencyAlpha = 0.3

	// latencyReservoirSize bounds the shared recent-latency ring that
	// feeds the p95 hedge-delay estimate.
	latencyReservoirSize = 64

	// minHedgeSamples gates the adaptive estimate; with fewer samples
	// the default delay applies.
	minHedgeSamples = 8

	// hedgeHeadroom multiplies the p95 latency into the hedge delay so
	// ordinary tail transfers do not trigger spurious hedges.
	hedgeHeadroom = 1.5

	// minHedgeDelay / maxHedgeDelay clamp the adaptive estimate.
	minHedgeDelay = 20 * time.Millisecond
	maxHedgeDelay = 2 * time.Second

	// shedScoreCap bounds the score penalty accumulated from sheds so a
	// long-lived client can still rehabilitate a once-busy peer.
	shedScoreCap = 25
)

// DefaultHedgeDelay is the hedge delay used until enough stream
// latencies have been observed to estimate a p95.
const DefaultHedgeDelay = 300 * time.Millisecond

// HealthSnapshot reports one peer's accumulated health state; see
// Client.PeerHealth.
type HealthSnapshot struct {
	// Latency is the EWMA of completed stream latencies (0 = no sample).
	Latency time.Duration

	// Successes / Failures / Sheds count classified stream outcomes.
	Successes int64
	Failures  int64
	Sheds     int64

	// ConsecFails is the current run of uninterrupted failures.
	ConsecFails int

	// Breaker is the circuit state: "closed", "open" or "half-open".
	Breaker string
}

// peerHealth is one peer's mutable health record; all fields are
// guarded by the owning registry's mutex.
type peerHealth struct {
	ewmaSeconds float64
	successes   int64
	failures    int64
	sheds       int64
	consecFails int

	state     breakerState
	openUntil time.Time
	cooldown  time.Duration
	probing   bool
}

// healthRegistry aggregates per-peer health plus the shared latency
// reservoir. One registry per Client; safe for concurrent use.
type healthRegistry struct {
	mu    sync.Mutex
	peers map[string]*peerHealth
	now   func() time.Time // injectable clock for breaker tests

	lat    [latencyReservoirSize]time.Duration
	latLen int
	latIdx int

	threshold     int
	cooldown      time.Duration
	hedgeOverride time.Duration

	m *clientMetrics
}

func newHealthRegistry(m *clientMetrics, opt Options) *healthRegistry {
	return &healthRegistry{
		peers:         make(map[string]*peerHealth),
		now:           time.Now,
		threshold:     opt.BreakerThreshold,
		cooldown:      opt.BreakerCooldown,
		hedgeOverride: opt.HedgeDelay,
		m:             m,
	}
}

// peerLocked returns addr's record, creating it on first sight.
func (h *healthRegistry) peerLocked(addr string) *peerHealth {
	p, ok := h.peers[addr]
	if !ok {
		p = &peerHealth{}
		h.peers[addr] = p
	}
	return p
}

// recordSuccess folds one well-behaved stream outcome in. latency > 0
// additionally feeds the EWMA and the shared hedge-delay reservoir; a
// zero latency only resets the failure run (used for outcomes that
// prove liveness without timing a full transfer). Any success closes an
// open or half-open breaker.
func (h *healthRegistry) recordSuccess(addr string, latency time.Duration) {
	h.mu.Lock()
	p := h.peerLocked(addr)
	p.successes++
	p.consecFails = 0
	if latency > 0 {
		sec := latency.Seconds()
		if p.ewmaSeconds == 0 {
			p.ewmaSeconds = sec
		} else {
			p.ewmaSeconds += latencyAlpha * (sec - p.ewmaSeconds)
		}
		h.lat[h.latIdx] = latency
		h.latIdx = (h.latIdx + 1) % latencyReservoirSize
		if h.latLen < latencyReservoirSize {
			h.latLen++
		}
	}
	recovered := p.closeBreakerLocked()
	h.mu.Unlock()
	if recovered {
		h.m.breakerRecoveries.Inc()
		h.m.breakerOpen.Add(-1)
	}
}

// recordFailure folds one failed stream outcome in, tripping the
// breaker when the consecutive-failure run reaches the threshold and
// doubling the quarantine when a half-open probe fails.
func (h *healthRegistry) recordFailure(addr string) {
	h.mu.Lock()
	p := h.peerLocked(addr)
	p.failures++
	p.consecFails++
	tripped := p.tripLocked(h.now(), h.threshold, h.cooldown)
	h.mu.Unlock()
	if tripped {
		h.m.breakerOpens.Inc()
		h.m.breakerOpen.Add(1)
	}
}

// recordShed notes a BUSY shed from an overloaded peer. A shed is not a
// failure — the peer answered, correctly, that it is saturated — so it
// feeds the ranking score and never trips the breaker. It does prove
// liveness, though: an open or half-open breaker is closed, releasing
// any claimed half-open probe slot, so a probe stream that ends in a
// shed cannot strand the peer in half-open with its slot claimed
// forever. The capped shed score keeps chronically saturated peers
// down-ranked instead.
func (h *healthRegistry) recordShed(addr string) {
	h.mu.Lock()
	p := h.peerLocked(addr)
	p.sheds++
	recovered := p.closeBreakerLocked()
	h.mu.Unlock()
	if recovered {
		h.m.breakerRecoveries.Inc()
		h.m.breakerOpen.Add(-1)
	}
}

// scoreLocked ranks a peer for the hedge ladder: lower is healthier.
// EWMA latency dominates; each consecutive failure costs half a second
// of equivalent latency and accumulated sheds add a capped nudge away
// from chronically saturated peers.
func (p *peerHealth) scoreLocked() float64 {
	sheds := float64(p.sheds)
	if sheds > shedScoreCap {
		sheds = shedScoreCap
	}
	return p.ewmaSeconds + 0.5*float64(p.consecFails) + 0.02*sheds
}

// order ranks sessions for the hedge ladder. The first return value is
// the ladder: closed-breaker peers healthiest-first, rotated by rotate
// so concurrent chunks spread across equally healthy peers, followed by
// cooled-down quarantined peers (probe candidates). probeFrom is the
// index where those candidates begin (== len when there are none).
// Peers still inside their breaker cooldown are excluded entirely.
func (h *healthRegistry) order(sessions []*PeerSession, rotate int) (ladder []*PeerSession, probeFrom int) {
	type ranked struct {
		s     *PeerSession
		score float64
	}
	h.mu.Lock()
	now := h.now()
	healthy := make([]ranked, 0, len(sessions))
	var probes []*PeerSession
	for _, s := range sessions {
		p, ok := h.peers[s.Addr()]
		switch {
		case !ok || p.state == breakerClosed:
			var score float64
			if ok {
				score = p.scoreLocked()
			}
			healthy = append(healthy, ranked{s: s, score: score})
		case p.allowLocked(now):
			probes = append(probes, s)
		}
	}
	h.mu.Unlock()
	sort.SliceStable(healthy, func(i, j int) bool { return healthy[i].score < healthy[j].score })
	ladder = make([]*PeerSession, 0, len(healthy)+len(probes))
	if n := len(healthy); n > 0 {
		r := rotate % n
		for i := 0; i < n; i++ {
			ladder = append(ladder, healthy[(r+i)%n].s)
		}
	}
	probeFrom = len(ladder)
	return append(ladder, probes...), probeFrom
}

// hedgeDelay returns how long a chunk stream may sit without progress
// before a hedge is launched: the configured override if set, otherwise
// p95 of recent stream latencies with headroom, otherwise the default.
func (h *healthRegistry) hedgeDelay() time.Duration {
	if h.hedgeOverride > 0 {
		return h.hedgeOverride
	}
	h.mu.Lock()
	n := h.latLen
	var buf []time.Duration
	if n >= minHedgeSamples {
		buf = make([]time.Duration, n)
		copy(buf, h.lat[:n])
	}
	h.mu.Unlock()
	if buf == nil {
		return DefaultHedgeDelay
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	p95 := buf[len(buf)*95/100]
	d := time.Duration(float64(p95) * hedgeHeadroom)
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	if d > maxHedgeDelay {
		d = maxHedgeDelay
	}
	return d
}

// snapshot reports addr's current health; the zero snapshot for a peer
// never seen reads as closed.
func (h *healthRegistry) snapshot(addr string) HealthSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[addr]
	if !ok {
		return HealthSnapshot{Breaker: breakerClosed.String()}
	}
	return HealthSnapshot{
		Latency:     time.Duration(p.ewmaSeconds * float64(time.Second)),
		Successes:   p.successes,
		Failures:    p.failures,
		Sheds:       p.sheds,
		ConsecFails: p.consecFails,
		Breaker:     p.state.String(),
	}
}

// PeerHealth reports the client's accumulated health view of one peer
// address: latency EWMA, outcome counts and circuit-breaker state.
func (c *Client) PeerHealth(addr string) HealthSnapshot {
	return c.health.snapshot(addr)
}
