package client

// Regression for the hedged scheduler's all-quarantined corner: when
// every session is inside a lapsed breaker cooldown, order() returns
// probeFrom == 0 and the first probe candidate doubles as the primary
// stream. The probe start-up loop must then skip that rung — launching
// it a second time opened a duplicate stream for the same file-id on
// the same session, whose register failure was classified as a real
// failure and re-opened the breaker (with a doubled cooldown) right
// after the chunk had in fact been served successfully.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/chunk"
	"asymshare/internal/gf"
	"asymshare/internal/metrics"
	"asymshare/internal/peer"
	"asymshare/internal/rlnc"
	"asymshare/internal/store"
)

func TestHedgedAllQuarantinedLaunchesPrimaryOnce(t *testing.T) {
	peerID, err := auth.IdentityFromSeed(bytes.Repeat([]byte{41}, 32))
	if err != nil {
		t.Fatal(err)
	}
	clientID, err := auth.IdentityFromSeed(bytes.Repeat([]byte{42}, 32))
	if err != nil {
		t.Fatal(err)
	}
	n, err := peer.New(peer.Config{Identity: peerID, Store: store.NewMemory()})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	addr := n.Addr().String()

	secret := make([]byte, rlnc.SecretLen)
	for i := range secret {
		secret[i] = byte(i + 3)
	}
	data := bytes.Repeat([]byte("all quarantined "), 60)[:900] // one chunk
	share, err := chunk.BuildShare("q.bin", data,
		chunk.Plan{FieldBits: gf.Bits8, M: 128, ChunkSize: 1024}, 1000, secret)
	if err != nil {
		t.Fatal(err)
	}

	c, err := NewWith(clientID, nil, Options{
		Hedge:            true,
		BreakerThreshold: 1,
		BreakerCooldown:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	c.Instrument(reg)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	batches, err := share.BatchForPeer(0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	var flat []*rlnc.Message
	for _, b := range batches {
		flat = append(flat, b...)
	}
	if err := c.Disseminate(ctx, addr, flat); err != nil {
		t.Fatal(err)
	}

	sess, err := c.NewPeerSession(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Quarantine the peer with an already-lapsed cooldown so the ladder
	// consists solely of probe candidates.
	c.health.mu.Lock()
	p := c.health.peerLocked(addr)
	p.state = breakerOpen
	p.cooldown = 50 * time.Millisecond
	p.openUntil = time.Now().Add(-time.Millisecond)
	c.health.mu.Unlock()

	sessions := []*PeerSession{sess}
	if ladder, probeFrom := c.health.order(sessions, 0); len(ladder) != 1 || probeFrom != 0 {
		t.Fatalf("sanity: ladder len %d probeFrom %d, want 1 and 0", len(ladder), probeFrom)
	}

	info := share.Manifest.Chunks[0]
	params, err := info.Params(share.Manifest.Plan)
	if err != nil {
		t.Fatal(err)
	}
	piece, _, err := c.fetchChunkHedged(ctx, sessions, 0, params, info.FileID, secret, info.Digests)
	if err != nil {
		t.Fatalf("all-quarantined hedged fetch: %v", err)
	}
	got, err := chunk.Assemble(&share.Manifest, [][]byte{piece})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decoded bytes differ from original")
	}

	// The single (primary) stream succeeded, so the breaker must be
	// closed and no spurious failure recorded. The double launch used to
	// fail register for the duplicate stream, count a failure, and
	// re-open the breaker with a doubled cooldown.
	if s := c.PeerHealth(addr); s.Breaker != "closed" || s.Failures != 0 {
		t.Fatalf("health after fetch = %+v, want closed breaker with 0 failures", s)
	}
	// And the probe loop must not have claimed the rung it already
	// launched as the primary: a claimed probe slot here is exactly the
	// duplicate launch (whichever of the two streams lost the register
	// race, the loser's failure was either recorded or silently
	// orphaned — both wrong).
	if v := reg.Counter(MetricBreakerProbes, "").Value(); v != 0 {
		t.Fatalf("breaker_probes_total = %d, want 0 (primary rung probed twice)", v)
	}
}
