package client

// PeerSession multiplexes many concurrent generation downloads over one
// authenticated connection. The legacy fetch path dials a fresh
// connection per peer per generation — fine for a single chunk, but a
// manifest of dozens of chunks pays dial+handshake per chunk and
// serializes them. A session performs the handshake once, issues
// GET_MUX requests, and demultiplexes the interleaved DATA frames by
// the file-id every message carries in its first 8 header bytes.
//
// Buffer ownership (DESIGN.md §13): the demux loop owns each frame
// buffer from FrameReader.Next until it hands it to a stream's frame
// channel, where ownership transfers to the stream's Fetch loop, which
// releases it after feeding the decoder. Frames for unknown or dead
// streams are released on the spot, so a cancelled stream can never
// leak its in-flight buffers.
//
// Failure scoping: STREAM_ERROR frames and per-message digest failures
// kill only the stream they name — every other stream on the session
// keeps running. Read errors on the connection itself fail all streams
// with the retriable errPeerAborted class.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"asymshare/internal/auth"
	"asymshare/internal/rlnc"
	"asymshare/internal/wire"
)

// sessStreamBuffer is the per-stream frame channel depth: enough to
// keep the decoder busy while the demux loop reads ahead, small enough
// that one slow stream backpressures the connection instead of hoarding
// pooled buffers.
const sessStreamBuffer = 64

// ErrSessionClosed is returned by Fetch on a session whose connection
// has already failed or been closed.
var ErrSessionClosed = errors.New("client: peer session closed")

// sessStream is the demux target for one in-flight generation.
type sessStream struct {
	fileID uint64
	frames chan *wire.Buf

	failOnce sync.Once
	err      error
	done     chan struct{}
}

// fail records the stream's terminal error and wakes its Fetch loop.
func (st *sessStream) fail(err error) {
	st.failOnce.Do(func() {
		st.err = err
		close(st.done)
	})
}

// PeerSession is one authenticated, multiplexed connection to a storage
// peer. Safe for concurrent Fetch calls; create with NewPeerSession and
// Close when done.
type PeerSession struct {
	c           *Client
	addr        string
	conn        net.Conn
	fingerprint string
	cw          *sessionWriter

	mu      sync.Mutex
	streams map[uint64]*sessStream
	dead    error // conn-level failure, set before closed is closed

	closed    chan struct{} // demux loop exited
	closeOnce sync.Once
}

// sessionWriter serializes control writes from concurrent streams over
// one batched FrameWriter.
type sessionWriter struct {
	mu sync.Mutex
	fw *wire.FrameWriter
}

func (sw *sessionWriter) writeFrame(t wire.Type, payload []byte) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.fw.WriteFrame(t, payload)
}

// NewPeerSession dials addr, completes the mutual handshake and starts
// the demux loop. The context bounds only the dial; the session then
// lives until Close or a connection failure.
func (c *Client) NewPeerSession(ctx context.Context, addr string) (*PeerSession, error) {
	conn, peerKey, err := c.dial(ctx, addr, wire.RoleUser)
	if err != nil {
		// A failed dial or handshake while the caller's context is
		// still live is the peer's fault — feed the circuit breaker.
		if ctx.Err() == nil {
			c.health.recordFailure(addr)
		}
		return nil, err
	}
	s := &PeerSession{
		c:           c,
		addr:        addr,
		conn:        conn,
		fingerprint: auth.Fingerprint(peerKey),
		cw:          &sessionWriter{fw: wire.NewFrameWriter(conn)},
		streams:     make(map[uint64]*sessStream),
		closed:      make(chan struct{}),
	}
	go s.demux()
	return s, nil
}

// Fingerprint returns the peer's key fingerprint.
func (s *PeerSession) Fingerprint() string { return s.fingerprint }

// Addr returns the peer's address.
func (s *PeerSession) Addr() string { return s.addr }

// Close tears the session down: best-effort BYE, close the connection,
// wait for the demux loop (which fails any remaining streams).
func (s *PeerSession) Close() error {
	s.closeOnce.Do(func() {
		_ = s.cw.writeFrame(wire.TypeBye, nil)
		s.conn.Close()
	})
	<-s.closed
	return nil
}

// register adds a stream, refusing duplicates and dead sessions.
func (s *PeerSession) register(st *sessStream) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return s.dead
	}
	if _, ok := s.streams[st.fileID]; ok {
		return fmt.Errorf("client: stream for file %d already open on session to %s", st.fileID, s.addr)
	}
	s.streams[st.fileID] = st
	return nil
}

// unregister removes st if it is still the registered stream for its
// file-id, then drains and releases any frames the demux loop had
// already queued.
func (s *PeerSession) unregister(st *sessStream) {
	s.mu.Lock()
	if s.streams[st.fileID] == st {
		delete(s.streams, st.fileID)
	}
	s.mu.Unlock()
	st.fail(ErrSessionClosed) // no-op if already terminal; stops deliveries
	for {
		select {
		case b, ok := <-st.frames:
			if !ok {
				return
			}
			b.Release()
		default:
			return
		}
	}
}

// lookup returns the stream registered for fileID, if any.
func (s *PeerSession) lookup(fileID uint64) *sessStream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[fileID]
}

// failAll marks the session dead and fails every open stream.
func (s *PeerSession) failAll(err error) {
	s.mu.Lock()
	if s.dead == nil {
		s.dead = err
	}
	streams := make([]*sessStream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	s.streams = make(map[uint64]*sessStream)
	s.mu.Unlock()
	for _, st := range streams {
		st.fail(err)
	}
}

// demux is the session's read loop: it routes DATA frames to their
// stream by the file-id in the message header, turns STOP frames into
// per-stream end-of-stream, and scopes STREAM_ERROR frames to the one
// stream they name. It exits on any connection-level failure, failing
// every open stream with a retriable classification.
func (s *PeerSession) demux() {
	defer close(s.closed)
	fr := wire.NewFrameReader(s.conn)
	for {
		t, b, err := fr.Next()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				err = fmt.Errorf("%w (%s): %v", errPeerAborted, s.addr, err)
			}
			s.failAll(err)
			return
		}
		switch t {
		case wire.TypeData:
			payload := b.Bytes()
			if len(payload) < rlnc.MessageHeaderBytes {
				b.Release()
				s.failAll(fmt.Errorf("%w: %d-byte data frame", wire.ErrBadFrame, len(payload)))
				return
			}
			fileID := binary.BigEndian.Uint64(payload)
			st := s.lookup(fileID)
			if st == nil {
				// Stream stopped or never existed: tail frames in flight.
				b.Release()
				continue
			}
			select {
			case st.frames <- b: // ownership transfers to the stream
			case <-st.done:
				b.Release()
			}
		case wire.TypeStop:
			var stop wire.Stop
			uerr := stop.Unmarshal(b.Bytes())
			b.Release()
			if uerr != nil {
				s.failAll(uerr)
				return
			}
			s.mu.Lock()
			st := s.streams[stop.FileID]
			delete(s.streams, stop.FileID)
			s.mu.Unlock()
			if st != nil {
				close(st.frames) // peer exhausted: orderly end-of-stream
			}
		case wire.TypeStreamError:
			var se wire.StreamError
			uerr := se.Unmarshal(b.Bytes())
			b.Release()
			if uerr != nil {
				s.failAll(uerr)
				return
			}
			s.mu.Lock()
			st := s.streams[se.FileID]
			delete(s.streams, se.FileID)
			s.mu.Unlock()
			if st != nil {
				st.fail(&wire.RemoteError{Code: se.Code, Reason: se.Reason})
			}
		case wire.TypeBusy:
			// Stream-scoped shed: the peer refused, preempted, or
			// expired the one stream the frame names. Like a duplicate
			// STREAM_ERROR, a BUSY for an unknown stream is ignored.
			var bz wire.Busy
			uerr := bz.Unmarshal(b.Bytes())
			b.Release()
			if uerr != nil {
				s.failAll(uerr)
				return
			}
			s.mu.Lock()
			st := s.streams[bz.FileID]
			delete(s.streams, bz.FileID)
			s.mu.Unlock()
			if st != nil {
				st.fail(&bz)
			}
		case wire.TypeError:
			var e wire.ErrorMsg
			uerr := e.Unmarshal(b.Bytes())
			b.Release()
			if uerr != nil {
				s.failAll(uerr)
				return
			}
			s.failAll(&wire.RemoteError{Code: e.Code, Reason: e.Reason})
			return
		default:
			b.Release()
			s.failAll(fmt.Errorf("%w: %s during muxed fetch", wire.ErrUnexpectedFrame, t))
			return
		}
	}
}

// stop asks the peer to cancel one stream (best-effort).
func (s *PeerSession) stop(fileID uint64) {
	stopMsg := wire.Stop{FileID: fileID}
	_ = s.cw.writeFrame(wire.TypeStop, stopMsg.Marshal())
}

// Fetch streams one generation into sink over the session, returning
// when the decode completes (sink.Done), the peer exhausts its stored
// messages, the context is cancelled, or the stream fails. onBytes, if
// non-nil, is called with each message's wire size for receipt
// accounting. Digest failures are tolerated (the forged message is
// dropped, the stream continues), matching the legacy fetch path.
func (s *PeerSession) Fetch(ctx context.Context, fileID uint64, sink rlnc.ByteSink, onBytes func(int)) error {
	return s.FetchStream(ctx, StreamRequest{FileID: fileID}, sink, onBytes)
}

// StreamRequest names one muxed stream's inputs beyond the defaults:
// the generation to fetch and the wire priority propagated with it.
type StreamRequest struct {
	FileID uint64

	// Priority is carried in the GET_MUX frame; higher values win
	// admission ties at an overloaded peer. Zero is normal.
	Priority uint8
}

// FetchStream is Fetch with an explicit stream request. The context's
// deadline, if any, is propagated on the wire as the remaining budget
// so the peer can drop the stream once it passes.
func (s *PeerSession) FetchStream(ctx context.Context, req StreamRequest, sink rlnc.ByteSink, onBytes func(int)) error {
	fileID := req.FileID
	st := &sessStream{
		fileID: fileID,
		frames: make(chan *wire.Buf, sessStreamBuffer),
		done:   make(chan struct{}),
	}
	if err := s.register(st); err != nil {
		return err
	}
	defer s.unregister(st)
	get := wire.Get{FileID: fileID, DeadlineMillis: deadlineMillis(ctx), Priority: req.Priority}
	if err := s.cw.writeFrame(wire.TypeGetMux, get.Marshal()); err != nil {
		return err
	}
	for {
		select {
		case <-ctx.Done():
			s.stop(fileID)
			return nil // cancelled: decode completed elsewhere, or deadline
		case <-st.done:
			if errors.Is(st.err, ErrSessionClosed) {
				return nil
			}
			return st.err
		case b, ok := <-st.frames:
			if !ok {
				return nil // peer exhausted (orderly STOP)
			}
			_, addErr := sink.AddBytes(b.Bytes())
			n := b.Len()
			b.Release()
			s.c.m.received.Add(uint64(n))
			s.c.m.recvRate.Mark(uint64(n))
			if onBytes != nil {
				onBytes(n)
			}
			if addErr != nil && !errors.Is(addErr, rlnc.ErrBadDigest) {
				s.stop(fileID)
				return addErr
			}
			if sink.Done() {
				s.stop(fileID)
				return nil
			}
		}
	}
}
