package client_test

// PeerSession coverage: many concurrent generation streams over one
// connection, and — the regression ISSUE 8 pins — failure scoping: an
// error on one multiplexed stream (unknown file, bad parameters) must
// kill only that stream, leaving every other stream on the connection
// to complete.

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"asymshare/internal/chunk"
	"asymshare/internal/client"
	"asymshare/internal/gf"
	"asymshare/internal/rlnc"
	"asymshare/internal/wire"
)

// fetchChunk downloads one generation over the session into a fresh
// pipeline and decodes it.
func fetchChunk(ctx context.Context, s *client.PeerSession, info chunk.ChunkInfo, plan chunk.Plan) ([]byte, error) {
	params, err := info.Params(plan)
	if err != nil {
		return nil, err
	}
	pipe, err := rlnc.NewPipeline(params, info.FileID, testSecret(), info.Digests, rlnc.PipelineConfig{})
	if err != nil {
		return nil, err
	}
	defer pipe.Close()
	streamCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if err := s.Fetch(streamCtx, info.FileID, pipe, nil); err != nil {
		return nil, err
	}
	return pipe.Decode()
}

// TestPeerSessionMuxedFetch downloads every chunk of a manifest
// concurrently over ONE connection and reassembles the file.
func TestPeerSessionMuxedFetch(t *testing.T) {
	c, err := client.New(identity(t, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("zero copy all the way down "), 200) // several chunks
	m, addrs := buildAndDisseminate(t, c, data, 1)
	if len(m.Chunks) < 2 {
		t.Fatalf("want a multi-chunk manifest, got %d chunks", len(m.Chunks))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	s, err := c.NewPeerSession(ctx, addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pieces := make([][]byte, len(m.Chunks))
	errs := make([]error, len(m.Chunks))
	var wg sync.WaitGroup
	for i, info := range m.Chunks {
		wg.Add(1)
		go func(i int, info chunk.ChunkInfo) {
			defer wg.Done()
			pieces[i], errs[i] = fetchChunk(ctx, s, info, m.Plan)
		}(i, info)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
	}
	got, err := chunk.Assemble(m, pieces)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("assembled file diverges from original")
	}
}

// TestPeerSessionStreamErrorIsolation is the satellite-4 regression: a
// stream refused with STREAM_ERROR (unknown file) must surface a
// *wire.RemoteError on that stream only — the connection stays up and
// a concurrent valid stream, plus further streams opened afterwards,
// complete normally.
func TestPeerSessionStreamErrorIsolation(t *testing.T) {
	c, err := client.New(identity(t, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("isolation "), 300)
	m, addrs := buildAndDisseminate(t, c, data, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	s, err := c.NewPeerSession(ctx, addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A valid stream and a doomed one race on the same connection.
	valid := m.Chunks[0]
	var (
		wg       sync.WaitGroup
		goodData []byte
		goodErr  error
		badErr   error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		goodData, goodErr = fetchChunk(ctx, s, valid, m.Plan)
	}()
	go func() {
		defer wg.Done()
		params, err := valid.Params(m.Plan)
		if err != nil {
			badErr = err
			return
		}
		const bogusFile = 0xBAD0BAD0
		pipe, err := rlnc.NewPipeline(params, bogusFile, testSecret(), nil, rlnc.PipelineConfig{})
		if err != nil {
			badErr = err
			return
		}
		defer pipe.Close()
		badErr = s.Fetch(ctx, bogusFile, pipe, nil)
	}()
	wg.Wait()

	var remote *wire.RemoteError
	if !errors.As(badErr, &remote) || remote.Code != wire.CodeUnknownFile {
		t.Fatalf("doomed stream error = %v, want RemoteError{CodeUnknownFile}", badErr)
	}
	if goodErr != nil {
		t.Fatalf("valid stream died alongside the doomed one: %v", goodErr)
	}
	want, err := valid.Params(m.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(goodData) != want.DataLen {
		t.Fatalf("valid stream decoded %d bytes, want %d", len(goodData), want.DataLen)
	}

	// The connection must still serve new streams after the failure.
	after, err := fetchChunk(ctx, s, m.Chunks[len(m.Chunks)-1], m.Plan)
	if err != nil {
		t.Fatalf("stream opened after a stream error failed: %v", err)
	}
	if len(after) == 0 {
		t.Fatal("empty decode")
	}
}

// TestPeerSessionVerificationErrorIsolation: a stream whose messages
// fail validation (wrong payload length for its parameters) dies with
// that error — and only that stream; a concurrent valid stream on the
// same connection completes.
func TestPeerSessionVerificationErrorIsolation(t *testing.T) {
	c, err := client.New(identity(t, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("verify me "), 400)
	m, addrs := buildAndDisseminate(t, c, data, 1)
	if len(m.Chunks) < 2 {
		t.Fatalf("want ≥2 chunks, got %d", len(m.Chunks))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	s, err := c.NewPeerSession(ctx, addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Stream B asks for a real generation but decodes it with the wrong
	// parameters, so every received message fails validation.
	wrongParams, err := rlnc.NewParams(gf.MustNew(gf.Bits8), 4, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg       sync.WaitGroup
		goodData []byte
		goodErr  error
		badErr   error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		goodData, goodErr = fetchChunk(ctx, s, m.Chunks[0], m.Plan)
	}()
	go func() {
		defer wg.Done()
		pipe, err := rlnc.NewPipeline(wrongParams, m.Chunks[1].FileID, testSecret(), nil, rlnc.PipelineConfig{})
		if err != nil {
			badErr = err
			return
		}
		defer pipe.Close()
		badErr = s.Fetch(ctx, m.Chunks[1].FileID, pipe, nil)
	}()
	wg.Wait()

	if !errors.Is(badErr, rlnc.ErrBadParams) {
		t.Fatalf("mis-parameterized stream error = %v, want ErrBadParams", badErr)
	}
	if goodErr != nil {
		t.Fatalf("valid stream died alongside the failing one: %v", goodErr)
	}
	if len(goodData) == 0 {
		t.Fatal("empty decode on the valid stream")
	}
}

// TestPeerSessionClosed: Fetch on a closed session fails fast instead
// of hanging.
func TestPeerSessionClosed(t *testing.T) {
	c, err := client.New(identity(t, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("close "), 200)
	m, addrs := buildAndDisseminate(t, c, data, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s, err := c.NewPeerSession(ctx, addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := fetchChunk(ctx, s, m.Chunks[0], m.Plan); err == nil {
		t.Fatal("fetch on closed session succeeded")
	}
}
