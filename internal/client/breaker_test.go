package client

// White-box coverage of the per-peer health registry and circuit
// breaker: trip on consecutive failures, cooldown with a single
// half-open probe, doubled quarantine on probe failure, recovery on
// success, and the hedge-delay estimator.

import (
	"testing"
	"time"
)

// testRegistry builds a registry with a stepped fake clock.
func testRegistry(opt Options) (*healthRegistry, *time.Time) {
	var m clientMetrics
	h := newHealthRegistry(&m, opt.withDefaults())
	now := time.Unix(1000, 0)
	h.now = func() time.Time { return now }
	return h, &now
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	h, _ := testRegistry(Options{BreakerThreshold: 3})
	for i := 0; i < 2; i++ {
		h.recordFailure("p")
	}
	if !h.allow("p") {
		t.Fatal("breaker open below threshold")
	}
	h.recordFailure("p")
	if h.allow("p") {
		t.Fatal("breaker still closed after threshold consecutive failures")
	}
	if s := h.snapshot("p"); s.Breaker != "open" || s.ConsecFails != 3 {
		t.Fatalf("snapshot %+v, want open with 3 consecutive failures", s)
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	h, _ := testRegistry(Options{BreakerThreshold: 2})
	h.recordFailure("p")
	h.recordSuccess("p", 0)
	h.recordFailure("p")
	if !h.allow("p") {
		t.Fatal("interleaved success did not reset the failure run")
	}
}

func TestBreakerHalfOpenSingleProbeAndRecovery(t *testing.T) {
	h, now := testRegistry(Options{BreakerThreshold: 1, BreakerCooldown: time.Second})
	h.recordFailure("p")
	if h.allow("p") || h.beginProbe("p") {
		t.Fatal("probe granted inside the cooldown")
	}
	*now = now.Add(time.Second)
	if !h.allow("p") {
		t.Fatal("cooled-down breaker not a probe candidate")
	}
	if !h.beginProbe("p") {
		t.Fatal("probe slot not granted after cooldown")
	}
	// The slot is exclusive until the probe resolves.
	if h.beginProbe("p") || h.allow("p") {
		t.Fatal("second concurrent probe granted")
	}
	if s := h.snapshot("p"); s.Breaker != "half-open" {
		t.Fatalf("breaker %s, want half-open", s.Breaker)
	}
	h.recordSuccess("p", 10*time.Millisecond)
	if s := h.snapshot("p"); s.Breaker != "closed" {
		t.Fatalf("breaker %s after successful probe, want closed", s.Breaker)
	}
}

func TestBreakerFailedProbeDoublesCooldown(t *testing.T) {
	h, now := testRegistry(Options{BreakerThreshold: 1, BreakerCooldown: time.Second})
	h.recordFailure("p")
	*now = now.Add(time.Second)
	if !h.beginProbe("p") {
		t.Fatal("probe not granted")
	}
	h.recordFailure("p") // probe failed: re-open, cooldown doubles to 2s
	if h.allow("p") {
		t.Fatal("breaker not re-opened after failed probe")
	}
	*now = now.Add(time.Second)
	if h.beginProbe("p") {
		t.Fatal("probe granted after only the original cooldown")
	}
	*now = now.Add(time.Second)
	if !h.beginProbe("p") {
		t.Fatal("probe not granted after the doubled cooldown")
	}
}

func TestHealthOrderRanksAndQuarantines(t *testing.T) {
	h, now := testRegistry(Options{BreakerThreshold: 1, BreakerCooldown: time.Second})
	fast := &PeerSession{addr: "fast"}
	slow := &PeerSession{addr: "slow"}
	sick := &PeerSession{addr: "sick"}
	h.recordSuccess("fast", 10*time.Millisecond)
	h.recordSuccess("slow", 500*time.Millisecond)
	h.recordFailure("sick")

	ladder, probeFrom := h.order([]*PeerSession{slow, sick, fast}, 0)
	if len(ladder) != 2 || probeFrom != 2 {
		t.Fatalf("ladder %d long, probeFrom %d: quarantined peer not excluded", len(ladder), probeFrom)
	}
	if ladder[0] != fast || ladder[1] != slow {
		t.Fatalf("ladder order [%s %s], want healthiest first", ladder[0].addr, ladder[1].addr)
	}

	// Rotation spreads concurrent chunks across healthy peers only.
	ladder, _ = h.order([]*PeerSession{slow, sick, fast}, 1)
	if ladder[0] != slow {
		t.Fatalf("rotated ladder starts at %s, want slow", ladder[0].addr)
	}

	// After the cooldown the sick peer rejoins as a probe candidate,
	// always ranked after the healthy rungs.
	*now = now.Add(time.Second)
	ladder, probeFrom = h.order([]*PeerSession{sick, fast, slow}, 0)
	if len(ladder) != 3 || probeFrom != 2 || ladder[2] != sick {
		t.Fatalf("probe candidate placement wrong: len %d probeFrom %d last %s",
			len(ladder), probeFrom, ladder[len(ladder)-1].addr)
	}
}

func TestHedgeDelayEstimator(t *testing.T) {
	h, _ := testRegistry(Options{})
	if d := h.hedgeDelay(); d != DefaultHedgeDelay {
		t.Fatalf("cold-start hedge delay %v, want %v", d, DefaultHedgeDelay)
	}
	for i := 0; i < 20; i++ {
		h.recordSuccess("p", 100*time.Millisecond)
	}
	d := h.hedgeDelay()
	if d != 150*time.Millisecond { // p95 of identical samples x1.5 headroom
		t.Fatalf("adaptive hedge delay %v, want 150ms", d)
	}
	h.hedgeOverride = 42 * time.Millisecond
	if d := h.hedgeDelay(); d != 42*time.Millisecond {
		t.Fatalf("override ignored: %v", d)
	}
}

// TestShedProbeReleasesHalfOpenSlot pins the probe-slot release: a
// half-open probe stream that ends in a BUSY shed proved the peer
// alive, so the breaker closes and the slot frees. Classifying the
// shed without touching the breaker used to strand the peer in
// half-open with probing set forever — permanently excluded from the
// hedge ladder.
func TestShedProbeReleasesHalfOpenSlot(t *testing.T) {
	h, now := testRegistry(Options{BreakerThreshold: 1, BreakerCooldown: time.Second})
	h.recordFailure("p")
	*now = now.Add(time.Second)
	if !h.beginProbe("p") {
		t.Fatal("probe not granted after cooldown")
	}
	h.recordShed("p")
	if s := h.snapshot("p"); s.Breaker != "closed" || s.Sheds != 1 {
		t.Fatalf("snapshot %+v after shed probe, want closed breaker with 1 shed", s)
	}
	if !h.allow("p") {
		t.Fatal("peer still excluded after its shed probe resolved")
	}
	ladder, probeFrom := h.order([]*PeerSession{{addr: "p"}}, 0)
	if len(ladder) != 1 || probeFrom != 1 {
		t.Fatalf("ladder len %d probeFrom %d, want the peer back as a healthy rung", len(ladder), probeFrom)
	}
}

func TestShedsFeedScoreNotBreaker(t *testing.T) {
	h, _ := testRegistry(Options{BreakerThreshold: 1})
	for i := 0; i < 10; i++ {
		h.recordShed("busy")
	}
	if !h.allow("busy") {
		t.Fatal("sheds tripped the breaker; only failures may")
	}
	if s := h.snapshot("busy"); s.Sheds != 10 || s.Failures != 0 {
		t.Fatalf("snapshot %+v, want 10 sheds and 0 failures", s)
	}
	// But they do nudge the ranking behind an unshedded peer.
	calm := &PeerSession{addr: "calm"}
	busy := &PeerSession{addr: "busy"}
	ladder, _ := h.order([]*PeerSession{busy, calm}, 0)
	if ladder[0] != calm {
		t.Fatal("shed-heavy peer ranked ahead of a calm one")
	}
}
