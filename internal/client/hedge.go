package client

// Hedged chunk fetches (DESIGN.md §15). Where fetchChunkMux streams a
// chunk from every session at once — maximum instantaneous goodput,
// maximum wasted upload bandwidth — the hedged scheduler walks a
// health-ranked ladder: the chunk starts on the single healthiest
// session, and only when the stream stalls for a full hedge delay
// (p95-based, health.go) or ends without completing the chunk is it
// re-issued on the next-healthiest peer. The shared RLNC sink makes the
// race safe: whichever stream delivers the last innovative message
// wins, and duplicates are just redundant rows. Quarantined peers whose
// breaker cooldown has lapsed ride along as half-open probes so
// recovery is observed without risking the chunk on them.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"asymshare/internal/rlnc"
	"asymshare/internal/wire"
)

// hedgeLaunch tracks one ladder rung's in-flight stream.
type hedgeLaunch struct {
	sess    *PeerSession
	started time.Time
	probe   bool
	bytes   atomic.Int64
	err     error // written by the stream goroutine, read after wg.Wait
}

// fetchChunkHedged downloads one generation over the open sessions with
// hedging: one stream at a time down the health ladder, re-issuing on
// stall, plus concurrent half-open probes for cooled-down quarantined
// peers. rotate (the chunk index) spreads concurrent chunks across
// equally healthy peers. Failing here is cheap — FetchFile falls back
// to the all-sessions mux path, which ignores the breaker entirely.
func (c *Client) fetchChunkHedged(ctx context.Context, sessions []*PeerSession, rotate int,
	params rlnc.Params, fileID uint64, secret []byte, digests map[uint64]rlnc.Digest) ([]byte, FetchStats, error) {
	stats := FetchStats{BytesFrom: make(map[string]uint64, len(sessions))}
	ladder, probeFrom := c.health.order(sessions, rotate)
	if len(ladder) == 0 {
		return nil, stats, fmt.Errorf("%w: every session quarantined", ErrNoPeers)
	}
	req := FetchRequest{Params: params, FileID: fileID, Secret: secret, Digests: digests}
	sink, telemetry, err := req.newSink()
	if err != nil {
		return nil, stats, err
	}
	if closer, ok := sink.(interface{ Close() }); ok {
		defer closer.Close()
	}
	stopSampling := c.m.sampleDecode(telemetry)

	start := time.Now()
	streamCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu          sync.Mutex // guards stats.BytesFrom
		wg          sync.WaitGroup
		progress    atomic.Int64
		launches    = make([]*hedgeLaunch, len(ladder))
		results     = make(chan int, len(ladder))
		outstanding int
	)
	launch := func(i int, probe bool) {
		l := &hedgeLaunch{sess: ladder[i], started: time.Now(), probe: probe}
		launches[i] = l
		outstanding++
		wg.Add(1)
		go func() {
			defer wg.Done()
			fp := l.sess.Fingerprint()
			l.err = l.sess.FetchStream(streamCtx,
				StreamRequest{FileID: fileID, Priority: c.opt.Priority}, sink, func(n int) {
					l.bytes.Add(int64(n))
					progress.Add(int64(n))
					mu.Lock()
					stats.BytesFrom[fp] += uint64(n)
					mu.Unlock()
				})
			results <- i
		}()
	}
	// launchNext continues the ladder onto the next unstarted healthy
	// rung; probe rungs are handled at start-up only.
	launchNext := func() bool {
		for i := 0; i < probeFrom; i++ {
			if launches[i] == nil {
				launch(i, false)
				return true
			}
		}
		return false
	}

	// Primary stream plus every claimable half-open probe. The probes
	// are why a quarantined peer can ever be observed recovering: its
	// single post-cooldown stream runs alongside a healthy primary, so
	// the chunk never depends on it. When every session is quarantined
	// (probeFrom == 0) the first probe candidate doubles as the
	// primary, so the probe loop skips any rung already launched —
	// otherwise ladder[0] would stream twice, overflowing results and
	// clobbering launches[0].
	launch(0, false)
	for i := probeFrom; i < len(ladder); i++ {
		if launches[i] != nil {
			continue
		}
		if c.health.beginProbe(ladder[i].Addr()) {
			launch(i, true)
		}
	}

	delay := c.health.hedgeDelay()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var lastProgress int64
loop:
	for outstanding > 0 {
		select {
		case <-ctx.Done():
			break loop
		case <-results:
			outstanding--
			if sink.Done() {
				break loop
			}
			// The rung ended — exhausted, shed, or failed — without
			// completing the chunk: walk the ladder immediately rather
			// than waiting out the hedge timer.
			launchNext()
		case <-timer.C:
			if progress.Load() == lastProgress && !sink.Done() {
				// A full hedge delay with not one byte of progress:
				// re-issue the chunk on the next-healthiest peer. The
				// straggler keeps running — it may still win — until
				// the chunk completes and cancel() reaps it.
				if launchNext() {
					c.m.hedgeLaunched.Inc()
				}
			}
			lastProgress = progress.Load()
			timer.Reset(delay)
		}
	}
	cancel()
	wg.Wait()
	stats.Elapsed = time.Since(start)
	stopSampling()

	completed := sink.Done()
	c.classifyHedged(launches, completed, delay)

	st := sink.Stats()
	stats.Messages = st.Received
	stats.Innovative = st.Accepted
	stats.Rejected = st.Rejected

	if !completed {
		err := ctx.Err()
		if err == nil {
			errs := make([]error, 0, len(launches))
			for _, l := range launches {
				if l != nil && l.err != nil {
					errs = append(errs, l.err)
				}
			}
			err = fmt.Errorf("%w: rank %d of %d (%s)",
				ErrIncomplete, sink.Rank(), params.K, joinErrs(errs))
		}
		c.m.recordFetch(stats, 0, err)
		return nil, stats, err
	}
	data, err := sink.Decode()
	if err != nil {
		c.m.recordFetch(stats, 0, err)
		return nil, stats, err
	}
	c.m.recordFetch(stats, len(data), nil)
	if telemetry != nil {
		c.m.recordDecodeTelemetry(telemetry())
	}
	return data, stats, nil
}

// classifyHedged folds every launched stream's outcome into the health
// registry. Called after wg.Wait, so err fields are settled.
func (c *Client) classifyHedged(launches []*hedgeLaunch, completed bool, delay time.Duration) {
	for _, l := range launches {
		if l == nil {
			continue
		}
		addr := l.sess.Addr()
		elapsed := time.Since(l.started)
		var busy *wire.Busy
		switch {
		case errors.As(l.err, &busy):
			// Shed under overload: an honest answer, not sickness.
			c.health.recordShed(addr)
			c.m.shedsObserved.Inc()
		case l.err != nil:
			c.health.recordFailure(addr)
		case completed && l.bytes.Load() == 0 && elapsed > delay:
			// Held a stream for a whole hedge delay and contributed
			// nothing while another peer finished the chunk: a stall —
			// the exact pathology hedging exists to route around.
			c.health.recordFailure(addr)
			c.m.hedgeStalls.Inc()
		case completed && l.bytes.Load() > 0:
			c.health.recordSuccess(addr, elapsed)
		default:
			// Exhausted its stored messages or arrived too late to
			// matter: liveness proven, no latency sample.
			c.health.recordSuccess(addr, 0)
		}
	}
}
