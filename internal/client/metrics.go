package client

import (
	"time"

	"asymshare/internal/metrics"
	"asymshare/internal/rlnc"
)

// Exported client metric names (see DESIGN.md §7). The redundancy
// counters quantify the paper's q/(q-1) expected overhead of random
// linear coding (Sec. III-C): redundant = received - innovative -
// rejected, so redundant/innovative should converge to 1/(q-1).
const (
	MetricFetchDuration      = "client_fetch_duration_seconds"
	MetricFetches            = "client_fetches_total"
	MetricMessages           = "client_messages_total"
	MetricInnovativeMessages = "client_innovative_messages_total"
	MetricRedundantMessages  = "client_redundant_messages_total"
	MetricRejectedMessages   = "client_rejected_messages_total"
	MetricDecodedBytes       = "client_decoded_bytes_total"
	MetricReceivedBytes      = "client_received_bytes_total"
	MetricReceivedBytesRate  = "client_received_bytes_rate"

	// Pipeline-engine decode telemetry (DESIGN.md §9): how deep the
	// payload-elimination queue runs, how busy the worker pool is, and
	// how many payload bytes the row operations have processed.
	MetricDecodeQueueDepth  = "client_decode_queue_depth"
	MetricDecodeBusyWorkers = "client_decode_busy_workers"
	MetricDecodeElimBytes   = "client_decode_eliminated_bytes_total"

	// Overload-resilience families (DESIGN.md §15): hedged re-issues,
	// per-peer circuit breakers, and BUSY sheds observed from peers.
	MetricHedgeLaunched      = "hedge_launched_total"
	MetricHedgeStalls        = "hedge_stalls_total"
	MetricBreakerOpens       = "breaker_opens_total"
	MetricBreakerProbes      = "breaker_probes_total"
	MetricBreakerRecoveries  = "breaker_recoveries_total"
	MetricBreakerOpenCurrent = "breaker_open_current"
	MetricShedsObserved      = "client_sheds_observed_total"
)

// clientMetrics holds the download-side instruments; the zero value
// (all nil) records nothing.
type clientMetrics struct {
	fetchDur   *metrics.Histogram
	fetches    *metrics.Counter
	fetchFails *metrics.Counter
	messages   *metrics.Counter
	innovative *metrics.Counter
	redundant  *metrics.Counter
	rejected   *metrics.Counter
	decoded    *metrics.Counter
	received   *metrics.Counter
	recvRate   *metrics.Rate

	decodeDepth *metrics.Gauge
	decodeBusy  *metrics.Gauge
	decodeElim  *metrics.Counter

	hedgeLaunched     *metrics.Counter
	hedgeStalls       *metrics.Counter
	breakerOpens      *metrics.Counter
	breakerProbes     *metrics.Counter
	breakerRecoveries *metrics.Counter
	breakerOpen       *metrics.Gauge
	shedsObserved     *metrics.Counter
}

// Instrument attaches per-fetch instrumentation to the client. Call it
// once, before the client is shared between goroutines; a nil registry
// leaves the client uninstrumented.
func (c *Client) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	c.m = clientMetrics{
		fetchDur:   reg.Histogram(MetricFetchDuration, "Wall-clock duration of one generation fetch.", metrics.UnitSeconds),
		fetches:    reg.Counter(MetricFetches, "Generation fetches attempted, by result.", metrics.L("result", "ok")),
		fetchFails: reg.Counter(MetricFetches, "Generation fetches attempted, by result.", metrics.L("result", "error")),
		messages:   reg.Counter(MetricMessages, "Messages offered to the decoder."),
		innovative: reg.Counter(MetricInnovativeMessages, "Messages that increased decoder rank."),
		redundant:  reg.Counter(MetricRedundantMessages, "Authentic messages carrying no new information (q/(q-1) overhead)."),
		rejected:   reg.Counter(MetricRejectedMessages, "Messages that failed digest authentication."),
		decoded:    reg.Counter(MetricDecodedBytes, "Plaintext bytes recovered by successful decodes."),
		received:   reg.Counter(MetricReceivedBytes, "Encoded message bytes received from peers."),
		recvRate:   reg.Rate(MetricReceivedBytesRate, "EWMA download goodput, bytes/second.", metrics.DefaultRateHalfLife),

		decodeDepth: reg.Gauge(MetricDecodeQueueDepth, "Payload elimination jobs queued in the decode pipeline."),
		decodeBusy:  reg.Gauge(MetricDecodeBusyWorkers, "Decode pipeline workers currently eliminating a segment."),
		decodeElim:  reg.Counter(MetricDecodeElimBytes, "Payload bytes processed by decode row operations."),

		hedgeLaunched:     reg.Counter(MetricHedgeLaunched, "Hedge streams re-issued after a stall on the primary peer."),
		hedgeStalls:       reg.Counter(MetricHedgeStalls, "Streams judged stalled: held a slot for a full hedge delay yet contributed nothing."),
		breakerOpens:      reg.Counter(MetricBreakerOpens, "Circuit breakers tripped open by consecutive peer failures."),
		breakerProbes:     reg.Counter(MetricBreakerProbes, "Half-open probe streams launched against quarantined peers."),
		breakerRecoveries: reg.Counter(MetricBreakerRecoveries, "Breakers closed again after a successful probe or fetch."),
		breakerOpen:       reg.Gauge(MetricBreakerOpenCurrent, "Peers currently quarantined by an open circuit breaker."),
		shedsObserved:     reg.Counter(MetricShedsObserved, "BUSY sheds received from overloaded peers."),
	}
}

// recordFetch folds one completed FetchGeneration into the instrument
// set. decodedBytes is zero when the fetch failed.
func (m *clientMetrics) recordFetch(stats FetchStats, decodedBytes int, err error) {
	m.fetchDur.ObserveDuration(stats.Elapsed)
	if err != nil {
		m.fetchFails.Inc()
	} else {
		m.fetches.Inc()
	}
	m.messages.Add(uint64(stats.Messages))
	m.innovative.Add(uint64(stats.Innovative))
	m.rejected.Add(uint64(stats.Rejected))
	if red := stats.Messages - stats.Innovative - stats.Rejected; red > 0 {
		m.redundant.Add(uint64(red))
	}
	m.decoded.Add(uint64(decodedBytes))
}

// sampleDecode starts a goroutine publishing the pipeline's queue
// depth and worker utilization gauges while a fetch runs; the returned
// stop function ends sampling and zeroes the gauges. It is a no-op
// (returning a no-op stop) without instrumentation or with the
// sequential engine, which has no telemetry.
func (m *clientMetrics) sampleDecode(telemetry func() rlnc.PipelineTelemetry) func() {
	if m.decodeDepth == nil || telemetry == nil {
		return func() {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				t := telemetry()
				m.decodeDepth.Set(float64(t.QueueDepth))
				m.decodeBusy.Set(float64(t.BusyWorkers))
			case <-quit:
				return
			}
		}
	}()
	return func() {
		close(quit)
		<-done
		m.decodeDepth.Set(0)
		m.decodeBusy.Set(0)
	}
}

// recordDecodeTelemetry folds the pipeline's final counters into the
// instruments after a successful decode.
func (m *clientMetrics) recordDecodeTelemetry(t rlnc.PipelineTelemetry) {
	m.decodeElim.Add(t.EliminatedBytes)
}
