package client

import "asymshare/internal/metrics"

// Exported client metric names (see DESIGN.md §7). The redundancy
// counters quantify the paper's q/(q-1) expected overhead of random
// linear coding (Sec. III-C): redundant = received - innovative -
// rejected, so redundant/innovative should converge to 1/(q-1).
const (
	MetricFetchDuration      = "client_fetch_duration_seconds"
	MetricFetches            = "client_fetches_total"
	MetricMessages           = "client_messages_total"
	MetricInnovativeMessages = "client_innovative_messages_total"
	MetricRedundantMessages  = "client_redundant_messages_total"
	MetricRejectedMessages   = "client_rejected_messages_total"
	MetricDecodedBytes       = "client_decoded_bytes_total"
	MetricReceivedBytes      = "client_received_bytes_total"
	MetricReceivedBytesRate  = "client_received_bytes_rate"
)

// clientMetrics holds the download-side instruments; the zero value
// (all nil) records nothing.
type clientMetrics struct {
	fetchDur   *metrics.Histogram
	fetches    *metrics.Counter
	fetchFails *metrics.Counter
	messages   *metrics.Counter
	innovative *metrics.Counter
	redundant  *metrics.Counter
	rejected   *metrics.Counter
	decoded    *metrics.Counter
	received   *metrics.Counter
	recvRate   *metrics.Rate
}

// Instrument attaches per-fetch instrumentation to the client. Call it
// once, before the client is shared between goroutines; a nil registry
// leaves the client uninstrumented.
func (c *Client) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	c.m = clientMetrics{
		fetchDur:   reg.Histogram(MetricFetchDuration, "Wall-clock duration of one generation fetch.", metrics.UnitSeconds),
		fetches:    reg.Counter(MetricFetches, "Generation fetches attempted, by result.", metrics.L("result", "ok")),
		fetchFails: reg.Counter(MetricFetches, "Generation fetches attempted, by result.", metrics.L("result", "error")),
		messages:   reg.Counter(MetricMessages, "Messages offered to the decoder."),
		innovative: reg.Counter(MetricInnovativeMessages, "Messages that increased decoder rank."),
		redundant:  reg.Counter(MetricRedundantMessages, "Authentic messages carrying no new information (q/(q-1) overhead)."),
		rejected:   reg.Counter(MetricRejectedMessages, "Messages that failed digest authentication."),
		decoded:    reg.Counter(MetricDecodedBytes, "Plaintext bytes recovered by successful decodes."),
		received:   reg.Counter(MetricReceivedBytes, "Encoded message bytes received from peers."),
		recvRate:   reg.Rate(MetricReceivedBytesRate, "EWMA download goodput, bytes/second.", metrics.DefaultRateHalfLife),
	}
}

// recordFetch folds one completed FetchGeneration into the instrument
// set. decodedBytes is zero when the fetch failed.
func (m *clientMetrics) recordFetch(stats FetchStats, decodedBytes int, err error) {
	m.fetchDur.ObserveDuration(stats.Elapsed)
	if err != nil {
		m.fetchFails.Inc()
	} else {
		m.fetches.Inc()
	}
	m.messages.Add(uint64(stats.Messages))
	m.innovative.Add(uint64(stats.Innovative))
	m.rejected.Add(uint64(stats.Rejected))
	if red := stats.Messages - stats.Innovative - stats.Rejected; red > 0 {
		m.redundant.Add(uint64(red))
	}
	m.decoded.Add(uint64(decodedBytes))
}
