package client

// Per-peer circuit breaker (DESIGN.md §15). A peer that fails
// BreakerThreshold consecutive times is quarantined: the hedged chunk
// scheduler stops ranking it into the ladder until its cooldown lapses,
// then admits exactly one half-open probe stream. A successful probe
// closes the breaker; a failed one re-opens it with a doubled cooldown,
// capped at maxBreakerCooldown. The breaker only gates the hedged path
// — the classic parallel fetch and its retry loop are deliberately left
// breaker-blind so a client with no healthy alternatives still tries
// every peer it knows.

import "time"

// Breaker defaults for Options fields left zero.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 2 * time.Second

	// maxBreakerCooldown caps the doubling so a long-sick peer is
	// re-probed at least this often.
	maxBreakerCooldown = 30 * time.Second
)

// breakerState is one peer's circuit position.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// allowLocked reports whether the peer may be handed work right now:
// always when closed, after the cooldown when open (as a probe
// candidate), and in half-open only while its single probe slot is
// unclaimed. Read-only — claiming the slot is beginProbe's job.
func (p *peerHealth) allowLocked(now time.Time) bool {
	switch p.state {
	case breakerOpen:
		return !now.Before(p.openUntil)
	case breakerHalfOpen:
		return !p.probing
	default:
		return true
	}
}

// tripLocked applies one failure to the breaker. From half-open the
// probe has failed: re-open with a doubled cooldown. From closed, open
// once the consecutive-failure run reaches the threshold. Returns true
// when this failure newly opened a closed breaker (the caller accounts
// the transition outside the lock).
func (p *peerHealth) tripLocked(now time.Time, threshold int, cooldown time.Duration) bool {
	switch p.state {
	case breakerHalfOpen:
		p.state = breakerOpen
		p.probing = false
		p.cooldown *= 2
		if p.cooldown > maxBreakerCooldown {
			p.cooldown = maxBreakerCooldown
		}
		p.openUntil = now.Add(p.cooldown)
	case breakerClosed:
		if p.consecFails >= threshold {
			p.state = breakerOpen
			p.cooldown = cooldown
			p.openUntil = now.Add(cooldown)
			return true
		}
	}
	return false
}

// closeBreakerLocked resets the circuit on success. Returns true when
// the breaker was open or half-open (a recovery the caller accounts).
func (p *peerHealth) closeBreakerLocked() bool {
	if p.state == breakerClosed {
		return false
	}
	p.state = breakerClosed
	p.probing = false
	p.cooldown = 0
	return true
}

// beginProbe claims addr's single half-open probe slot, transitioning a
// cooled-down open breaker to half-open. Returns true when the caller
// now owns the probe and should launch exactly one stream; false when
// the peer is healthy (no probe needed), still cooling down, or another
// chunk's scheduler already holds the slot.
func (h *healthRegistry) beginProbe(addr string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[addr]
	if !ok {
		return false
	}
	now := h.now()
	if p.state == breakerOpen && !now.Before(p.openUntil) {
		p.state = breakerHalfOpen
		p.probing = true
		h.m.breakerProbes.Inc()
		return true
	}
	if p.state == breakerHalfOpen && !p.probing {
		p.probing = true
		h.m.breakerProbes.Inc()
		return true
	}
	return false
}

// allow reports whether the hedged scheduler may hand addr work right
// now (closed, cooled-down, or half-open with a free probe slot).
func (h *healthRegistry) allow(addr string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[addr]
	if !ok {
		return true
	}
	return p.allowLocked(h.now())
}
