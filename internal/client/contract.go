package client

// Storage-contract RPCs: the owner side of the capacity negotiation.
// Each call is one short exchange — propose/renew/release a contract,
// or list the obligations a peer holds for us — over the standard
// authenticated framing. A peer that refuses (over advertised
// capacity, unknown contract, not the owner) answers with a typed
// error frame, which wire.Expect surfaces as *wire.RemoteError so
// callers can branch on the code and try the next candidate.

import (
	"context"
	"fmt"
	"io"

	"asymshare/internal/auth"
	"asymshare/internal/wire"
)

// ProposeContract asks the peer at addr to accept a storage obligation
// and returns its grant along with the peer's key fingerprint (the
// ledger identity to credit when the obligation is honored).
func (c *Client) ProposeContract(ctx context.Context, addr string, p wire.ContractPropose) (wire.ContractGrant, string, error) {
	conn, peerKey, err := c.dial(ctx, addr, wire.RoleUser)
	if err != nil {
		return wire.ContractGrant{}, "", err
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.TypeContractPropose, p.Marshal()); err != nil {
		return wire.ContractGrant{}, "", err
	}
	grant, err := expectGrant(conn, addr, "propose contract to")
	if err != nil {
		return wire.ContractGrant{}, "", err
	}
	_ = wire.WriteFrame(conn, wire.TypeBye, nil)
	return grant, auth.Fingerprint(peerKey), nil
}

// RenewContract extends an accepted contract's term.
func (c *Client) RenewContract(ctx context.Context, addr string, r wire.ContractRenew) (wire.ContractGrant, error) {
	conn, _, err := c.dial(ctx, addr, wire.RoleUser)
	if err != nil {
		return wire.ContractGrant{}, err
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.TypeContractRenew, r.Marshal()); err != nil {
		return wire.ContractGrant{}, err
	}
	grant, err := expectGrant(conn, addr, "renew contract with")
	if err != nil {
		return wire.ContractGrant{}, err
	}
	_ = wire.WriteFrame(conn, wire.TypeBye, nil)
	return grant, nil
}

// ReleaseContract ends an obligation early, freeing the peer's
// capacity.
func (c *Client) ReleaseContract(ctx context.Context, addr string, r wire.ContractRelease) (wire.ContractGrant, error) {
	conn, _, err := c.dial(ctx, addr, wire.RoleUser)
	if err != nil {
		return wire.ContractGrant{}, err
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.TypeContractRelease, r.Marshal()); err != nil {
		return wire.ContractGrant{}, err
	}
	grant, err := expectGrant(conn, addr, "release contract with")
	if err != nil {
		return wire.ContractGrant{}, err
	}
	_ = wire.WriteFrame(conn, wire.TypeBye, nil)
	return grant, nil
}

// ListContracts returns the peer's capacity line and the contracts it
// holds for this client's identity.
func (c *Client) ListContracts(ctx context.Context, addr string) (wire.ContractInfo, error) {
	conn, _, err := c.dial(ctx, addr, wire.RoleUser)
	if err != nil {
		return wire.ContractInfo{}, err
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.TypeContractList, nil); err != nil {
		return wire.ContractInfo{}, err
	}
	frame, err := wire.Expect(conn, wire.TypeContractInfo)
	if err != nil {
		return wire.ContractInfo{}, fmt.Errorf("client: list contracts of %s: %w", addr, err)
	}
	var info wire.ContractInfo
	if err := info.Unmarshal(frame.Payload); err != nil {
		return wire.ContractInfo{}, err
	}
	_ = wire.WriteFrame(conn, wire.TypeBye, nil)
	return info, nil
}

// expectGrant reads the grant reply shared by the three mutation RPCs.
func expectGrant(conn io.Reader, addr, verb string) (wire.ContractGrant, error) {
	frame, err := wire.Expect(conn, wire.TypeContractGrant)
	if err != nil {
		return wire.ContractGrant{}, fmt.Errorf("client: %s %s: %w", verb, addr, err)
	}
	var grant wire.ContractGrant
	if err := grant.Unmarshal(frame.Payload); err != nil {
		return wire.ContractGrant{}, err
	}
	return grant, nil
}
