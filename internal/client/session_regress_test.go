package client

// Regression (ISSUE 10 satellite): a PeerSession receiving STREAM_ERROR
// twice for the same stream, or for a stream id it never opened, must
// neither panic nor leak pooled wire.Bufs. White-box: the session is
// built directly over a net.Pipe so the test controls every frame.

import (
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"

	"asymshare/internal/rlnc"
	"asymshare/internal/wire"
)

// pipeSession builds a PeerSession over an in-memory pipe, skipping
// dial and handshake, and starts its demux loop. The returned conn is
// the fake peer's end.
func pipeSession(t *testing.T) (*PeerSession, net.Conn) {
	t.Helper()
	cli, srv := net.Pipe()
	c := &Client{opt: Options{}.withDefaults()}
	c.health = newHealthRegistry(&c.m, c.opt)
	s := &PeerSession{
		c:           c,
		addr:        "pipe",
		conn:        cli,
		fingerprint: "pipe-peer",
		cw:          &sessionWriter{fw: wire.NewFrameWriter(cli)},
		streams:     make(map[uint64]*sessStream),
		closed:      make(chan struct{}),
	}
	go s.demux()
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv
}

func writeStreamError(t *testing.T, w net.Conn, fileID uint64, code uint16) {
	t.Helper()
	se := wire.StreamError{FileID: fileID, Code: code, Reason: "test"}
	if err := wire.WriteFrame(w, wire.TypeStreamError, se.Marshal()); err != nil {
		t.Fatal(err)
	}
}

func TestSessionDuplicateStreamErrorNoPanicNoLeak(t *testing.T) {
	before := wire.DefaultPool.Live()

	s, srv := pipeSession(t)
	const fileID = 7
	st := &sessStream{
		fileID: fileID,
		frames: make(chan *wire.Buf, sessStreamBuffer),
		done:   make(chan struct{}),
	}
	if err := s.register(st); err != nil {
		t.Fatal(err)
	}

	// A DATA frame queued on the stream before it fails: ownership sits
	// in st.frames until unregister drains it.
	payload := make([]byte, rlnc.MessageHeaderBytes)
	binary.BigEndian.PutUint64(payload, fileID)
	if err := wire.WriteFrame(srv, wire.TypeData, payload); err != nil {
		t.Fatal(err)
	}

	// First STREAM_ERROR kills the stream; the duplicate, a BUSY for
	// the now-unknown id, errors for a never-opened id, and a stray
	// DATA frame for it must all be absorbed without panic or leak.
	writeStreamError(t, srv, fileID, wire.CodeUnknownFile)
	writeStreamError(t, srv, fileID, wire.CodeUnknownFile)
	if err := wire.SendBusy(srv, fileID, wire.CodeBusy, 250, "late shed"); err != nil {
		t.Fatal(err)
	}
	writeStreamError(t, srv, 99, wire.CodeInternal)
	unknown := make([]byte, rlnc.MessageHeaderBytes)
	binary.BigEndian.PutUint64(unknown, 99)
	if err := wire.WriteFrame(srv, wire.TypeData, unknown); err != nil {
		t.Fatal(err)
	}

	select {
	case <-st.done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream not failed by STREAM_ERROR")
	}
	var remote *wire.RemoteError
	if !errors.As(st.err, &remote) || remote.Code != wire.CodeUnknownFile {
		t.Fatalf("stream error = %v, want RemoteError(CodeUnknownFile)", st.err)
	}

	// The session must still be alive (stream-scoped frames only): a
	// fresh stream registers fine.
	st2 := &sessStream{fileID: 8, frames: make(chan *wire.Buf, 1), done: make(chan struct{})}
	if err := s.register(st2); err != nil {
		t.Fatalf("session dead after duplicate STREAM_ERROR: %v", err)
	}
	s.unregister(st2)

	// Tear down and drain: every pooled buffer must come home.
	srv.Close()
	select {
	case <-s.closed:
	case <-time.After(5 * time.Second):
		t.Fatal("demux loop did not exit on peer close")
	}
	s.unregister(st)

	if live := wire.DefaultPool.Live(); live != before {
		t.Fatalf("pooled buffers leaked: live %d -> %d", before, live)
	}
}

// TestSessionBusyFailsOnlyItsStream pins the demux scoping of BUSY: the
// shed stream observes *wire.Busy with the peer's RETRY_AFTER hint and
// sibling streams keep running.
func TestSessionBusyFailsOnlyItsStream(t *testing.T) {
	s, srv := pipeSession(t)
	shed := &sessStream{fileID: 1, frames: make(chan *wire.Buf, 1), done: make(chan struct{})}
	kept := &sessStream{fileID: 2, frames: make(chan *wire.Buf, 1), done: make(chan struct{})}
	for _, st := range []*sessStream{shed, kept} {
		if err := s.register(st); err != nil {
			t.Fatal(err)
		}
	}
	if err := wire.SendBusy(srv, 1, wire.CodeBusy, 250, "at stream capacity"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-shed.done:
	case <-time.After(5 * time.Second):
		t.Fatal("BUSY did not fail its stream")
	}
	var busy *wire.Busy
	if !errors.As(shed.err, &busy) || busy.Code != wire.CodeBusy || busy.RetryAfterMillis != 250 {
		t.Fatalf("shed stream error = %v, want Busy with RetryAfterMillis 250", shed.err)
	}
	select {
	case <-kept.done:
		t.Fatalf("sibling stream failed by another stream's BUSY: %v", kept.err)
	default:
	}
	s.unregister(shed)
	s.unregister(kept)
}
