package client

// Chunk streaming (Sec. III-D): because each 1 MB generation is encoded
// independently, "large files (e.g., audio or visual data) [can] be
// 'streamed' to a user in small chunks, rather than forcing the user to
// wait until the entire file contents have been downloaded". Stream
// delivers decoded chunks strictly in order while prefetching later
// chunks in the background.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"asymshare/internal/chunk"
)

// DefaultPrefetch is how many chunks beyond the one being consumed are
// fetched concurrently.
const DefaultPrefetch = 2

// StreamOptions tunes StreamFile.
type StreamOptions struct {
	// Prefetch is the number of chunks fetched ahead of the consumer;
	// zero means DefaultPrefetch, negative means no prefetching.
	Prefetch int
}

type chunkResult struct {
	index int
	data  []byte
	stats FetchStats
	err   error
}

// Stream is an in-order sequence of decoded chunks.
type Stream struct {
	cancel  context.CancelFunc
	results chan chunkResult
	next    int
	total   int
	pending map[int]chunkResult

	mu    sync.Mutex
	stats FetchStats

	closeOnce sync.Once
	done      chan struct{}
}

// StreamFile starts fetching all chunks of the manifest from the given
// peers, decoding each independently, and returns a Stream that yields
// them in order.
func (c *Client) StreamFile(ctx context.Context, addrs []string, m *chunk.Manifest,
	secret []byte, opts StreamOptions) (*Stream, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(addrs) == 0 {
		return nil, ErrNoPeers
	}
	prefetch := opts.Prefetch
	switch {
	case prefetch == 0:
		prefetch = DefaultPrefetch
	case prefetch < 0:
		prefetch = 0
	}

	streamCtx, cancel := context.WithCancel(ctx)
	s := &Stream{
		cancel:  cancel,
		results: make(chan chunkResult, prefetch+1),
		total:   len(m.Chunks),
		pending: make(map[int]chunkResult),
		stats:   FetchStats{BytesFrom: make(map[string]uint64)},
		done:    make(chan struct{}),
	}

	// Workers pull chunk indices from a queue; at most prefetch+1 are
	// in flight, so the fetch never races far ahead of playback.
	indices := make(chan int)
	var wg sync.WaitGroup
	workers := prefetch + 1
	if workers > len(m.Chunks) {
		workers = len(m.Chunks)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range indices {
				info := m.Chunks[idx]
				params, err := info.Params(m.Plan)
				var res chunkResult
				if err != nil {
					res = chunkResult{index: idx, err: err}
				} else {
					data, stats, err := c.FetchGeneration(streamCtx, addrs, params,
						info.FileID, secret, info.Digests)
					res = chunkResult{index: idx, data: data, stats: stats, err: err}
				}
				select {
				case s.results <- res:
				case <-streamCtx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(indices)
		for i := 0; i < len(m.Chunks); i++ {
			select {
			case indices <- i:
			case <-streamCtx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(s.results)
	}()
	return s, nil
}

// Next returns the next chunk in file order. It returns io.EOF after
// the final chunk.
func (s *Stream) Next() (int, []byte, error) {
	for {
		if s.next >= s.total {
			return 0, nil, io.EOF
		}
		if res, ok := s.pending[s.next]; ok {
			delete(s.pending, s.next)
			return s.deliver(res)
		}
		res, ok := <-s.results
		if !ok {
			return 0, nil, fmt.Errorf("client: stream ended at chunk %d of %d", s.next, s.total)
		}
		if res.index != s.next {
			s.pending[res.index] = res
			continue
		}
		return s.deliver(res)
	}
}

func (s *Stream) deliver(res chunkResult) (int, []byte, error) {
	if res.err != nil {
		return res.index, nil, fmt.Errorf("chunk %d: %w", res.index, res.err)
	}
	s.mu.Lock()
	s.stats.Messages += res.stats.Messages
	s.stats.Innovative += res.stats.Innovative
	s.stats.Rejected += res.stats.Rejected
	s.stats.Elapsed += res.stats.Elapsed
	for k, v := range res.stats.BytesFrom {
		s.stats.BytesFrom[k] += v
	}
	s.mu.Unlock()
	s.next = res.index + 1
	return res.index, res.data, nil
}

// Stats returns the accumulated fetch statistics for the chunks
// delivered so far.
func (s *Stream) Stats() FetchStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.BytesFrom = make(map[string]uint64, len(s.stats.BytesFrom))
	for k, v := range s.stats.BytesFrom {
		out.BytesFrom[k] = v
	}
	return out
}

// Close aborts any in-flight fetches. It is safe to call multiple
// times and after EOF.
func (s *Stream) Close() error {
	s.closeOnce.Do(func() {
		s.cancel()
		close(s.done)
		// Drain so worker goroutines sending results can exit.
		go func() {
			for range s.results { //nolint:revive // drain only
			}
		}()
	})
	return nil
}

// Reader adapts a Stream to io.ReadCloser for byte-oriented consumers
// (e.g. feeding a media player).
func (s *Stream) Reader() io.ReadCloser {
	return &streamReader{stream: s}
}

type streamReader struct {
	stream *Stream
	buf    []byte
	err    error
}

func (r *streamReader) Read(p []byte) (int, error) {
	for len(r.buf) == 0 {
		if r.err != nil {
			return 0, r.err
		}
		_, data, err := r.stream.Next()
		if err != nil {
			r.err = err
			if errors.Is(err, io.EOF) {
				return 0, io.EOF
			}
			return 0, err
		}
		r.buf = data
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}

func (r *streamReader) Close() error { return r.stream.Close() }
