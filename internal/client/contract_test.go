package client_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"asymshare/internal/client"
	"asymshare/internal/peer"
	"asymshare/internal/store"
	"asymshare/internal/wire"
)

func startCapacityPeer(t *testing.T, seed byte, capacity int64) *peer.Node {
	t.Helper()
	n, err := peer.New(peer.Config{
		Identity:      identity(t, seed),
		Store:         store.NewMemory(),
		CapacityBytes: capacity,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// TestContractLifecycleOverWire drives propose → list → renew →
// release against a live peer and checks the book's accounting at each
// step.
func TestContractLifecycleOverWire(t *testing.T) {
	node := startCapacityPeer(t, 40, 10_000)
	addr := node.Addr().String()
	c, err := client.New(identity(t, 41), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	grant, fp, err := c.ProposeContract(ctx, addr, wire.ContractPropose{
		ContractID: 7, FileID: 100, Messages: 8, Bytes: 4000, TTLSeconds: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fp == "" {
		t.Error("empty peer fingerprint")
	}
	if grant.ContractID != 7 || grant.UsedBytes != 4000 || grant.CapacityBytes != 10_000 {
		t.Fatalf("grant = %+v", grant)
	}
	if grant.ExpiresUnix <= time.Now().Unix() {
		t.Errorf("grant expiry %d not in the future", grant.ExpiresUnix)
	}

	info, err := c.ListContracts(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	if info.UsedBytes != 4000 || len(info.Contracts) != 1 || info.Contracts[0].ContractID != 7 {
		t.Fatalf("contract info = %+v", info)
	}

	renewed, err := c.RenewContract(ctx, addr, wire.ContractRenew{ContractID: 7, TTLSeconds: 7200})
	if err != nil {
		t.Fatal(err)
	}
	if renewed.ExpiresUnix < grant.ExpiresUnix {
		t.Errorf("renewal moved expiry backwards: %d -> %d", grant.ExpiresUnix, renewed.ExpiresUnix)
	}

	released, err := c.ReleaseContract(ctx, addr, wire.ContractRelease{ContractID: 7})
	if err != nil {
		t.Fatal(err)
	}
	if released.ExpiresUnix != 0 {
		t.Errorf("release grant expiry = %d, want 0", released.ExpiresUnix)
	}
	if got := node.Contracts().Used(); got != 0 {
		t.Errorf("used after release = %d, want 0", got)
	}
}

// TestProposeOverCapacityTypedError pins the eviction-gap fix end to
// end: a peer asked to obligate more than its advertised capacity
// answers with the typed over-capacity wire error, the accounting is
// untouched, and other owners' proposals still fit.
func TestProposeOverCapacityTypedError(t *testing.T) {
	node := startCapacityPeer(t, 42, 5000)
	addr := node.Addr().String()
	c, err := client.New(identity(t, 43), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, _, err := c.ProposeContract(ctx, addr, wire.ContractPropose{
		ContractID: 1, FileID: 200, Messages: 8, Bytes: 4000, TTLSeconds: 3600,
	}); err != nil {
		t.Fatal(err)
	}
	_, _, err = c.ProposeContract(ctx, addr, wire.ContractPropose{
		ContractID: 2, FileID: 201, Messages: 8, Bytes: 4000, TTLSeconds: 3600,
	})
	var remote *wire.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("over-capacity proposal: err = %v, want *wire.RemoteError", err)
	}
	if remote.Code != wire.CodeOverCapacity {
		t.Fatalf("error code = %d, want CodeOverCapacity(%d)", remote.Code, wire.CodeOverCapacity)
	}
	if got := node.Contracts().Used(); got != 4000 {
		t.Errorf("used after refusal = %d, want 4000 (refused bytes must not count)", got)
	}
	// A proposal that fits still lands after the refusal.
	if _, _, err := c.ProposeContract(ctx, addr, wire.ContractPropose{
		ContractID: 3, FileID: 202, Messages: 2, Bytes: 1000, TTLSeconds: 3600,
	}); err != nil {
		t.Fatalf("fitting proposal after refusal: %v", err)
	}
}

// TestRenewUnknownContractTypedError: renewing a contract the peer
// never accepted (or has already expired) yields CodeUnknownContract.
func TestRenewUnknownContractTypedError(t *testing.T) {
	node := startCapacityPeer(t, 44, 0)
	c, err := client.New(identity(t, 45), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err = c.RenewContract(ctx, node.Addr().String(), wire.ContractRenew{ContractID: 99, TTLSeconds: 60})
	var remote *wire.RemoteError
	if !errors.As(err, &remote) || remote.Code != wire.CodeUnknownContract {
		t.Fatalf("err = %v, want RemoteError with CodeUnknownContract", err)
	}
}

// TestContractOwnershipEnforcedOverWire: a second identity cannot
// renew or release a contract it does not own.
func TestContractOwnershipEnforcedOverWire(t *testing.T) {
	node := startCapacityPeer(t, 46, 0)
	addr := node.Addr().String()
	owner, err := client.New(identity(t, 47), nil)
	if err != nil {
		t.Fatal(err)
	}
	stranger, err := client.New(identity(t, 48), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, _, err := owner.ProposeContract(ctx, addr, wire.ContractPropose{
		ContractID: 5, FileID: 300, Messages: 4, Bytes: 2000, TTLSeconds: 3600,
	}); err != nil {
		t.Fatal(err)
	}
	_, err = stranger.ReleaseContract(ctx, addr, wire.ContractRelease{ContractID: 5})
	var remote *wire.RemoteError
	if !errors.As(err, &remote) || remote.Code != wire.CodeNotPermitted {
		t.Fatalf("stranger release: err = %v, want CodeNotPermitted", err)
	}
	// The stranger's list shows nothing — placements are per-owner.
	info, err := stranger.ListContracts(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Contracts) != 0 {
		t.Errorf("stranger sees %d contracts, want 0", len(info.Contracts))
	}
}
