package client_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/chunk"
	"asymshare/internal/client"
	"asymshare/internal/gf"
	"asymshare/internal/peer"
	"asymshare/internal/rlnc"
	"asymshare/internal/store"
)

func identity(t *testing.T, b byte) *auth.Identity {
	t.Helper()
	id, err := auth.IdentityFromSeed(bytes.Repeat([]byte{b}, 32))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func testSecret() []byte {
	s := make([]byte, rlnc.SecretLen)
	for i := range s {
		s[i] = byte(i + 3)
	}
	return s
}

func startPeer(t *testing.T, seed byte, st store.Store) *peer.Node {
	t.Helper()
	if st == nil {
		st = store.NewMemory()
	}
	n, err := peer.New(peer.Config{Identity: identity(t, seed), Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func testPlan() chunk.Plan {
	return chunk.Plan{FieldBits: gf.Bits8, M: 128, ChunkSize: 1024}
}

// buildAndDisseminate shares data across the given number of peers and
// returns the manifest and peer addresses.
func buildAndDisseminate(t *testing.T, c *client.Client, data []byte, peers int) (*chunk.Manifest, []string) {
	t.Helper()
	share, err := chunk.BuildShare("stream.bin", data, testPlan(), 1000, testSecret())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var addrs []string
	for i := 0; i < peers; i++ {
		node := startPeer(t, byte(100+i), nil)
		batches, err := share.BatchForPeer(i, 1024)
		if err != nil {
			t.Fatal(err)
		}
		var flat []*rlnc.Message
		for _, b := range batches {
			flat = append(flat, b...)
		}
		if err := c.Disseminate(ctx, node.Addr().String(), flat); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, node.Addr().String())
	}
	return &share.Manifest, addrs
}

func TestNewValidation(t *testing.T) {
	if _, err := client.New(nil, nil); err == nil {
		t.Error("nil identity accepted")
	}
	c, err := client.New(identity(t, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == "" {
		t.Error("empty fingerprint")
	}
}

func TestStreamFileInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 5000) // 5 chunks of 1024 (last 904)
	rng.Read(data)
	c, err := client.New(identity(t, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	manifest, addrs := buildAndDisseminate(t, c, data, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	stream, err := c.StreamFile(ctx, addrs, manifest, testSecret(), client.StreamOptions{Prefetch: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	var got []byte
	for want := 0; ; want++ {
		idx, piece, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if idx != want {
			t.Fatalf("chunk %d delivered out of order (want %d)", idx, want)
		}
		got = append(got, piece...)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("streamed data mismatch")
	}
	stats := stream.Stats()
	if stats.Innovative == 0 || len(stats.BytesFrom) == 0 {
		t.Errorf("stats empty: %+v", stats)
	}
	// Next after EOF keeps returning EOF.
	if _, _, err := stream.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("post-EOF Next = %v", err)
	}
}

func TestStreamReader(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 3100)
	rng.Read(data)
	c, err := client.New(identity(t, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	manifest, addrs := buildAndDisseminate(t, c, data, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	stream, err := c.StreamFile(ctx, addrs, manifest, testSecret(), client.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := stream.Reader()
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reader data mismatch")
	}
	// Read after EOF stays EOF.
	var tiny [4]byte
	if _, err := r.Read(tiny[:]); !errors.Is(err, io.EOF) {
		t.Errorf("post-EOF Read = %v", err)
	}
}

func TestStreamCloseAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 4096)
	rng.Read(data)
	c, err := client.New(identity(t, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	manifest, addrs := buildAndDisseminate(t, c, data, 1)
	stream, err := c.StreamFile(context.Background(), addrs, manifest, testSecret(), client.StreamOptions{Prefetch: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	if err := stream.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
}

func TestStreamFileValidation(t *testing.T) {
	c, err := client.New(identity(t, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := &chunk.Manifest{}
	if _, err := c.StreamFile(context.Background(), []string{"x"}, bad, testSecret(), client.StreamOptions{}); err == nil {
		t.Error("invalid manifest accepted")
	}
	data := make([]byte, 100)
	share, err := chunk.BuildShare("x", data, testPlan(), 1, testSecret())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StreamFile(context.Background(), nil, &share.Manifest, testSecret(), client.StreamOptions{}); !errors.Is(err, client.ErrNoPeers) {
		t.Errorf("no peers error = %v", err)
	}
}

func TestPartialStoragePeers(t *testing.T) {
	// Sec. III-D: "some peers may choose to conserve storage space by
	// storing k' < k messages ... there would have to be other
	// accessible peers with at least k-k' messages to make up the
	// deficit". Two peers each holding half a batch must jointly serve
	// a decode, and one alone must fail.
	rng := rand.New(rand.NewSource(4))
	params, err := rlnc.NewParams(gf.MustNew(gf.Bits8), 8, 64, 8*64)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, params.DataLen)
	rng.Read(data)
	enc, err := rlnc.NewEncoder(params, 11, testSecret(), data)
	if err != nil {
		t.Fatal(err)
	}
	halfA, err := enc.BatchForPeer(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	halfB, err := enc.BatchForPeer(1, 4)
	if err != nil {
		t.Fatal(err)
	}

	c, err := client.New(identity(t, 6), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	nodeA := startPeer(t, 120, nil)
	nodeB := startPeer(t, 121, nil)
	if err := c.Disseminate(ctx, nodeA.Addr().String(), halfA); err != nil {
		t.Fatal(err)
	}
	if err := c.Disseminate(ctx, nodeB.Addr().String(), halfB); err != nil {
		t.Fatal(err)
	}

	// One partial peer is not enough.
	_, _, err = c.FetchGeneration(ctx, []string{nodeA.Addr().String()}, params, 11, testSecret(), nil)
	if !errors.Is(err, client.ErrIncomplete) {
		t.Errorf("single partial peer error = %v, want ErrIncomplete", err)
	}
	// Together they decode.
	got, _, err := c.FetchGeneration(ctx,
		[]string{nodeA.Addr().String(), nodeB.Addr().String()}, params, 11, testSecret(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("partial-storage decode mismatch")
	}
}

func TestFetchStatsEffectiveRate(t *testing.T) {
	var s client.FetchStats
	if got := s.EffectiveRate(100); got != 0 {
		t.Errorf("zero elapsed rate = %v", got)
	}
	s.Elapsed = 2 * time.Second
	if got := s.EffectiveRate(100); got != 50 {
		t.Errorf("rate = %v, want 50", got)
	}
}

func TestFetchFileWithinClientPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 2100)
	rng.Read(data)
	c, err := client.New(identity(t, 7), nil)
	if err != nil {
		t.Fatal(err)
	}
	manifest, addrs := buildAndDisseminate(t, c, data, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	got, stats, err := c.FetchFile(ctx, addrs, manifest, testSecret())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("FetchFile mismatch")
	}
	if stats.Innovative == 0 {
		t.Error("stats empty")
	}
	// Invalid manifest is rejected up front.
	if _, _, err := c.FetchFile(ctx, addrs, &chunk.Manifest{}, testSecret()); err == nil {
		t.Error("invalid manifest accepted")
	}
}

func TestFetchGenerationAllPeersUnreachable(t *testing.T) {
	c, err := client.New(identity(t, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	params, err := rlnc.NewParams(gf.MustNew(gf.Bits8), 4, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	// Two dead addresses: the error must mention the dial failures.
	_, _, err = c.FetchGeneration(ctx, []string{"127.0.0.1:1", "127.0.0.1:2"},
		params, 1, testSecret(), nil)
	if !errors.Is(err, client.ErrIncomplete) {
		t.Fatalf("error = %v, want ErrIncomplete", err)
	}
	if !strings.Contains(err.Error(), "dial") {
		t.Errorf("error does not surface peer failures: %v", err)
	}
}
