package client_test

// Regression tests for the dial-timeout fix. The original client used
// a zero-value net.Dialer with no handshake deadline: a peer whose
// kernel accepted the connection but whose process never spoke (hung,
// wedged, or SYN-backlogged) stalled FetchGeneration forever unless
// the caller remembered to attach a context deadline. These tests fail
// against that behaviour and pin the fix: DialTimeout bounds dial plus
// handshake even on a deadline-free context.

import (
	"context"
	"net"
	"testing"
	"time"

	"asymshare/internal/client"
	"asymshare/internal/gf"
	"asymshare/internal/rlnc"
)

// neverAcceptListener binds a real TCP port and lets connections pile
// up in the kernel backlog without ever serving the handshake — the
// wedged-peer case the zero-value dialer hung on.
func neverAcceptListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return ln
}

func TestFetchTimesOutOnUnresponsivePeer(t *testing.T) {
	ln := neverAcceptListener(t)

	c, err := client.NewWith(identity(t, 1), nil, client.Options{
		DialTimeout: 300 * time.Millisecond,
		PeerRetries: -1, // isolate the dial bound from retry behaviour
	})
	if err != nil {
		t.Fatal(err)
	}
	params, err := rlnc.NewParams(gf.MustNew(gf.Bits8), 4, 64, 200)
	if err != nil {
		t.Fatal(err)
	}

	// Deliberately no context deadline: the client must bound the
	// attempt on its own.
	start := time.Now()
	_, _, err = c.FetchGeneration(context.Background(), []string{ln.Addr().String()},
		params, 7, testSecret(), map[uint64]rlnc.Digest{})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("fetch from a never-responding peer succeeded")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("fetch took %v; DialTimeout=300ms should have cut it off", elapsed)
	}
}

func TestDisseminateTimesOutOnUnresponsivePeer(t *testing.T) {
	ln := neverAcceptListener(t)

	c, err := client.NewWith(identity(t, 1), nil, client.Options{
		DialTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = c.Disseminate(context.Background(), ln.Addr().String(), nil)
	if err == nil {
		t.Fatal("disseminate to a never-responding peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("disseminate took %v; DialTimeout=300ms should have cut it off", elapsed)
	}
}
