// Package client implements the user side of Fig. 4: disseminating
// encoded message batches to storage peers (initialization, Sec. III-A)
// and later downloading from many peers in parallel to fill the remote
// download pipe beyond any single peer's upload capacity (Sec. III-B).
// The downloader feeds every arriving message into one shared
// rlnc.Sink — by default the parallel rlnc.Pipeline, so per-connection
// goroutines verify and derive coefficients concurrently instead of
// serializing on a decoder mutex — sends STOP to all peers as soon as
// rank k is reached, and reports per-peer receipts for the user's
// periodic feedback to its own peer.
package client

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/chunk"
	"asymshare/internal/rlnc"
	"asymshare/internal/transport"
	"asymshare/internal/wire"
)

var (
	// ErrNoPeers is returned when a fetch is attempted with no peers.
	ErrNoPeers = errors.New("client: no peers to contact")

	// ErrIncomplete is returned when every peer is exhausted before the
	// generation could be decoded.
	ErrIncomplete = errors.New("client: peers exhausted before decode completed")

	// errPeerAborted marks a connection that died mid-stream without an
	// orderly STOP — a crashed or partitioned peer, not an exhausted
	// one. It is retriable, unlike a protocol error.
	errPeerAborted = errors.New("client: peer connection aborted mid-stream")
)

// Defaults for Options fields left zero.
const (
	DefaultDialTimeout  = 10 * time.Second
	DefaultPeerRetries  = 2
	DefaultRetryBackoff = 200 * time.Millisecond
)

// Options tunes a client's networking behaviour. The zero value gives
// sane production defaults over real TCP.
type Options struct {
	// Transport dials peers; nil means real TCP (transport.Default).
	// Tests inject an in-memory netsim fabric here.
	Transport transport.Transport

	// DialTimeout bounds each dial plus handshake. Zero means
	// DefaultDialTimeout; negative disables the bound (the caller's
	// context still applies).
	DialTimeout time.Duration

	// PeerFetchTimeout bounds one peer's whole fetch stream, including
	// retries. Zero means no per-peer bound beyond the fetch context.
	PeerFetchTimeout time.Duration

	// PeerRetries is how many times a fetch stream that aborts
	// mid-transfer (abrupt close, reset, timeout — anything but an
	// orderly STOP or a protocol error) is redialed. Zero means
	// DefaultPeerRetries; negative disables retries.
	PeerRetries int

	// RetryBackoff is the delay before the first retry, doubling per
	// attempt. Zero means DefaultRetryBackoff.
	RetryBackoff time.Duration

	// LegacyWire selects the pre-pooling receive path: allocate each
	// frame with wire.ReadFrame, unmarshal into an rlnc.Message, and
	// Add it to the sink. The default (false) path reads frames into
	// pooled buffers and feeds the serialized bytes straight to the
	// decoder with AddBytes — zero allocations per frame in steady
	// state. Differential tests run both and require identical output.
	LegacyWire bool

	// Hedge enables the resilient chunk scheduler in FetchFile: each
	// chunk starts on the single healthiest session and a stream that
	// stalls for a hedge delay is re-issued on the next-healthiest
	// peer, with per-peer circuit breakers quarantining peers that
	// repeatedly fail. Off by default — the classic path streams every
	// chunk from all sessions at once, which maximizes instantaneous
	// goodput at the price of redundant upload bandwidth and no
	// isolation from a stalled peer.
	Hedge bool

	// HedgeDelay pins the no-progress interval before a hedge stream
	// is launched. Zero selects the adaptive estimate: p95 of recent
	// stream latencies with headroom (DefaultHedgeDelay until enough
	// samples exist).
	HedgeDelay time.Duration

	// BreakerThreshold is how many consecutive failures quarantine a
	// peer's circuit breaker. Zero means DefaultBreakerThreshold.
	BreakerThreshold int

	// BreakerCooldown is the initial quarantine after a breaker opens,
	// doubling on each failed half-open probe up to a cap. Zero means
	// DefaultBreakerCooldown.
	BreakerCooldown time.Duration

	// Priority is the wire priority carried on every muxed GET that
	// FetchFile's chunk streams issue (hedged and mux paths alike):
	// higher values win admission ties at an overloaded peer. Zero is
	// normal — and the only value pre-extension peers understand; a
	// nonzero priority selects the extended GET encoding, which
	// requires upgraded peers (see wire.Get). Per-request priority for
	// the legacy path is FetchRequest.Priority.
	Priority uint8
}

// withDefaults resolves zero fields to their documented defaults.
func (o Options) withDefaults() Options {
	if o.Transport == nil {
		o.Transport = transport.Default
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.PeerRetries == 0 {
		o.PeerRetries = DefaultPeerRetries
	} else if o.PeerRetries < 0 {
		o.PeerRetries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = DefaultRetryBackoff
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = DefaultBreakerThreshold
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
	return o
}

// Client is a user agent identified by a signing key.
type Client struct {
	id      *auth.Identity
	trusted *auth.TrustSet // acceptable peer keys; nil trusts any
	opt     Options
	m       clientMetrics   // zero value records nothing; see Instrument
	health  *healthRegistry // per-peer scores + circuit breakers
}

// New returns a client with default Options. trusted, if non-nil, pins
// the set of peer keys the client will talk to (the
// mutual-authentication direction).
func New(id *auth.Identity, trusted *auth.TrustSet) (*Client, error) {
	return NewWith(id, trusted, Options{})
}

// NewWith returns a client with explicit networking options.
func NewWith(id *auth.Identity, trusted *auth.TrustSet, opts Options) (*Client, error) {
	if id == nil {
		return nil, errors.New("client: identity required")
	}
	c := &Client{id: id, trusted: trusted, opt: opts.withDefaults()}
	c.health = newHealthRegistry(&c.m, c.opt)
	return c, nil
}

// Fingerprint returns the client's key fingerprint.
func (c *Client) Fingerprint() string { return c.id.Fingerprint() }

// dial connects and completes the mutual handshake. DialTimeout bounds
// the dial AND the handshake: a listener that accepts but never speaks
// (SYN-accepted, application dead) would otherwise hang the zero-value
// dialer forever.
func (c *Client) dial(ctx context.Context, addr string, role wire.Role) (net.Conn, ed25519.PublicKey, error) {
	if c.opt.DialTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opt.DialTimeout)
		defer cancel()
	}
	conn, err := c.opt.Transport.DialContext(ctx, addr)
	if err != nil {
		return nil, nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	peerKey, err := wire.InitiatorHandshake(conn, c.id, role, c.trusted)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("client: handshake with %s: %w", addr, err)
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, peerKey, nil
}

// Disseminate uploads a batch of encoded messages to one peer,
// confirming each PUT. This is the initialization-phase transfer that
// runs "when some upload bandwidth is available".
func (c *Client) Disseminate(ctx context.Context, addr string, msgs []*rlnc.Message) error {
	conn, _, err := c.dial(ctx, addr, wire.RoleUser)
	if err != nil {
		return err
	}
	defer conn.Close()
	for _, msg := range msgs {
		buf, err := msg.MarshalBinary()
		if err != nil {
			return err
		}
		if err := wire.WriteFrame(conn, wire.TypePut, buf); err != nil {
			return err
		}
		if _, err := wire.Expect(conn, wire.TypePutOK); err != nil {
			return fmt.Errorf("client: put to %s: %w", addr, err)
		}
	}
	return wire.WriteFrame(conn, wire.TypeBye, nil)
}

// Patch sends delta messages to a peer, which applies each one to the
// matching stored message — the data-modification path of Sec. VI-A.
// Only the file's owner (the identity that first uploaded it) will be
// accepted.
func (c *Client) Patch(ctx context.Context, addr string, deltas []*rlnc.Message) error {
	conn, _, err := c.dial(ctx, addr, wire.RoleUser)
	if err != nil {
		return err
	}
	defer conn.Close()
	for _, msg := range deltas {
		buf, err := msg.MarshalBinary()
		if err != nil {
			return err
		}
		if err := wire.WriteFrame(conn, wire.TypePatch, buf); err != nil {
			return err
		}
		if _, err := wire.Expect(conn, wire.TypePutOK); err != nil {
			return fmt.Errorf("client: patch to %s: %w", addr, err)
		}
	}
	return wire.WriteFrame(conn, wire.TypeBye, nil)
}

// ListFiles asks a peer which generations it stores (identifiers and
// message counts only — no payloads), letting an owner audit where its
// data is replicated.
func (c *Client) ListFiles(ctx context.Context, addr string) ([]wire.FileEntry, error) {
	conn, _, err := c.dial(ctx, addr, wire.RoleUser)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.TypeList, nil); err != nil {
		return nil, err
	}
	frame, err := wire.Expect(conn, wire.TypeFileList)
	if err != nil {
		return nil, fmt.Errorf("client: list %s: %w", addr, err)
	}
	var list wire.FileList
	if err := list.Unmarshal(frame.Payload); err != nil {
		return nil, err
	}
	_ = wire.WriteFrame(conn, wire.TypeBye, nil)
	return list.Files, nil
}

// SendFeedback delivers per-peer receipt reports to the user's own
// peer (Sec. III-B's periodic informational update).
func (c *Client) SendFeedback(ctx context.Context, ownPeerAddr string, received map[string]uint64) error {
	conn, _, err := c.dial(ctx, ownPeerAddr, wire.RoleUser)
	if err != nil {
		return err
	}
	defer conn.Close()
	fb := wire.Feedback{Entries: make([]wire.FeedbackEntry, 0, len(received))}
	keys := make([]string, 0, len(received))
	for k := range received {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fb.Entries = append(fb.Entries, wire.FeedbackEntry{PeerFingerprint: k, Bytes: received[k]})
	}
	blob, err := fb.Marshal()
	if err != nil {
		return err
	}
	if err := wire.WriteFrame(conn, wire.TypeFeedback, blob); err != nil {
		return err
	}
	// Wait for the acknowledgement so the credits are durable before we
	// disconnect.
	if _, err := wire.Expect(conn, wire.TypePutOK); err != nil {
		return fmt.Errorf("client: feedback to %s: %w", ownPeerAddr, err)
	}
	return wire.WriteFrame(conn, wire.TypeBye, nil)
}

// FetchStats describes one parallel download.
type FetchStats struct {
	// BytesFrom maps peer fingerprint to message bytes received.
	BytesFrom map[string]uint64

	// Messages counts messages offered to the decoder.
	Messages int

	// Innovative counts messages that increased decoder rank.
	Innovative int

	// Rejected counts messages that failed digest authentication.
	Rejected int

	// Elapsed is the wall-clock download time.
	Elapsed time.Duration
}

// EffectiveRate returns the achieved goodput in bytes/second.
func (s FetchStats) EffectiveRate(decodedBytes int) float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(decodedBytes) / s.Elapsed.Seconds()
}

// FetchRequest names every input of one generation download. It
// replaces the positional FetchGeneration parameter list and adds the
// decode-parallelism knob.
type FetchRequest struct {
	// Peers are the storage peer addresses to download from in
	// parallel.
	Peers []string

	// Params describes the generation's code (field, k, chunk size).
	Params rlnc.Params

	// FileID identifies the generation on the peers.
	FileID uint64

	// Secret is the coefficient-derivation key shared with the owner.
	Secret []byte

	// Digests, if non-nil, pins the owner-published per-message MD5
	// digests and enables authentication of every received message.
	Digests map[uint64]rlnc.Digest

	// DecodeWorkers selects the decode engine. 0 uses the parallel
	// rlnc.Pipeline sized to GOMAXPROCS; > 0 a Pipeline with exactly
	// that many workers; < 0 the sequential decoder (one goroutine,
	// messages serialized through a mutex) — mainly for comparison
	// runs and differential tests.
	DecodeWorkers int

	// Priority is propagated with each GET on the wire: higher values
	// win admission ties at an overloaded peer. Zero is normal. The
	// fetch context's deadline is propagated alongside it, letting the
	// peer drop work whose deadline has already passed.
	Priority uint8
}

// decodeSink is what the fetch path needs from a decode engine: the
// concurrent byte-ingesting Sink interface plus final decode. Both
// rlnc.Pipeline and rlnc.SyncSink satisfy it.
type decodeSink interface {
	rlnc.ByteSink
	Decode() ([]byte, error)
}

// newSink builds the decode engine the request asked for. The returned
// cleanup releases pipeline workers (a no-op for the sequential sink).
func (req *FetchRequest) newSink() (decodeSink, func() rlnc.PipelineTelemetry, error) {
	if req.DecodeWorkers < 0 {
		dec, err := rlnc.NewDecoder(req.Params, req.FileID, req.Secret, req.Digests)
		if err != nil {
			return nil, nil, err
		}
		return rlnc.NewSyncSink(dec), nil, nil
	}
	p, err := rlnc.NewPipeline(req.Params, req.FileID, req.Secret, req.Digests,
		rlnc.PipelineConfig{Workers: req.DecodeWorkers})
	if err != nil {
		return nil, nil, err
	}
	return p, p.Telemetry, nil
}

// FetchGeneration downloads one generation (file-id) from the given
// peer addresses in parallel and decodes it. It is shorthand for Fetch
// with a zero DecodeWorkers (the parallel pipeline).
func (c *Client) FetchGeneration(ctx context.Context, addrs []string, params rlnc.Params,
	fileID uint64, secret []byte, digests map[uint64]rlnc.Digest) ([]byte, FetchStats, error) {
	return c.Fetch(ctx, FetchRequest{
		Peers:   addrs,
		Params:  params,
		FileID:  fileID,
		Secret:  secret,
		Digests: digests,
	})
}

// Fetch downloads one generation from the request's peers in parallel
// and decodes it. Each peer connection feeds received messages into a
// shared rlnc.Sink: with the default pipeline engine, digest checks and
// coefficient derivation run on the connection goroutines themselves
// and only a short innovation check is serialized, so one slow decode
// step never stalls the sockets.
func (c *Client) Fetch(ctx context.Context, req FetchRequest) ([]byte, FetchStats, error) {
	stats := FetchStats{BytesFrom: make(map[string]uint64, len(req.Peers))}
	if len(req.Peers) == 0 {
		c.m.recordFetch(stats, 0, ErrNoPeers)
		return nil, stats, ErrNoPeers
	}
	sink, telemetry, err := req.newSink()
	if err != nil {
		c.m.recordFetch(stats, 0, err)
		return nil, stats, err
	}
	if closer, ok := sink.(interface{ Close() }); ok {
		defer closer.Close()
	}
	stopSampling := c.m.sampleDecode(telemetry)

	start := time.Now()
	fetchCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu   sync.Mutex // guards stats.BytesFrom
		done = make(chan struct{})
		once sync.Once
	)
	finish := func() { once.Do(func() { close(done) }) }

	var wg sync.WaitGroup
	errs := make([]error, len(req.Peers))
	for i, addr := range req.Peers {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			errs[i] = c.fetchPeerWithRetry(fetchCtx, addr, req.FileID, req.Priority, sink, &mu, &stats, finish)
		}(i, addr)
	}
	// Wait for either completion or all workers returning.
	workersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(workersDone)
	}()
	select {
	case <-done:
		cancel()
		<-workersDone
	case <-workersDone:
	case <-ctx.Done():
		cancel()
		<-workersDone
	}
	stats.Elapsed = time.Since(start)
	stopSampling()

	st := sink.Stats()
	stats.Messages = st.Received
	stats.Innovative = st.Accepted
	stats.Rejected = st.Rejected

	if !sink.Done() {
		err := ctx.Err()
		if err == nil {
			err = fmt.Errorf("%w: rank %d of %d (%s)",
				ErrIncomplete, sink.Rank(), req.Params.K, joinErrs(errs))
		}
		c.m.recordFetch(stats, 0, err)
		return nil, stats, err
	}
	data, err := sink.Decode()
	if err != nil {
		c.m.recordFetch(stats, 0, err)
		return nil, stats, err
	}
	c.m.recordFetch(stats, len(data), nil)
	if telemetry != nil {
		c.m.recordDecodeTelemetry(telemetry())
	}
	return data, stats, nil
}

// fetchPeerWithRetry drives fetchFromPeer against one peer, redialing
// when the attempt dies mid-transfer. Protocol-level rejections
// (*wire.RemoteError, e.g. unknown file) are terminal — the peer
// answered, and asking again will not change the answer — but
// transport failures (refused dials, resets, aborts without STOP) are
// retried up to PeerRetries times with doubling backoff. BUSY sheds
// are their own class: the peer is alive and said when to come back,
// so the client re-requests after honoring RETRY_AFTER as a floor,
// without burning the transport-retry budget — only the context (and
// PeerFetchTimeout) bounds how long it keeps trying. The shared sink
// keeps whatever messages earlier attempts delivered, so a retry
// resumes rather than restarts the peer's contribution.
func (c *Client) fetchPeerWithRetry(ctx context.Context, addr string, fileID uint64, priority uint8,
	sink rlnc.ByteSink, mu *sync.Mutex, stats *FetchStats, finish func()) error {
	if c.opt.PeerFetchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opt.PeerFetchTimeout)
		defer cancel()
	}
	backoff := c.opt.RetryBackoff
	for attempt := 0; ; attempt++ {
		err := c.fetchFromPeer(ctx, addr, fileID, priority, sink, mu, stats, finish)
		if err == nil {
			c.health.recordSuccess(addr, 0)
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		var busy *wire.Busy
		if errors.As(err, &busy) {
			if busy.Code == wire.CodeExpired {
				return err // our deadline passed; asking again cannot help
			}
			c.health.recordShed(addr)
			c.m.shedsObserved.Inc()
			wait := c.opt.RetryBackoff
			if ra := time.Duration(busy.RetryAfterMillis) * time.Millisecond; ra > wait {
				wait = ra
			}
			select {
			case <-ctx.Done():
				return err
			case <-time.After(wait):
			}
			attempt-- // sheds are not transport failures
			continue
		}
		var remote *wire.RemoteError
		if errors.As(err, &remote) {
			return err
		}
		c.health.recordFailure(addr)
		if attempt >= c.opt.PeerRetries {
			return err
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// deadlineMillis converts a context deadline into the wire's relative
// deadline-remaining field: milliseconds left, clamped to uint32, 0
// when the context has no deadline. An already-expired deadline maps
// to 1 ms so the peer still sees (and immediately drops) the request
// as expired work instead of treating it as unbounded.
func deadlineMillis(ctx context.Context) uint32 {
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(d).Milliseconds()
	if ms < 1 {
		return 1
	}
	if ms > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(ms)
}

// fetchFromPeer streams messages from one peer into the shared sink
// until the decode completes, the peer is exhausted, or the context is
// cancelled. The sink handles its own synchronization and, for the
// pipeline engine, applies back-pressure by blocking Add when all
// verifier slots are busy.
//
// The default receive loop is the pooled zero-copy path: each frame
// lands in a reference-counted buffer from wire.DefaultPool and its
// bytes go straight to sink.AddBytes — no per-frame allocation and no
// intermediate Message. Options.LegacyWire selects the historical
// allocate-and-unmarshal loop, kept for differential testing.
func (c *Client) fetchFromPeer(ctx context.Context, addr string, fileID uint64, priority uint8,
	sink rlnc.ByteSink, mu *sync.Mutex, stats *FetchStats, finish func()) error {
	conn, peerKey, err := c.dial(ctx, addr, wire.RoleUser)
	if err != nil {
		return err
	}
	defer conn.Close()
	fingerprint := auth.Fingerprint(peerKey)

	// Close the connection on cancellation so reads unblock.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()

	get := wire.Get{FileID: fileID, DeadlineMillis: deadlineMillis(ctx), Priority: priority}
	if err := wire.WriteFrame(conn, wire.TypeGet, get.Marshal()); err != nil {
		return err
	}
	if c.opt.LegacyWire {
		return c.recvLoopLegacy(ctx, conn, addr, fingerprint, fileID, sink, mu, stats, finish)
	}
	return c.recvLoop(ctx, conn, addr, fingerprint, fileID, sink, mu, stats, finish)
}

// recvLoop is the pooled receive loop shared by the legacy-GET fetch
// path (one stream per connection). Error classification matches
// recvLoopLegacy exactly; the differential suite pins this.
func (c *Client) recvLoop(ctx context.Context, conn net.Conn, addr, fingerprint string,
	fileID uint64, sink rlnc.ByteSink, mu *sync.Mutex, stats *FetchStats, finish func()) error {
	fr := wire.NewFrameReader(conn)
	for {
		t, b, err := fr.Next()
		if err != nil {
			if ctx.Err() != nil {
				return nil // cancelled: decode completed elsewhere, or deadline
			}
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				// The stream died without an orderly STOP: the peer
				// crashed or the path broke mid-transfer. Surface it as
				// retriable instead of mistaking it for exhaustion.
				return fmt.Errorf("%w (%s): %v", errPeerAborted, addr, err)
			}
			return err
		}
		switch t {
		case wire.TypeData:
			_, addErr := sink.AddBytes(b.Bytes())
			completed := sink.Done()
			n := len(b.Bytes())
			b.Release()
			mu.Lock()
			stats.BytesFrom[fingerprint] += uint64(n)
			mu.Unlock()
			c.m.received.Add(uint64(n))
			c.m.recvRate.Mark(uint64(n))
			if addErr != nil && !errors.Is(addErr, rlnc.ErrBadDigest) {
				return addErr
			}
			if completed {
				// Politely tell the peer to stop before disconnecting.
				stop := wire.Stop{FileID: fileID}
				_ = wire.WriteFrame(conn, wire.TypeStop, stop.Marshal())
				_ = wire.WriteFrame(conn, wire.TypeBye, nil)
				finish()
				return nil
			}
		case wire.TypeStop:
			// Peer exhausted its stored messages.
			b.Release()
			return nil
		case wire.TypeBusy:
			// Shed under overload (admission refusal, preemption, or
			// expired deadline). The typed error carries the peer's
			// RETRY_AFTER hint for the retry loop to honor.
			var bz wire.Busy
			uerr := bz.Unmarshal(b.Bytes())
			b.Release()
			if uerr != nil {
				return uerr
			}
			return &bz
		case wire.TypeError:
			var e wire.ErrorMsg
			uerr := e.Unmarshal(b.Bytes())
			b.Release()
			if uerr != nil {
				return uerr
			}
			return &wire.RemoteError{Code: e.Code, Reason: e.Reason}
		default:
			b.Release()
			return fmt.Errorf("%w: %s during fetch", wire.ErrUnexpectedFrame, t)
		}
	}
}

// recvLoopLegacy is the historical per-frame-allocation receive loop,
// retained behind Options.LegacyWire as the differential baseline.
func (c *Client) recvLoopLegacy(ctx context.Context, conn net.Conn, addr, fingerprint string,
	fileID uint64, sink rlnc.ByteSink, mu *sync.Mutex, stats *FetchStats, finish func()) error {
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				return nil // cancelled: decode completed elsewhere, or deadline
			}
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return fmt.Errorf("%w (%s): %v", errPeerAborted, addr, err)
			}
			return err
		}
		switch frame.Type {
		case wire.TypeData:
			var msg rlnc.Message
			if err := msg.UnmarshalBinary(frame.Payload); err != nil {
				return err
			}
			_, addErr := sink.Add(&msg)
			completed := sink.Done()
			mu.Lock()
			stats.BytesFrom[fingerprint] += uint64(len(frame.Payload))
			mu.Unlock()
			c.m.received.Add(uint64(len(frame.Payload)))
			c.m.recvRate.Mark(uint64(len(frame.Payload)))
			if addErr != nil && !errors.Is(addErr, rlnc.ErrBadDigest) {
				return addErr
			}
			if completed {
				stop := wire.Stop{FileID: fileID}
				_ = wire.WriteFrame(conn, wire.TypeStop, stop.Marshal())
				_ = wire.WriteFrame(conn, wire.TypeBye, nil)
				finish()
				return nil
			}
		case wire.TypeStop:
			return nil
		case wire.TypeBusy:
			var bz wire.Busy
			if err := bz.Unmarshal(frame.Payload); err != nil {
				return err
			}
			return &bz
		case wire.TypeError:
			var e wire.ErrorMsg
			if err := e.Unmarshal(frame.Payload); err != nil {
				return err
			}
			return &wire.RemoteError{Code: e.Code, Reason: e.Reason}
		default:
			return fmt.Errorf("%w: %s during fetch", wire.ErrUnexpectedFrame, frame.Type)
		}
	}
}

func joinErrs(errs []error) string {
	var parts []string
	for _, err := range errs {
		if err != nil {
			parts = append(parts, err.Error())
		}
	}
	if len(parts) == 0 {
		return "no peer errors"
	}
	sort.Strings(parts)
	out := parts[0]
	for _, p := range parts[1:] {
		out += "; " + p
	}
	return out
}

// fetchFileStreams is how many chunk downloads FetchFile keeps in
// flight concurrently over its muxed sessions.
const fetchFileStreams = 4

// FetchFile downloads and reassembles a whole manifest, enabling the
// chunk-streaming mode of Sec. III-D. One multiplexed session is opened
// per peer and every chunk becomes a concurrent generation stream on
// those sessions — up to fetchFileStreams chunks in flight, each chunk
// still downloading from all peers in parallel — so a manifest of many
// chunks pays one dial+handshake per peer instead of one per chunk per
// peer. A chunk whose muxed download fails falls back to the legacy
// one-connection-per-peer Fetch before the whole call is failed.
func (c *Client) FetchFile(ctx context.Context, addrs []string, m *chunk.Manifest,
	secret []byte) ([]byte, FetchStats, error) {
	total := FetchStats{BytesFrom: make(map[string]uint64)}
	if err := m.Validate(); err != nil {
		return nil, total, err
	}
	start := time.Now()

	// One muxed session per reachable peer, shared by all chunk streams.
	sessions := make([]*PeerSession, 0, len(addrs))
	for _, addr := range addrs {
		s, err := c.NewPeerSession(ctx, addr)
		if err != nil {
			continue // the per-chunk fallback still dials directly
		}
		sessions = append(sessions, s)
	}
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()

	fileCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	pieces := make([][]byte, len(m.Chunks))
	errs := make([]error, len(m.Chunks))
	var (
		mu  sync.Mutex // guards total
		wg  sync.WaitGroup
		sem = make(chan struct{}, fetchFileStreams)
	)
	for i, info := range m.Chunks {
		params, err := info.Params(m.Plan)
		if err != nil {
			cancel()
			wg.Wait()
			return nil, total, err
		}
		wg.Add(1)
		go func(i int, fileID uint64, params rlnc.Params, digests map[uint64]rlnc.Digest) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if fileCtx.Err() != nil {
				errs[i] = fileCtx.Err()
				return
			}
			var (
				data  []byte
				stats FetchStats
				err   error
			)
			if c.opt.Hedge && len(sessions) > 0 {
				// Resilient path: one stream at a time down the health
				// ladder, hedging on stall. If it cannot complete the
				// chunk (every session quarantined or exhausted), the
				// breaker-blind mux path below still tries everything.
				data, stats, err = c.fetchChunkHedged(fileCtx, sessions, i, params, fileID, secret, digests)
				if err != nil && fileCtx.Err() == nil {
					data, stats, err = c.fetchChunkMux(fileCtx, sessions, params, fileID, secret, digests)
				}
			} else {
				data, stats, err = c.fetchChunkMux(fileCtx, sessions, params, fileID, secret, digests)
			}
			if err != nil && fileCtx.Err() == nil {
				// Muxed path failed (no sessions, session died, stream
				// refused): retry the chunk over fresh legacy connections.
				data, stats, err = c.FetchGeneration(fileCtx, addrs, params, fileID, secret, digests)
			}
			if err != nil {
				errs[i] = fmt.Errorf("chunk %d: %w", i, err)
				cancel()
				return
			}
			pieces[i] = data
			mu.Lock()
			total.Messages += stats.Messages
			total.Innovative += stats.Innovative
			total.Rejected += stats.Rejected
			for k, v := range stats.BytesFrom {
				total.BytesFrom[k] += v
			}
			mu.Unlock()
		}(i, info.FileID, params, info.Digests)
	}
	wg.Wait()
	total.Elapsed = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, total, err
		}
	}
	data, err := chunk.Assemble(m, pieces)
	if err != nil {
		return nil, total, err
	}
	return data, total, nil
}

// fetchChunkMux downloads one generation over the open sessions: every
// session streams the chunk concurrently into one shared sink, exactly
// like Fetch does over dedicated connections.
func (c *Client) fetchChunkMux(ctx context.Context, sessions []*PeerSession, params rlnc.Params,
	fileID uint64, secret []byte, digests map[uint64]rlnc.Digest) ([]byte, FetchStats, error) {
	stats := FetchStats{BytesFrom: make(map[string]uint64, len(sessions))}
	if len(sessions) == 0 {
		return nil, stats, ErrNoPeers
	}
	req := FetchRequest{Params: params, FileID: fileID, Secret: secret, Digests: digests}
	sink, telemetry, err := req.newSink()
	if err != nil {
		return nil, stats, err
	}
	if closer, ok := sink.(interface{ Close() }); ok {
		defer closer.Close()
	}
	stopSampling := c.m.sampleDecode(telemetry)

	start := time.Now()
	streamCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu sync.Mutex // guards stats.BytesFrom
		wg sync.WaitGroup
	)
	errs := make([]error, len(sessions))
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *PeerSession) {
			defer wg.Done()
			fp := s.Fingerprint()
			errs[i] = s.FetchStream(streamCtx,
				StreamRequest{FileID: fileID, Priority: c.opt.Priority}, sink, func(n int) {
					mu.Lock()
					stats.BytesFrom[fp] += uint64(n)
					mu.Unlock()
				})
			if sink.Done() {
				cancel() // wake sibling streams so they STOP promptly
			}
		}(i, s)
	}
	wg.Wait()
	stats.Elapsed = time.Since(start)
	stopSampling()

	st := sink.Stats()
	stats.Messages = st.Received
	stats.Innovative = st.Accepted
	stats.Rejected = st.Rejected

	if !sink.Done() {
		err := ctx.Err()
		if err == nil {
			err = fmt.Errorf("%w: rank %d of %d (%s)",
				ErrIncomplete, sink.Rank(), params.K, joinErrs(errs))
		}
		c.m.recordFetch(stats, 0, err)
		return nil, stats, err
	}
	data, err := sink.Decode()
	if err != nil {
		c.m.recordFetch(stats, 0, err)
		return nil, stats, err
	}
	c.m.recordFetch(stats, len(data), nil)
	if telemetry != nil {
		c.m.recordDecodeTelemetry(telemetry())
	}
	return data, stats, nil
}
