package client

// Owner-side audit issuing: the client ships a keyed spot-check
// challenge to one storage peer and returns the raw response for
// internal/audit to verify. The client deliberately does no
// verification itself — the auditor holds the expected digests and the
// escalation state; the client is just authenticated transport.

import (
	"context"
	"fmt"
	"sort"

	"asymshare/internal/auth"
	"asymshare/internal/wire"
)

// Audit sends one challenge to a peer and returns its response along
// with the peer's key fingerprint (the identity to debit if the
// response does not verify). A malformed or refused exchange returns a
// typed error — *wire.RemoteError when the peer answered with an error
// frame — and never hangs: the dial context's deadline bounds the
// whole exchange.
func (c *Client) Audit(ctx context.Context, addr string, ch wire.AuditChallenge) (*wire.AuditResponse, string, error) {
	conn, peerKey, err := c.dial(ctx, addr, wire.RoleUser)
	if err != nil {
		return nil, "", err
	}
	defer conn.Close()
	fingerprint := auth.Fingerprint(peerKey)
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	if err := wire.WriteFrame(conn, wire.TypeAuditChallenge, ch.Marshal()); err != nil {
		return nil, fingerprint, err
	}
	frame, err := wire.Expect(conn, wire.TypeAuditResponse)
	if err != nil {
		return nil, fingerprint, fmt.Errorf("client: audit %s: %w", addr, err)
	}
	var resp wire.AuditResponse
	if err := resp.Unmarshal(frame.Payload); err != nil {
		return nil, fingerprint, fmt.Errorf("client: audit %s: %w", addr, err)
	}
	if resp.FileID != ch.FileID {
		return nil, fingerprint, fmt.Errorf("client: audit %s: response for file %d, challenged %d",
			addr, resp.FileID, ch.FileID)
	}
	_ = wire.WriteFrame(conn, wire.TypeBye, nil)
	return &resp, fingerprint, nil
}

// SendAuditVerdicts reports audit penalties to the user's own peer:
// each entry debits the named counterpart's ledger standing there. It
// rides the same FEEDBACK frame as receipt credits, so only the
// peer's owner is believed.
func (c *Client) SendAuditVerdicts(ctx context.Context, ownPeerAddr string, debits map[string]uint64) error {
	if len(debits) == 0 {
		return nil
	}
	conn, _, err := c.dial(ctx, ownPeerAddr, wire.RoleUser)
	if err != nil {
		return err
	}
	defer conn.Close()
	fb := wire.Feedback{Entries: make([]wire.FeedbackEntry, 0, len(debits))}
	keys := make([]string, 0, len(debits))
	for k := range debits {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fb.Entries = append(fb.Entries, wire.FeedbackEntry{PeerFingerprint: k, Debit: debits[k]})
	}
	blob, err := fb.Marshal()
	if err != nil {
		return err
	}
	if err := wire.WriteFrame(conn, wire.TypeFeedback, blob); err != nil {
		return err
	}
	if _, err := wire.Expect(conn, wire.TypePutOK); err != nil {
		return fmt.Errorf("client: audit verdicts to %s: %w", ownPeerAddr, err)
	}
	return wire.WriteFrame(conn, wire.TypeBye, nil)
}
