package netbench

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty config error = %v", err)
	}
	if _, err := Run(context.Background(), Config{Peers: []PeerSpec{{Name: "only"}}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("single peer error = %v", err)
	}
}

func TestRunUnshapedRoundTrip(t *testing.T) {
	// Smoke test the full loop (disseminate, concurrent fetch, decode,
	// feedback) with unshaped links; rates just have to be positive.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, Config{
		Peers: []PeerSpec{
			{Name: "a"}, {Name: "b"}, {Name: "c"},
		},
		DataBytes: 16 << 10,
		Rounds:    2,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range res.Names {
		for r := 0; r < 2; r++ {
			if res.RateBytesPerSec[i][r] <= 0 {
				t.Errorf("%s round %d rate = %v", name, r, res.RateBytesPerSec[i][r])
			}
		}
	}
}

func TestFeedbackCreditsArriveInLedgers(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, Config{
		Peers:     []PeerSpec{{Name: "a"}, {Name: "b"}},
		DataBytes: 8 << 10,
		Rounds:    1,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each peer's ledger should have been credited (via its owner's
	// feedback) for the peers that served — totals well above the
	// initial epsilon. Feedback lands asynchronously after the fetch
	// returns, so poll briefly.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if res.Ledgers[0].Total() > 1000 && res.Ledgers[1].Total() > 1000 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("ledgers not credited: %v / %v", res.Ledgers[0].Total(), res.Ledgers[1].Total())
}

func TestFreeloaderPenalizedOverRealTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second shaped network experiment")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := Run(ctx, Config{
		Peers: []PeerSpec{
			{Name: "honest0", UploadBytesPerSec: 256 << 10},
			{Name: "honest1", UploadBytesPerSec: 256 << 10},
			{Name: "honest2", UploadBytesPerSec: 256 << 10},
			{Name: "leech", UploadBytesPerSec: 256 << 10, Withhold: true},
		},
		DataBytes:   256 << 10,
		Rounds:      3,
		StreamBurst: 16 << 10,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// After the bootstrap round the honest users' feedback has credited
	// each other; the withholding leech's standing stays at epsilon, so
	// while fetches compete it is starved and its goodput lags.
	honest := (res.MeanRate(0, 1, 3) + res.MeanRate(1, 1, 3) + res.MeanRate(2, 1, 3)) / 3
	leech := res.MeanRate(3, 1, 3)
	if leech <= 0 || honest <= 0 {
		t.Fatalf("rates: honest %v leech %v", honest, leech)
	}
	if honest < 1.15*leech {
		t.Errorf("honest mean %0.f B/s not clearly above leech %0.f B/s", honest, leech)
	}
}

func TestCollectMetricsGrantSamples(t *testing.T) {
	// Shaped links so the allocator actually runs; the sampler must
	// observe at least one positive grant per serving peer, labelled
	// with participant names rather than raw fingerprints.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, Config{
		Peers: []PeerSpec{
			{Name: "a", UploadBytesPerSec: 256 << 10},
			{Name: "b", UploadBytesPerSec: 256 << 10},
		},
		DataBytes:       64 << 10,
		Rounds:          2,
		StreamBurst:     4 << 10, // keep shaping active long enough to sample
		ReallocInterval: 10 * time.Millisecond,
		Seed:            3,
		CollectMetrics:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Registries) != 2 || res.Registries[0] == nil {
		t.Fatalf("Registries = %v", res.Registries)
	}
	if len(res.GrantSamples) == 0 {
		t.Fatal("no grant samples collected")
	}
	names := map[string]bool{"a": true, "b": true}
	for _, g := range res.GrantSamples {
		if !names[g.Peer] || !names[g.Requester] {
			t.Errorf("sample has unmapped identity: %+v", g)
		}
		if g.BytesPerSec <= 0 {
			t.Errorf("non-positive grant: %+v", g)
		}
		if g.Round < 0 || g.Round >= 2 {
			t.Errorf("bad round: %+v", g)
		}
	}
}
