package netbench

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty config error = %v", err)
	}
	if _, err := Run(context.Background(), Config{Peers: []PeerSpec{{Name: "only"}}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("single peer error = %v", err)
	}
}

func TestRunUnshapedRoundTrip(t *testing.T) {
	// Smoke test the full loop (disseminate, concurrent fetch, decode,
	// feedback) with unshaped links; rates just have to be positive.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, Config{
		Peers: []PeerSpec{
			{Name: "a"}, {Name: "b"}, {Name: "c"},
		},
		DataBytes: 16 << 10,
		Rounds:    2,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range res.Names {
		for r := 0; r < 2; r++ {
			if res.RateBytesPerSec[i][r] <= 0 {
				t.Errorf("%s round %d rate = %v", name, r, res.RateBytesPerSec[i][r])
			}
		}
	}
}

func TestFeedbackCreditsArriveInLedgers(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, Config{
		Peers:     []PeerSpec{{Name: "a"}, {Name: "b"}},
		DataBytes: 8 << 10,
		Rounds:    1,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each peer's ledger should have been credited (via its owner's
	// feedback) for the peers that served — totals well above the
	// initial epsilon. Feedback lands asynchronously after the fetch
	// returns, so poll briefly.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if res.Ledgers[0].Total() > 1000 && res.Ledgers[1].Total() > 1000 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("ledgers not credited: %v / %v", res.Ledgers[0].Total(), res.Ledgers[1].Total())
}

func TestFreeloaderPenalizedOverRealTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second shaped network experiment")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := Run(ctx, Config{
		Peers: []PeerSpec{
			{Name: "honest0", UploadBytesPerSec: 256 << 10},
			{Name: "honest1", UploadBytesPerSec: 256 << 10},
			{Name: "honest2", UploadBytesPerSec: 256 << 10},
			{Name: "leech", UploadBytesPerSec: 256 << 10, Withhold: true},
		},
		DataBytes:   256 << 10,
		Rounds:      3,
		StreamBurst: 16 << 10,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// After the bootstrap round the honest users' feedback has credited
	// each other; the withholding leech's standing stays at epsilon, so
	// while fetches compete it is starved and its goodput lags.
	honest := (res.MeanRate(0, 1, 3) + res.MeanRate(1, 1, 3) + res.MeanRate(2, 1, 3)) / 3
	leech := res.MeanRate(3, 1, 3)
	if leech <= 0 || honest <= 0 {
		t.Fatalf("rates: honest %v leech %v", honest, leech)
	}
	if honest < 1.15*leech {
		t.Errorf("honest mean %0.f B/s not clearly above leech %0.f B/s", honest, leech)
	}
}
