// Package netbench runs the paper's fairness experiments over the real
// TCP stack rather than the slot simulator — the "dynamic real-time
// environment" the paper lists as future work (Sec. VI-A).
//
// Each participant is one user/peer pair sharing a single identity (as
// in the paper, "each user corresponds to one peer on the network"):
// the peer stores other participants' encoded generations and serves
// them at a token-bucket-shaped rate divided by the fairshare
// allocator; the user fetches its own file from everyone in parallel
// and then reports per-peer receipts back to its own peer, closing the
// Eq. (2) credit loop over the wire.
package netbench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/client"
	"asymshare/internal/fairshare"
	"asymshare/internal/gf"
	"asymshare/internal/metrics"
	"asymshare/internal/peer"
	"asymshare/internal/rlnc"
	"asymshare/internal/store"
)

// ErrBadConfig is returned for invalid experiment configurations.
var ErrBadConfig = errors.New("netbench: invalid configuration")

// PeerSpec describes one participant.
type PeerSpec struct {
	// Name labels the participant in results.
	Name string

	// UploadBytesPerSec shapes the peer's upload link; zero or negative
	// means unshaped.
	UploadBytesPerSec float64

	// Withhold makes the peer refuse to serve anyone (a freeloader that
	// still downloads). Its user still fetches.
	Withhold bool

	// Idle makes the user skip fetching (a pure contributor).
	Idle bool
}

// Config describes the experiment.
type Config struct {
	Peers []PeerSpec

	// DataBytes is the size of the generation each participant shares;
	// zero means 64 KiB.
	DataBytes int

	// Rounds is how many concurrent fetch rounds to run; zero means 3.
	Rounds int

	// FieldBits/M set the coding plan; zero means GF(2^8) with m=2048.
	FieldBits uint
	M         int

	// ReallocInterval is the peers' allocator tick; zero means 100 ms.
	ReallocInterval time.Duration

	// StreamBurst is the per-stream shaping burst in bytes; zero keeps
	// the peer default (64 KiB). Small bursts make shaping bite on
	// small generations.
	StreamBurst float64

	// Seed drives payload generation.
	Seed int64

	// CollectMetrics gives every participant its own metrics registry
	// (peer + client instrumented) and samples each peer's
	// per-requester granted-rate gauges throughout every round; the
	// samples land in Result.GrantSamples. Each participant needs a
	// private registry because the granted-rate series are labelled by
	// requester fingerprint and would collide in a shared one.
	CollectMetrics bool
}

// GrantSample is one observation of a peer's allocator output: the
// upload rate peer granted to requester during a round (the last
// non-zero gauge reading of that round). It is the real-network
// counterpart of the simulator's per-slot mu_ij(t).
type GrantSample struct {
	Round       int
	Peer        string
	Requester   string
	BytesPerSec float64
}

// Result holds per-participant, per-round achieved goodput.
type Result struct {
	Names []string

	// RateBytesPerSec[i][r] is participant i's goodput in round r
	// (0 for idle users).
	RateBytesPerSec [][]float64

	// Ledgers are the peers' final receipt ledgers.
	Ledgers []fairshare.Book

	// GrantSamples holds per-round allocator grants when
	// Config.CollectMetrics is set, ordered by (round, peer, requester).
	GrantSamples []GrantSample

	// Registries are the per-participant metrics registries when
	// Config.CollectMetrics is set (indexed like Names), for callers
	// that want more than the grant samples.
	Registries []*metrics.Registry
}

// MeanRate returns participant i's mean goodput over rounds [from, to).
func (r *Result) MeanRate(i, from, to int) float64 {
	series := r.RateBytesPerSec[i]
	if from < 0 {
		from = 0
	}
	if to > len(series) {
		to = len(series)
	}
	if to <= from {
		return 0
	}
	var sum float64
	for _, v := range series[from:to] {
		sum += v
	}
	return sum / float64(to-from)
}

type participant struct {
	spec   PeerSpec
	id     *auth.Identity
	node   *peer.Node
	client *client.Client
	params rlnc.Params
	fileID uint64
	data   []byte
	reg    *metrics.Registry // nil unless Config.CollectMetrics
}

// Run executes the experiment.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if len(cfg.Peers) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 peers", ErrBadConfig)
	}
	dataBytes := cfg.DataBytes
	if dataBytes <= 0 {
		dataBytes = 64 << 10
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 3
	}
	fieldBits := cfg.FieldBits
	if fieldBits == 0 {
		fieldBits = gf.Bits8
	}
	m := cfg.M
	if m <= 0 {
		m = 2048
	}
	realloc := cfg.ReallocInterval
	if realloc <= 0 {
		realloc = 100 * time.Millisecond
	}
	field, err := gf.New(fieldBits)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	// Boot all participants.
	parts := make([]*participant, len(cfg.Peers))
	secret := make([]byte, rlnc.SecretLen)
	rng.Read(secret)
	for i, spec := range cfg.Peers {
		id, err := auth.NewIdentity()
		if err != nil {
			return nil, err
		}
		var alloc fairshare.Allocator
		if spec.Withhold {
			alloc = fairshare.Withhold{}
		}
		var reg *metrics.Registry
		if cfg.CollectMetrics {
			reg = metrics.NewRegistry()
		}
		node, err := peer.New(peer.Config{
			Identity:          id,
			Store:             store.NewMemory(),
			Owner:             id.Public(),
			UploadBytesPerSec: spec.UploadBytesPerSec,
			Allocator:         alloc,
			ReallocInterval:   realloc,
			StreamBurst:       cfg.StreamBurst,
			Metrics:           reg,
		})
		if err != nil {
			return nil, err
		}
		if err := node.Start("127.0.0.1:0"); err != nil {
			return nil, err
		}
		c, err := client.New(id, nil)
		if err != nil {
			node.Close()
			return nil, err
		}
		c.Instrument(reg)
		params, err := rlnc.ParamsForSize(field, dataBytes, m)
		if err != nil {
			node.Close()
			return nil, err
		}
		data := make([]byte, dataBytes)
		rng.Read(data)
		parts[i] = &participant{
			spec:   spec,
			id:     id,
			node:   node,
			client: c,
			params: params,
			fileID: 1000 + uint64(i),
			data:   data,
			reg:    reg,
		}
	}
	defer func() {
		for _, p := range parts {
			if p != nil && p.node != nil {
				p.node.Close()
			}
		}
	}()

	// Initialization phase: everyone disseminates its generation to
	// every peer (including its own).
	for i, p := range parts {
		enc, err := rlnc.NewEncoder(p.params, p.fileID, secret, p.data)
		if err != nil {
			return nil, err
		}
		for j, q := range parts {
			batch, err := enc.BatchForPeer(j, p.params.K)
			if err != nil {
				return nil, err
			}
			if err := p.client.Disseminate(ctx, q.node.Addr().String(), batch); err != nil {
				return nil, fmt.Errorf("netbench: disseminate %d->%d: %w", i, j, err)
			}
		}
	}

	addrs := make([]string, len(parts))
	for i, p := range parts {
		addrs[i] = p.node.Addr().String()
	}

	res := &Result{
		Names:           make([]string, len(parts)),
		RateBytesPerSec: make([][]float64, len(parts)),
		Ledgers:         make([]fairshare.Book, len(parts)),
	}
	for i, p := range parts {
		res.Names[i] = p.spec.Name
		res.RateBytesPerSec[i] = make([]float64, rounds)
		res.Ledgers[i] = p.node.Ledger()
	}
	// Requester fingerprints as they appear in granted-rate labels,
	// mapped back to participant names.
	nameOf := make(map[string]string, len(parts))
	if cfg.CollectMetrics {
		res.Registries = make([]*metrics.Registry, len(parts))
		for i, p := range parts {
			res.Registries[i] = p.reg
			nameOf[p.id.Fingerprint()] = p.spec.Name
		}
	}

	// Fetch rounds: every non-idle user fetches its own file from all
	// peers concurrently, then feeds receipts back to its own peer.
	for round := 0; round < rounds; round++ {
		stopSampler := startGrantSampler(cfg.CollectMetrics, realloc, parts, nameOf)
		var wg sync.WaitGroup
		errs := make([]error, len(parts))
		for i, p := range parts {
			if p.spec.Idle {
				continue
			}
			wg.Add(1)
			go func(i int, p *participant) {
				defer wg.Done()
				data, stats, err := p.client.FetchGeneration(ctx, addrs, p.params, p.fileID, secret, nil)
				if err != nil {
					errs[i] = err
					return
				}
				res.RateBytesPerSec[i][round] = stats.EffectiveRate(len(data))
				if err := p.client.SendFeedback(ctx, p.node.Addr().String(), stats.BytesFrom); err != nil {
					errs[i] = err
				}
			}(i, p)
		}
		wg.Wait()
		res.GrantSamples = append(res.GrantSamples, stopSampler(round)...)
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("netbench: round %d peer %d: %w", round, i, err)
			}
		}
	}
	return res, nil
}

// startGrantSampler polls every participant's granted-rate gauges once
// per allocator tick for the duration of one round. The gauges report
// *current* grants and drop to zero when streams finish, so the round's
// record is the last non-zero reading per (peer, requester). The
// returned stop function ends sampling and returns the round's samples
// sorted by (peer, requester); it returns nil when collection is off.
func startGrantSampler(enabled bool, tick time.Duration, parts []*participant,
	nameOf map[string]string) func(round int) []GrantSample {
	if !enabled {
		return func(int) []GrantSample { return nil }
	}
	type key struct{ peer, requester string }
	seen := make(map[key]float64)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				for _, p := range parts {
					f, ok := p.reg.Snapshot().Find(peer.MetricGrantedRate)
					if !ok {
						continue
					}
					for _, s := range f.Series {
						if s.Value <= 0 {
							continue
						}
						req := metrics.Get(s.Labels, "requester")
						if name, ok := nameOf[req]; ok {
							req = name
						}
						seen[key{p.spec.Name, req}] = s.Value
					}
				}
			}
		}
	}()
	return func(round int) []GrantSample {
		close(done)
		wg.Wait()
		out := make([]GrantSample, 0, len(seen))
		for k, v := range seen {
			out = append(out, GrantSample{Round: round, Peer: k.peer, Requester: k.requester, BytesPerSec: v})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Peer != out[j].Peer {
				return out[i].Peer < out[j].Peer
			}
			return out[i].Requester < out[j].Requester
		})
		return out
	}
}
