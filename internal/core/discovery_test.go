package core_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"asymshare/internal/chunk"
	"asymshare/internal/client"
	"asymshare/internal/core"
	"asymshare/internal/tracker"
)

func startTracker(t *testing.T) *tracker.Server {
	t.Helper()
	s := tracker.NewServer(0)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestAnnounceAndFetchViaTracker(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 2100)
	rng.Read(data)

	sys, err := core.NewSystem(identity(t, 90), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for i := byte(0); i < 2; i++ {
		addrs = append(addrs, startPeer(t, 91+i).Addr().String())
	}
	trk := startTracker(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	res, err := sys.ShareFile(ctx, "tracked.bin", data, addrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AnnounceHandle(ctx, trk.Addr().String(), &res.Handle, 0); err != nil {
		t.Fatal(err)
	}
	// Every chunk must be resolvable.
	for _, info := range res.Handle.Manifest.Chunks {
		got, err := tracker.Lookup(ctx, trk.Addr().String(), info.FileID)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("lookup(%d) = %v", info.FileID, got)
		}
	}

	// A "remote" user: fresh system, no peer list — only manifest,
	// secret and the tracker address.
	remote, err := core.NewSystem(identity(t, 95), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := remote.FetchFileViaTracker(ctx, trk.Addr().String(),
		&res.Handle.Manifest, res.Secret)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("tracker-resolved fetch mismatch")
	}
	if stats.Innovative == 0 {
		t.Error("no innovative messages recorded")
	}
}

func TestFetchViaTrackerUnknownFile(t *testing.T) {
	trk := startTracker(t)
	sys, err := core.NewSystem(identity(t, 96), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// A manifest that was never announced resolves to zero peers.
	secret := bytes.Repeat([]byte{7}, 32)
	share, err := chunk.BuildShare("ghost", make([]byte, 500), smallPlan(), 777, secret)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = sys.FetchFileViaTracker(ctx, trk.Addr().String(), &share.Manifest, secret)
	if !errors.Is(err, client.ErrNoPeers) {
		t.Errorf("unannounced fetch error = %v, want ErrNoPeers", err)
	}
}

func TestAnnounceHandleValidation(t *testing.T) {
	sys, err := core.NewSystem(identity(t, 97), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AnnounceHandle(context.Background(), "x", nil, 0); !errors.Is(err, core.ErrBadHandle) {
		t.Errorf("nil handle error = %v", err)
	}
	if err := sys.AnnounceHandle(context.Background(), "x", &core.Handle{}, 0); !errors.Is(err, core.ErrBadHandle) {
		t.Errorf("empty handle error = %v", err)
	}
}
