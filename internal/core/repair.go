package core

// Replication audit and repair. Because every message is a
// deterministic function of (file-id, message-id, secret), the owner
// can regenerate any peer's batch from the original data at any time —
// so a peer that lost its store (disk failure, eviction) is repaired
// with a plain re-dissemination, no inter-peer transfer or decode
// needed. This realizes the paper's "geographic data robustness"
// operationally.

import (
	"context"
	"fmt"

	"asymshare/internal/chunk"
	"asymshare/internal/rlnc"
)

// AuditReport describes replication health for one handle.
type AuditReport struct {
	// MissingByPeer maps peer address to the number of (chunk, peer)
	// batches that are absent or incomplete there.
	MissingByPeer map[string]int

	// TotalBatches is the number of batches expected across all peers.
	TotalBatches int
}

// Healthy reports whether every expected batch is fully present.
func (a *AuditReport) Healthy() bool {
	for _, n := range a.MissingByPeer {
		if n > 0 {
			return false
		}
	}
	return true
}

// expectedCounts returns, per chunk, the batch size each peer should
// hold (k, capped by what BatchForPeer would mint).
func expectedCounts(m *chunk.Manifest) []int {
	out := make([]int, len(m.Chunks))
	for i, info := range m.Chunks {
		out[i] = info.K
	}
	return out
}

// holdsChunk reports whether addr is expected to hold chunk i.
func (h *Handle) holdsChunk(addr string, i int) bool {
	for _, a := range h.PeersForChunk(i) {
		if a == addr {
			return true
		}
	}
	return false
}

// batchRank returns the batch index addr was assigned for chunk i
// (its position among the chunk's holders), or -1.
func (h *Handle) batchRank(addr string, i int) int {
	for rank, a := range h.PeersForChunk(i) {
		if a == addr {
			return rank
		}
	}
	return -1
}

// Audit checks each peer's stored inventory against the handle,
// respecting ring placement when present.
func (s *System) Audit(ctx context.Context, h *Handle) (*AuditReport, error) {
	if h == nil || len(h.Peers) == 0 {
		return nil, fmt.Errorf("%w: missing peers", ErrBadHandle)
	}
	expected := expectedCounts(&h.Manifest)
	report := &AuditReport{MissingByPeer: make(map[string]int, len(h.Peers))}
	for _, addr := range h.Peers {
		files, err := s.client.ListFiles(ctx, addr)
		if err != nil {
			return nil, fmt.Errorf("core: audit %s: %w", addr, err)
		}
		have := make(map[uint64]int, len(files))
		for _, f := range files {
			have[f.FileID] = f.Messages
		}
		missing := 0
		for i, info := range h.Manifest.Chunks {
			if !h.holdsChunk(addr, i) {
				continue
			}
			if have[info.FileID] < expected[i] {
				missing++
			}
			report.TotalBatches++
		}
		report.MissingByPeer[addr] = missing
	}
	return report, nil
}

// Repair re-disseminates every incomplete batch found by Audit,
// regenerating the messages from the original data. It returns the
// number of messages re-uploaded.
func (s *System) Repair(ctx context.Context, h *Handle, secret, data []byte) (int, error) {
	if h == nil || len(h.Peers) == 0 {
		return 0, fmt.Errorf("%w: missing peers", ErrBadHandle)
	}
	if int64(len(data)) != h.Manifest.TotalSize {
		return 0, fmt.Errorf("%w: data is %d bytes, manifest says %d",
			ErrBadHandle, len(data), h.Manifest.TotalSize)
	}
	report, err := s.Audit(ctx, h)
	if err != nil {
		return 0, err
	}
	if report.Healthy() {
		return 0, nil
	}
	pieces := chunk.Split(data, h.Manifest.Plan.ChunkSize)
	repaired := 0
	for _, addr := range h.Peers {
		if report.MissingByPeer[addr] == 0 {
			continue
		}
		files, err := s.client.ListFiles(ctx, addr)
		if err != nil {
			return repaired, err
		}
		have := make(map[uint64]int, len(files))
		for _, f := range files {
			have[f.FileID] = f.Messages
		}
		var resend []*rlnc.Message
		for i, info := range h.Manifest.Chunks {
			rank := h.batchRank(addr, i)
			if rank < 0 || have[info.FileID] >= info.K {
				continue
			}
			params, err := info.Params(h.Manifest.Plan)
			if err != nil {
				return repaired, err
			}
			enc, err := rlnc.NewEncoder(params, info.FileID, secret, pieces[i])
			if err != nil {
				return repaired, err
			}
			batch, err := enc.BatchForPeer(rank, params.K)
			if err != nil {
				return repaired, err
			}
			resend = append(resend, batch...)
		}
		if len(resend) == 0 {
			continue
		}
		if err := s.client.Disseminate(ctx, addr, resend); err != nil {
			return repaired, fmt.Errorf("core: repair %s: %w", addr, err)
		}
		repaired += len(resend)
	}
	return repaired, nil
}
