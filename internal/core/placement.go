package core

// Ring placement: instead of storing every generation on every peer,
// ShareFilePlaced stores each generation on the r ring members closest
// to its file-id (PAST-style). Storage per peer drops from the whole
// file to ~r/n of it while any single responsible peer still suffices
// to decode its generations (batch invertibility).

import (
	"context"
	"fmt"

	"asymshare/internal/chunk"
	"asymshare/internal/client"
	"asymshare/internal/ring"
	"asymshare/internal/rlnc"
)

// PeersForChunk returns the addresses holding chunk i: the placed set
// when the handle carries one, otherwise all peers.
func (h *Handle) PeersForChunk(i int) []string {
	if i < len(h.ChunkPeers) && len(h.ChunkPeers[i]) > 0 {
		return h.ChunkPeers[i]
	}
	return h.Peers
}

// ShareFilePlaced encodes data and disseminates each generation to the
// `replicas` ring members responsible for its file-id. The returned
// handle records the per-chunk placement, so fetch, audit and repair
// contact only the right peers.
func (s *System) ShareFilePlaced(ctx context.Context, name string, data []byte,
	r *ring.Ring, replicas int) (*ShareResult, error) {
	if r == nil || r.Size() == 0 {
		return nil, fmt.Errorf("%w: empty ring", ErrBadHandle)
	}
	if replicas <= 0 {
		replicas = 2
	}
	secret, err := chunk.NewSecret()
	if err != nil {
		return nil, err
	}
	baseID, err := chunk.NewFileID()
	if err != nil {
		return nil, err
	}
	share, err := chunk.BuildShare(name, data, s.plan, baseID, secret)
	if err != nil {
		return nil, err
	}

	result := &ShareResult{Secret: secret}
	chunkPeers := make([][]string, share.NumChunks())
	// Group uploads per peer address so each peer gets one connection.
	perPeer := make(map[string][]*rlnc.Message)
	for i := 0; i < share.NumChunks(); i++ {
		info := share.Manifest.Chunks[i]
		addrs := r.Place(info.FileID, replicas)
		chunkPeers[i] = addrs
		for rank, addr := range addrs {
			batch, err := share.Encoder(i).BatchForPeer(rank, info.K)
			if err != nil {
				return nil, fmt.Errorf("core: chunk %d rank %d: %w", i, rank, err)
			}
			for _, msg := range batch {
				share.Manifest.Chunks[i].Digests[msg.MessageID] = msg.Digest()
			}
			perPeer[addr] = append(perPeer[addr], batch...)
		}
	}
	for addr, msgs := range perPeer {
		if err := s.client.Disseminate(ctx, addr, msgs); err != nil {
			return nil, fmt.Errorf("core: disseminate to %s: %w", addr, err)
		}
		result.MessagesSent += len(msgs)
		for _, m := range msgs {
			result.BytesSent += int64(len(m.Payload) + 16)
		}
	}
	result.Handle = Handle{
		Manifest:   share.Manifest,
		Peers:      r.Members(),
		ChunkPeers: chunkPeers,
	}
	return result, nil
}

// fetchPlaced retrieves a handle whose chunks live on different peer
// subsets.
func (s *System) fetchPlaced(ctx context.Context, h *Handle, secret []byte) ([]byte, client.FetchStats, error) {
	total := client.FetchStats{BytesFrom: make(map[string]uint64)}
	pieces := make([][]byte, len(h.Manifest.Chunks))
	for i, info := range h.Manifest.Chunks {
		params, err := info.Params(h.Manifest.Plan)
		if err != nil {
			return nil, total, err
		}
		data, stats, err := s.client.FetchGeneration(ctx, h.PeersForChunk(i), params,
			info.FileID, secret, info.Digests)
		if err != nil {
			return nil, total, fmt.Errorf("core: chunk %d: %w", i, err)
		}
		pieces[i] = data
		total.Messages += stats.Messages
		total.Innovative += stats.Innovative
		total.Rejected += stats.Rejected
		total.Elapsed += stats.Elapsed
		for k, v := range stats.BytesFrom {
			total.BytesFrom[k] += v
		}
	}
	data, err := chunk.Assemble(&h.Manifest, pieces)
	if err != nil {
		return nil, total, err
	}
	return data, total, nil
}
