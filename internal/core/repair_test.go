package core_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"asymshare/internal/core"
	"asymshare/internal/peer"
	"asymshare/internal/store"
)

func TestAuditAndRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := make([]byte, 2200) // 3 chunks under smallPlan
	rng.Read(data)

	sys, err := core.NewSystem(identity(t, 120), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}

	// Keep store references so the test can inject data loss.
	stores := make([]*store.Memory, 2)
	var addrs []string
	for i := range stores {
		stores[i] = store.NewMemory()
		node, err := peer.New(peer.Config{Identity: identity(t, byte(121+i)), Store: stores[i]})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		addrs = append(addrs, node.Addr().String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := sys.ShareFile(ctx, "precious.dat", data, addrs)
	if err != nil {
		t.Fatal(err)
	}

	report, err := sys.Audit(ctx, &res.Handle)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Healthy() {
		t.Fatalf("fresh share unhealthy: %+v", report)
	}
	if report.TotalBatches != 2*3 {
		t.Errorf("TotalBatches = %d, want 6", report.TotalBatches)
	}

	// Disaster: peer 0 loses one generation entirely.
	lost := res.Handle.Manifest.Chunks[1].FileID
	if err := stores[0].Drop(lost); err != nil {
		t.Fatal(err)
	}
	report, err = sys.Audit(ctx, &res.Handle)
	if err != nil {
		t.Fatal(err)
	}
	if report.Healthy() {
		t.Fatal("audit missed the lost generation")
	}
	if report.MissingByPeer[addrs[0]] != 1 || report.MissingByPeer[addrs[1]] != 0 {
		t.Errorf("MissingByPeer = %v", report.MissingByPeer)
	}

	// Repair regenerates and re-uploads exactly the lost batch.
	n, err := sys.Repair(ctx, &res.Handle, res.Secret, data)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("repair uploaded nothing")
	}
	report, err = sys.Audit(ctx, &res.Handle)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Healthy() {
		t.Fatalf("still unhealthy after repair: %+v", report)
	}

	// A second repair is a no-op.
	n, err = sys.Repair(ctx, &res.Handle, res.Secret, data)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("idempotent repair uploaded %d messages", n)
	}

	// And the file still fetches, now again from both peers.
	got, _, err := sys.FetchFile(ctx, &res.Handle, res.Secret)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetch after repair mismatch")
	}
}

func TestAuditRepairValidation(t *testing.T) {
	sys, err := core.NewSystem(identity(t, 130), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sys.Audit(ctx, nil); !errors.Is(err, core.ErrBadHandle) {
		t.Errorf("nil handle audit error = %v", err)
	}
	if _, err := sys.Repair(ctx, nil, nil, nil); !errors.Is(err, core.ErrBadHandle) {
		t.Errorf("nil handle repair error = %v", err)
	}
	h := &core.Handle{Peers: []string{"x"}}
	h.Manifest.TotalSize = 10
	if _, err := sys.Repair(ctx, h, nil, make([]byte, 5)); !errors.Is(err, core.ErrBadHandle) {
		t.Errorf("size mismatch repair error = %v", err)
	}
}
