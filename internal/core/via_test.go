package core_test

// ShareFileGossip + FetchFileVia: the home seeds its co-located gossip
// engine, rumor exchange carries the generations to a storage peer's
// store, and a remote user fetches byte-identical data resolving that
// peer through the Discovery seam alone.

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"asymshare/internal/core"
	"asymshare/internal/gossip"
	"asymshare/internal/peer"
	"asymshare/internal/store"
)

// staticDiscovery resolves every file-id to a fixed peer set.
type staticDiscovery struct {
	mu    sync.Mutex
	addrs map[uint64][]string
}

func (d *staticDiscovery) Announce(ctx context.Context, fileID uint64, addr string, ttl time.Duration) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.addrs == nil {
		d.addrs = make(map[uint64][]string)
	}
	d.addrs[fileID] = append(d.addrs[fileID], addr)
	return nil
}

func (d *staticDiscovery) Lookup(ctx context.Context, fileID uint64) ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.addrs[fileID]...), nil
}

func (d *staticDiscovery) Close() error { return nil }

func startGossipEngine(t *testing.T, st store.Store, cfg gossip.Config) *gossip.Engine {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Advertise = ln.Addr().String()
	cfg.Store = st
	e, err := gossip.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartListener(ln); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestShareFileGossipFetchVia(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 2100)
	rng.Read(data)

	sys, err := core.NewSystem(identity(t, 120), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}

	// A storage peer whose store is fed by its gossip engine; it
	// announces itself through discovery as generations arrive.
	disc := &staticDiscovery{}
	storeB := store.NewMemory()
	peerB, err := peer.New(peer.Config{Identity: identity(t, 121), Store: storeB})
	if err != nil {
		t.Fatal(err)
	}
	if err := peerB.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peerB.Close() })
	engB := startGossipEngine(t, storeB, gossip.Config{
		Announce: func(fileID uint64) {
			_ = disc.Announce(context.Background(), fileID, peerB.Addr().String(), 0)
		},
	})

	// The home: its engine shares the store minted by ShareFileGossip.
	storeA := store.NewMemory()
	engA := startGossipEngine(t, storeA, gossip.Config{})

	res, err := sys.ShareFileGossip(ctx, "rumor.bin", data, engA, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesSent == 0 {
		t.Fatal("gossip share seeded no messages")
	}

	// One exchange per generation carries the full-rank seed batch over.
	for _, info := range res.Handle.Manifest.Chunks {
		if _, err := engA.Exchange(ctx, engB.Addr(), info.FileID); err != nil {
			t.Fatalf("exchange chunk %d: %v", info.FileID, err)
		}
		if got, want := storeB.Count(info.FileID), storeA.Count(info.FileID); got != want {
			t.Fatalf("chunk %d: storage peer holds %d/%d messages", info.FileID, got, want)
		}
	}

	// A remote user resolves the storage peer purely through discovery.
	remote, err := core.NewSystem(identity(t, 122), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := remote.FetchFileVia(ctx, disc, &res.Handle.Manifest, res.Secret)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("gossip-disseminated fetch mismatch")
	}
	if stats.Innovative == 0 {
		t.Error("no innovative messages recorded")
	}
}
