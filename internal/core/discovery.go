package core

// Tracker integration: the out-of-band content-location mechanism the
// paper assumes exists (Sec. II), now expressed as one Discovery
// implementation behind the seam in via.go. The owner announces which
// peers hold each generation; a remote user with only the manifest, the
// secret and the tracker address can resolve peers per chunk and fetch.

import (
	"context"
	"time"

	"asymshare/internal/chunk"
	"asymshare/internal/client"
	"asymshare/internal/discovery"
)

// AnnounceHandle registers every (chunk file-id -> peer address) pair
// of a handle with a tracker. A zero ttl requests the tracker maximum.
func (s *System) AnnounceHandle(ctx context.Context, trackerAddr string, h *Handle, ttl time.Duration) error {
	d, err := discovery.NewTracker(trackerAddr, nil)
	if err != nil {
		return err
	}
	return s.AnnounceHandleVia(ctx, d, h, ttl)
}

// FetchFileViaTracker retrieves a file resolving the serving peers for
// every chunk through the tracker, so the user needs no pre-shared peer
// list — only the manifest, the secret, and the tracker address.
func (s *System) FetchFileViaTracker(ctx context.Context, trackerAddr string,
	m *chunk.Manifest, secret []byte) ([]byte, client.FetchStats, error) {
	d, err := discovery.NewTracker(trackerAddr, nil)
	if err != nil {
		return nil, client.FetchStats{BytesFrom: make(map[string]uint64)}, err
	}
	return s.FetchFileVia(ctx, d, m, secret)
}
