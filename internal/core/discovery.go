package core

// Tracker integration: the out-of-band content-location mechanism the
// paper assumes exists (Sec. II). The owner announces which peers hold
// each generation; a remote user with only the manifest, the secret and
// the tracker address can resolve peers per chunk and fetch.

import (
	"context"
	"fmt"
	"time"

	"asymshare/internal/chunk"
	"asymshare/internal/client"
	"asymshare/internal/tracker"
)

// AnnounceHandle registers every (chunk file-id -> peer address) pair
// of a handle with a tracker. A zero ttl requests the tracker maximum.
func (s *System) AnnounceHandle(ctx context.Context, trackerAddr string, h *Handle, ttl time.Duration) error {
	if h == nil || len(h.Peers) == 0 {
		return fmt.Errorf("%w: missing peers", ErrBadHandle)
	}
	for _, info := range h.Manifest.Chunks {
		for _, peerAddr := range h.Peers {
			if err := tracker.Announce(ctx, trackerAddr, info.FileID, peerAddr, ttl); err != nil {
				return fmt.Errorf("core: announce chunk %d: %w", info.FileID, err)
			}
		}
	}
	return nil
}

// FetchFileViaTracker retrieves a file resolving the serving peers for
// every chunk through the tracker, so the user needs no pre-shared peer
// list — only the manifest, the secret, and the tracker address.
func (s *System) FetchFileViaTracker(ctx context.Context, trackerAddr string,
	m *chunk.Manifest, secret []byte) ([]byte, client.FetchStats, error) {
	total := client.FetchStats{BytesFrom: make(map[string]uint64)}
	if err := m.Validate(); err != nil {
		return nil, total, err
	}
	pieces := make([][]byte, len(m.Chunks))
	for i, info := range m.Chunks {
		addrs, err := tracker.Lookup(ctx, trackerAddr, info.FileID)
		if err != nil {
			return nil, total, fmt.Errorf("core: resolve chunk %d: %w", i, err)
		}
		if len(addrs) == 0 {
			return nil, total, fmt.Errorf("core: chunk %d: %w", i, client.ErrNoPeers)
		}
		params, err := info.Params(m.Plan)
		if err != nil {
			return nil, total, err
		}
		data, stats, err := s.client.FetchGeneration(ctx, addrs, params, info.FileID, secret, info.Digests)
		if err != nil {
			return nil, total, fmt.Errorf("core: chunk %d: %w", i, err)
		}
		pieces[i] = data
		total.Messages += stats.Messages
		total.Innovative += stats.Innovative
		total.Rejected += stats.Rejected
		total.Elapsed += stats.Elapsed
		for k, v := range stats.BytesFrom {
			total.BytesFrom[k] += v
		}
	}
	data, err := chunk.Assemble(m, pieces)
	if err != nil {
		return nil, total, err
	}
	return data, total, nil
}
