package core_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
	"time"

	"asymshare/internal/core"
	"asymshare/internal/peer"
	"asymshare/internal/ring"
	"asymshare/internal/store"
)

func TestShareFilePlacedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	data := make([]byte, 4100) // 5 chunks under smallPlan (1024)
	rng.Read(data)

	sys, err := core.NewSystem(identity(t, 140), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}
	stores := make(map[string]*store.Memory)
	var addrs []string
	for i := byte(0); i < 5; i++ {
		st := store.NewMemory()
		node, err := peer.New(peer.Config{Identity: identity(t, 141+i), Store: st})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		addrs = append(addrs, node.Addr().String())
		stores[node.Addr().String()] = st
	}
	r, err := ring.New(addrs, 32)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const replicas = 2
	res, err := sys.ShareFilePlaced(ctx, "placed.bin", data, r, replicas)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Handle.ChunkPeers) != 5 {
		t.Fatalf("ChunkPeers = %d entries", len(res.Handle.ChunkPeers))
	}
	for i, cp := range res.Handle.ChunkPeers {
		if len(cp) != replicas {
			t.Errorf("chunk %d placed on %d peers", i, len(cp))
		}
	}
	// Each peer stores only its share: total stored messages equal
	// replicas * sum(k), not peers * sum(k).
	wantMsgs := 0
	for _, info := range res.Handle.Manifest.Chunks {
		wantMsgs += replicas * info.K
	}
	gotMsgs := 0
	for _, st := range stores {
		gotMsgs += st.TotalMessages()
	}
	if gotMsgs != wantMsgs {
		t.Errorf("stored messages = %d, want %d", gotMsgs, wantMsgs)
	}

	// Fetch resolves the placement transparently.
	got, stats, err := sys.FetchFile(ctx, &res.Handle, res.Secret)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("placed fetch mismatch")
	}
	if stats.Rejected != 0 {
		t.Errorf("rejected = %d", stats.Rejected)
	}

	// Audit understands placement: healthy now...
	report, err := sys.Audit(ctx, &res.Handle)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Healthy() {
		t.Fatalf("placed share unhealthy: %+v", report)
	}
	if report.TotalBatches != 5*replicas {
		t.Errorf("TotalBatches = %d, want %d", report.TotalBatches, 5*replicas)
	}

	// ...and repair restores a responsible peer after data loss.
	victim := res.Handle.ChunkPeers[0][0]
	if err := stores[victim].Drop(res.Handle.Manifest.Chunks[0].FileID); err != nil {
		t.Fatal(err)
	}
	report, err = sys.Audit(ctx, &res.Handle)
	if err != nil {
		t.Fatal(err)
	}
	if report.Healthy() {
		t.Fatal("audit missed placed loss")
	}
	n, err := sys.Repair(ctx, &res.Handle, res.Secret, data)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("repair uploaded nothing")
	}
	report, err = sys.Audit(ctx, &res.Handle)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Healthy() {
		t.Fatalf("still unhealthy after placed repair: %+v", report)
	}

	// The handle (with placement) survives serialization.
	blob, err := json.Marshal(res.Handle)
	if err != nil {
		t.Fatal(err)
	}
	var h core.Handle
	if err := json.Unmarshal(blob, &h); err != nil {
		t.Fatal(err)
	}
	got, _, err = sys.FetchFile(ctx, &h, res.Secret)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetch via serialized placed handle mismatch")
	}
}

func TestShareFilePlacedValidation(t *testing.T) {
	sys, err := core.NewSystem(identity(t, 150), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ShareFilePlaced(context.Background(), "x", []byte{1}, nil, 2); !errors.Is(err, core.ErrBadHandle) {
		t.Errorf("nil ring error = %v", err)
	}
}

func TestPeersForChunkFallback(t *testing.T) {
	h := &core.Handle{Peers: []string{"a", "b"}}
	if got := h.PeersForChunk(0); len(got) != 2 {
		t.Errorf("flat fallback = %v", got)
	}
	h.ChunkPeers = [][]string{{"c"}}
	if got := h.PeersForChunk(0); len(got) != 1 || got[0] != "c" {
		t.Errorf("placed = %v", got)
	}
	if got := h.PeersForChunk(5); len(got) != 2 {
		t.Errorf("out-of-range falls back = %v", got)
	}
}
