package core_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/chunk"
	"asymshare/internal/client"
	"asymshare/internal/core"
	"asymshare/internal/gf"
	"asymshare/internal/peer"
	"asymshare/internal/store"
)

func identity(t *testing.T, b byte) *auth.Identity {
	t.Helper()
	id, err := auth.IdentityFromSeed(bytes.Repeat([]byte{b}, 32))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func smallPlan() chunk.Plan {
	return chunk.Plan{FieldBits: gf.Bits8, M: 128, ChunkSize: 1024}
}

func startPeer(t *testing.T, b byte) *peer.Node {
	t.Helper()
	n, err := peer.New(peer.Config{Identity: identity(t, b), Store: store.NewMemory()})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := core.NewSystem(nil, nil); err == nil {
		t.Error("nil identity accepted")
	}
	bad := chunk.Plan{FieldBits: 5, M: 1, ChunkSize: 1}
	if _, err := core.NewSystem(identity(t, 1), nil, core.WithPlan(bad)); err == nil {
		t.Error("bad plan accepted")
	}
	s, err := core.NewSystem(identity(t, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Plan().ChunkSize != chunk.DefaultChunkSize {
		t.Errorf("default plan chunk size = %d", s.Plan().ChunkSize)
	}
	if s.Identity() == nil || s.Client() == nil {
		t.Error("accessors returned nil")
	}
}

func TestShareFetchRoundTripEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 3000)
	rng.Read(data)

	sys, err := core.NewSystem(identity(t, 2), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for i := byte(0); i < 3; i++ {
		addrs = append(addrs, startPeer(t, 10+i).Addr().String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	res, err := sys.ShareFile(ctx, "notes.txt", data, addrs)
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesSent == 0 || res.BytesSent == 0 {
		t.Errorf("share stats: %+v", res)
	}
	if got := len(res.Handle.Manifest.Chunks); got != 3 {
		t.Errorf("chunks = %d, want 3", got)
	}

	got, stats, err := sys.FetchFile(ctx, &res.Handle, res.Secret)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetched data mismatch")
	}
	if stats.Rejected != 0 {
		t.Errorf("rejected = %d", stats.Rejected)
	}
	if len(stats.BytesFrom) == 0 {
		t.Error("no per-peer receipts recorded")
	}
}

func TestFetchWithWrongSecretFails(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 800)
	rng.Read(data)
	sys, err := core.NewSystem(identity(t, 3), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}
	addr := startPeer(t, 20).Addr().String()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := sys.ShareFile(ctx, "secret.bin", data, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	wrong := make([]byte, len(res.Secret))
	copy(wrong, res.Secret)
	wrong[0] ^= 1
	// With the wrong secret the derived coefficient rows are wrong, so
	// decoding either yields garbage flagged by digests... but digests
	// live in the manifest and authenticate *messages*, not the decode;
	// the decode must simply not reproduce the data.
	got, _, err := sys.FetchFile(ctx, &res.Handle, wrong)
	if err == nil && bytes.Equal(got, data) {
		t.Fatal("wrong secret decoded the file")
	}
}

func TestFetchFileBadHandle(t *testing.T) {
	sys, err := core.NewSystem(identity(t, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.FetchFile(context.Background(), nil, nil); !errors.Is(err, core.ErrBadHandle) {
		t.Errorf("nil handle error = %v", err)
	}
	if _, _, err := sys.FetchFile(context.Background(), &core.Handle{}, nil); !errors.Is(err, core.ErrBadHandle) {
		t.Errorf("empty handle error = %v", err)
	}
}

func TestShareFileNoPeers(t *testing.T) {
	sys, err := core.NewSystem(identity(t, 5), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ShareFile(context.Background(), "x", []byte{1}, nil); !errors.Is(err, client.ErrNoPeers) {
		t.Errorf("no peers error = %v", err)
	}
}

func TestHandleJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 600)
	rng.Read(data)
	sys, err := core.NewSystem(identity(t, 6), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}
	addr := startPeer(t, 30).Addr().String()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := sys.ShareFile(ctx, "doc", data, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res.Handle)
	if err != nil {
		t.Fatal(err)
	}
	var h core.Handle
	if err := json.Unmarshal(blob, &h); err != nil {
		t.Fatal(err)
	}
	got, _, err := sys.FetchFile(ctx, &h, res.Secret)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetch via serialized handle mismatch")
	}
}

func TestReportFeedbackCreditsOwnPeer(t *testing.T) {
	owner := identity(t, 7)
	ownPeer, err := peer.New(peer.Config{
		Identity: identity(t, 40),
		Store:    store.NewMemory(),
		Owner:    owner.Public(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ownPeer.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ownPeer.Close() })

	sys, err := core.NewSystem(owner, nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	stats := client.FetchStats{BytesFrom: map[string]uint64{"peerZ": 4321}}
	if err := sys.ReportFeedback(ctx, ownPeer.Addr().String(), stats); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if ownPeer.Ledger().Received("peerZ") >= 4321 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("feedback not credited")
}

func TestReportFeedbackEmptyIsNoop(t *testing.T) {
	sys, err := core.NewSystem(identity(t, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ReportFeedback(context.Background(), "127.0.0.1:1", client.FetchStats{}); err != nil {
		t.Errorf("empty feedback error = %v", err)
	}
}
