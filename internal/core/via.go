package core

// Discovery-seam integration: announce and fetch against any
// discovery.Discovery — tracker, DHT, or a failover chain — so the
// layers above never hard-code a location mechanism. The tracker- and
// DHT-specific entry points in discovery.go and dht.go are thin
// wrappers over these.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"asymshare/internal/chunk"
	"asymshare/internal/client"
	"asymshare/internal/discovery"
	"asymshare/internal/gossip"
)

// AnnounceHandleVia registers every (chunk file-id -> peer address)
// pair of a handle with a discovery mechanism, honoring per-chunk
// placement. A zero ttl requests the mechanism's maximum.
func (s *System) AnnounceHandleVia(ctx context.Context, d discovery.Discovery, h *Handle, ttl time.Duration) error {
	if h == nil || len(h.Peers) == 0 {
		return fmt.Errorf("%w: missing peers", ErrBadHandle)
	}
	for i, info := range h.Manifest.Chunks {
		for _, addr := range h.PeersForChunk(i) {
			if err := d.Announce(ctx, info.FileID, addr, ttl); err != nil {
				return fmt.Errorf("core: announce chunk %d: %w", info.FileID, err)
			}
		}
	}
	return nil
}

// FetchFileVia retrieves a file resolving each chunk's peers through a
// discovery mechanism — the user needs only the manifest, the secret,
// and a way to discover.
func (s *System) FetchFileVia(ctx context.Context, d discovery.Discovery,
	m *chunk.Manifest, secret []byte) ([]byte, client.FetchStats, error) {
	total := client.FetchStats{BytesFrom: make(map[string]uint64)}
	if err := m.Validate(); err != nil {
		return nil, total, err
	}
	pieces := make([][]byte, len(m.Chunks))
	for i, info := range m.Chunks {
		addrs, err := d.Lookup(ctx, info.FileID)
		if errors.Is(err, discovery.ErrNotFound) || (err == nil && len(addrs) == 0) {
			return nil, total, fmt.Errorf("core: chunk %d: %w", i, errors.Join(client.ErrNoPeers, err))
		}
		if err != nil {
			return nil, total, fmt.Errorf("core: resolve chunk %d: %w", i, err)
		}
		params, err := info.Params(m.Plan)
		if err != nil {
			return nil, total, err
		}
		data, stats, err := s.client.FetchGeneration(ctx, addrs, params, info.FileID, secret, info.Digests)
		if err != nil {
			return nil, total, fmt.Errorf("core: chunk %d: %w", i, err)
		}
		pieces[i] = data
		total.Messages += stats.Messages
		total.Innovative += stats.Innovative
		total.Rejected += stats.Rejected
		total.Elapsed += stats.Elapsed
		for k, v := range stats.BytesFrom {
			total.BytesFrom[k] += v
		}
	}
	data, err := chunk.Assemble(m, pieces)
	if err != nil {
		return nil, total, err
	}
	return data, total, nil
}

// ShareFileGossip encodes data and seeds it into a gossip engine
// instead of pushing batches peer-by-peer: the home uplink pays for one
// full-rank batch per generation plus Fanout exchanges per round, and
// rumor mongering carries the generations across the swarm. serveAddr
// is the home peer's own serving address (the engine's store is shared
// with it), recorded as the handle's initial peer; additional holders
// surface through discovery as their engines announce.
func (s *System) ShareFileGossip(ctx context.Context, name string, data []byte,
	eng *gossip.Engine, serveAddr string) (*ShareResult, error) {
	if eng == nil {
		return nil, fmt.Errorf("core: nil gossip engine")
	}
	secret, err := chunk.NewSecret()
	if err != nil {
		return nil, err
	}
	baseID, err := chunk.NewFileID()
	if err != nil {
		return nil, err
	}
	share, err := chunk.BuildShare(name, data, s.plan, baseID, secret)
	if err != nil {
		return nil, err
	}
	// One full-rank batch (peer index 0): any single complete copy of it
	// decodes, and every onward hop is innovation-aware gossip.
	batches, err := share.BatchForPeer(0, 1<<31-1)
	if err != nil {
		return nil, fmt.Errorf("core: mint seed batch: %w", err)
	}
	result := &ShareResult{Secret: secret}
	for i, batch := range batches {
		info := share.Manifest.Chunks[i]
		payloadLen := 0
		if len(batch) > 0 {
			payloadLen = len(batch[0].Payload)
		}
		if err := eng.Seed(info.FileID, info.K, payloadLen, batch); err != nil {
			return nil, fmt.Errorf("core: seed chunk %d: %w", info.FileID, err)
		}
		result.MessagesSent += len(batch)
		for _, m := range batch {
			result.BytesSent += int64(len(m.Payload) + 16)
		}
	}
	var peers []string
	if serveAddr != "" {
		peers = []string{serveAddr}
	}
	result.Handle = Handle{Manifest: share.Manifest, Peers: peers}
	return result, nil
}
