// Package core is the top-level facade of asymshare, tying together
// encoding (rlnc), chunking (chunk), dissemination and retrieval
// (client/peer) behind the workflow a user actually performs:
//
//  1. Share: encode a file with a fresh secret, mint per-peer message
//     batches, and upload them to storage peers while the home link is
//     idle (initialization, Sec. III-A).
//  2. Fetch: from any remote computer, download encoded messages from
//     many peers in parallel, beating the home upload bottleneck, and
//     decode with the secret (Sec. III-B).
//  3. Feedback: report per-peer receipts to the user's own peer so its
//     allocator can credit contributors (Sec. III-B, Eq. 2).
package core

import (
	"context"
	"errors"
	"fmt"

	"asymshare/internal/auth"
	"asymshare/internal/chunk"
	"asymshare/internal/client"
	"asymshare/internal/rlnc"
)

// ErrBadHandle is returned for malformed share handles.
var ErrBadHandle = errors.New("core: invalid share handle")

// System is a user's view of the network.
type System struct {
	id         *auth.Identity
	client     *client.Client
	plan       chunk.Plan
	clientOpts client.Options
}

// Option customizes a System.
type Option func(*System)

// WithPlan overrides the default coding plan (GF(2^32), m = 32768,
// 1 MB chunks).
func WithPlan(plan chunk.Plan) Option {
	return func(s *System) { s.plan = plan }
}

// WithClientOptions customizes the system's client networking —
// timeouts, retries, or an alternative transport (a netsim host, say).
func WithClientOptions(opts client.Options) Option {
	return func(s *System) { s.clientOpts = opts }
}

// NewSystem creates a System for the given identity. trustedPeers, if
// non-nil, pins the peer keys the system will talk to.
func NewSystem(id *auth.Identity, trustedPeers *auth.TrustSet, opts ...Option) (*System, error) {
	if id == nil {
		return nil, errors.New("core: identity required")
	}
	s := &System{id: id, plan: chunk.DefaultPlan()}
	for _, opt := range opts {
		opt(s)
	}
	c, err := client.NewWith(id, trustedPeers, s.clientOpts)
	if err != nil {
		return nil, err
	}
	s.client = c
	if err := s.plan.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Identity returns the system's identity.
func (s *System) Identity() *auth.Identity { return s.id }

// Plan returns the coding plan in use.
func (s *System) Plan() chunk.Plan { return s.plan }

// Handle is everything needed to retrieve a shared file: the public
// manifest plus the addresses the batches were sent to. The Secret
// stays with the owner — anyone holding only Manifest and peer
// addresses (e.g. the storage peers themselves) cannot decode.
type Handle struct {
	Manifest chunk.Manifest `json:"manifest"`
	Peers    []string       `json:"peers"`

	// ChunkPeers, when present, records the ring placement: entry i is
	// the address set holding chunk i. Empty means every peer holds
	// every chunk (flat ShareFile).
	ChunkPeers [][]string `json:"chunkPeers,omitempty"`
}

// ShareResult is returned by ShareFile.
type ShareResult struct {
	Handle Handle

	// Secret is the private coding key; keep it with the user.
	Secret []byte

	// MessagesSent counts uploaded messages across peers and chunks.
	MessagesSent int

	// BytesSent counts uploaded payload bytes.
	BytesSent int64
}

// ShareFile encodes data and disseminates one batch per peer address.
// Peer index i (0-based position in peerAddrs) receives the batch
// minted by BatchForPeer(i), whose coefficient matrix is guaranteed
// invertible, so the file remains fully retrievable from any single
// complete peer.
func (s *System) ShareFile(ctx context.Context, name string, data []byte, peerAddrs []string) (*ShareResult, error) {
	if len(peerAddrs) == 0 {
		return nil, client.ErrNoPeers
	}
	secret, err := chunk.NewSecret()
	if err != nil {
		return nil, err
	}
	baseID, err := chunk.NewFileID()
	if err != nil {
		return nil, err
	}
	share, err := chunk.BuildShare(name, data, s.plan, baseID, secret)
	if err != nil {
		return nil, err
	}
	result := &ShareResult{Secret: secret}
	for i, addr := range peerAddrs {
		batches, err := share.BatchForPeer(i, 1<<31-1)
		if err != nil {
			return nil, fmt.Errorf("core: batch for peer %d: %w", i, err)
		}
		var flat []*rlnc.Message
		for _, b := range batches {
			flat = append(flat, b...)
		}
		if err := s.client.Disseminate(ctx, addr, flat); err != nil {
			return nil, fmt.Errorf("core: disseminate to %s: %w", addr, err)
		}
		result.MessagesSent += len(flat)
		for _, m := range flat {
			result.BytesSent += int64(len(m.Payload) + 16)
		}
	}
	result.Handle = Handle{Manifest: share.Manifest, Peers: append([]string(nil), peerAddrs...)}
	return result, nil
}

// FetchFile retrieves and reassembles a shared file from the handle's
// peers, downloading each chunk in parallel across all peers holding
// it (the placed subset for ring shares, everyone otherwise).
func (s *System) FetchFile(ctx context.Context, h *Handle, secret []byte) ([]byte, client.FetchStats, error) {
	if h == nil || len(h.Peers) == 0 {
		return nil, client.FetchStats{}, fmt.Errorf("%w: missing peers", ErrBadHandle)
	}
	if len(h.ChunkPeers) > 0 {
		return s.fetchPlaced(ctx, h, secret)
	}
	return s.client.FetchFile(ctx, h.Peers, &h.Manifest, secret)
}

// ReportFeedback forwards the per-peer receipts of a fetch to the
// user's own peer so contributors get credited in its ledger.
func (s *System) ReportFeedback(ctx context.Context, ownPeerAddr string, stats client.FetchStats) error {
	if len(stats.BytesFrom) == 0 {
		return nil
	}
	return s.client.SendFeedback(ctx, ownPeerAddr, stats.BytesFrom)
}

// Client exposes the underlying client for advanced use (e.g. fetching
// a single generation).
func (s *System) Client() *client.Client { return s.client }
