package core

// File modification (Sec. VI-A): in-place edits propagate as per-chunk
// delta messages patched into the peers' stores, instead of a full
// re-share. Only the changed generations cost any upload bandwidth.

import (
	"context"
	"fmt"

	"asymshare/internal/chunk"
	"asymshare/internal/rlnc"
)

// UpdateResult summarizes an in-place update.
type UpdateResult struct {
	// ChangedChunks lists the generation indexes that differed.
	ChangedChunks []int

	// MessagesPatched counts delta messages pushed across all peers.
	MessagesPatched int

	// BytesSent is the total delta traffic (payload + headers).
	BytesSent int64
}

// UpdateFile pushes the difference between oldData and newData to every
// peer in the handle and refreshes the manifest digests for the changed
// chunks. Both versions must have the handle's original size; resizes
// need a fresh ShareFile.
func (s *System) UpdateFile(ctx context.Context, h *Handle, secret, oldData, newData []byte) (*UpdateResult, error) {
	if h == nil || len(h.Peers) == 0 {
		return nil, fmt.Errorf("%w: missing peers", ErrBadHandle)
	}
	if int64(len(oldData)) != h.Manifest.TotalSize {
		return nil, fmt.Errorf("%w: old version is %d bytes, manifest says %d",
			ErrBadHandle, len(oldData), h.Manifest.TotalSize)
	}
	changed, err := chunk.ChangedChunks(oldData, newData, h.Manifest.Plan.ChunkSize)
	if err != nil {
		return nil, err
	}
	result := &UpdateResult{ChangedChunks: changed}
	if len(changed) == 0 {
		return result, nil
	}
	oldChunks := chunk.Split(oldData, h.Manifest.Plan.ChunkSize)
	newChunks := chunk.Split(newData, h.Manifest.Plan.ChunkSize)
	if h.Manifest.ContentMD5 != "" {
		h.Manifest.ContentMD5 = chunk.ContentDigest(newData)
	}

	for _, idx := range changed {
		info := &h.Manifest.Chunks[idx]
		params, err := info.Params(h.Manifest.Plan)
		if err != nil {
			return nil, err
		}
		delta, err := rlnc.NewDeltaEncoder(params, info.FileID, secret, oldChunks[idx], newChunks[idx])
		if err != nil {
			return nil, fmt.Errorf("core: chunk %d: %w", idx, err)
		}
		newEnc, err := rlnc.NewEncoder(params, info.FileID, secret, newChunks[idx])
		if err != nil {
			return nil, err
		}
		// Each peer holds the batch its index was minted with; batch
		// message-ids depend only on (file-id, secret), so the owner can
		// recompute them without contacting anyone.
		oldEnc, err := rlnc.NewEncoder(params, info.FileID, secret, oldChunks[idx])
		if err != nil {
			return nil, err
		}
		for peerIdx, addr := range h.Peers {
			batch, err := oldEnc.BatchForPeer(peerIdx, params.K)
			if err != nil {
				return nil, fmt.Errorf("core: chunk %d peer %d: %w", idx, peerIdx, err)
			}
			deltas := make([]*rlnc.Message, 0, len(batch))
			for _, msg := range batch {
				if delta.IsNoop(msg.MessageID) {
					continue
				}
				d := delta.Delta(msg.MessageID)
				deltas = append(deltas, d)
				result.BytesSent += int64(len(d.Payload) + 16)
			}
			if len(deltas) == 0 {
				continue
			}
			if err := s.client.Patch(ctx, addr, deltas); err != nil {
				return nil, fmt.Errorf("core: patch chunk %d at %s: %w", idx, addr, err)
			}
			result.MessagesPatched += len(deltas)
			// Refresh the digests the manifest publishes for this peer's
			// patched messages.
			for _, msg := range batch {
				info.Digests[msg.MessageID] = newEnc.Message(msg.MessageID).Digest()
			}
		}
	}
	return result, nil
}
