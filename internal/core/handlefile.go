package core

// Handle files on disk. The handle is the only durable artifact a
// share leaves with its owner — lose it and the manifest digests and
// peer list are gone, so the encoded file is unrecoverable even with
// the secret. Saves therefore go through the write-temp, fsync,
// rename, fsync-parent discipline of fsx.WriteFileAtomic: a crash (or
// a failed update) leaves either the previous handle or the new one,
// never a torn or empty file.

import (
	"encoding/json"
	"fmt"

	"asymshare/internal/fsx"
)

// SaveHandleFile durably writes a handle to path as indented JSON.
func SaveHandleFile(path string, h *Handle) error {
	return SaveHandleFileFS(fsx.OS, path, h)
}

// SaveHandleFileFS is SaveHandleFile through an fsx.FS seam.
func SaveHandleFileFS(fsys fsx.FS, path string, h *Handle) error {
	blob, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return fmt.Errorf("core: save handle %s: %w", path, err)
	}
	blob = append(blob, '\n')
	if err := fsx.WriteFileAtomic(fsys, path, blob, 0o644); err != nil {
		return fmt.Errorf("core: save handle: %w", err)
	}
	return nil
}

// LoadHandleFile reads a handle previously written by SaveHandleFile.
func LoadHandleFile(path string) (*Handle, error) {
	return LoadHandleFileFS(fsx.OS, path)
}

// LoadHandleFileFS is LoadHandleFile through an fsx.FS seam.
func LoadHandleFileFS(fsys fsx.FS, path string) (*Handle, error) {
	blob, err := fsx.ReadFile(fsys, path)
	if err != nil {
		return nil, err
	}
	var h Handle
	if err := json.Unmarshal(blob, &h); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadHandle, path, err)
	}
	return &h, nil
}
