package core_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"asymshare/internal/core"
	"asymshare/internal/peer"
	"asymshare/internal/store"
)

// TestSpotCheckCatchesSilentCorruption covers the case count-based
// Audit cannot: a peer that keeps the right message inventory but the
// wrong bytes. The spot-check must fail it, assess a debit, and
// RepairFailed must restore retrievability.
func TestSpotCheckCatchesSilentCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	data := make([]byte, 2200) // 3 chunks under smallPlan
	rng.Read(data)

	sys, err := core.NewSystem(identity(t, 130), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]*store.Memory, 2)
	fps := make([]string, 2)
	var addrs []string
	for i := range stores {
		stores[i] = store.NewMemory()
		id := identity(t, byte(131+i))
		fps[i] = id.Fingerprint()
		node, err := peer.New(peer.Config{Identity: id, Store: stores[i]})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		addrs = append(addrs, node.Addr().String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := sys.ShareFile(ctx, "precious.dat", data, addrs)
	if err != nil {
		t.Fatal(err)
	}

	opts := core.SpotCheckOptions{Sample: 4, Seed: 5}
	report, err := sys.SpotCheck(ctx, &res.Handle, res.Secret, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !report.AllPassed() {
		t.Fatalf("fresh share failed spot-check: %+v", report.FailedChunks)
	}
	// 2 peers × 3 chunks, every obligation probed.
	if len(report.Verdicts) != 6 {
		t.Fatalf("got %d verdicts, want 6", len(report.Verdicts))
	}
	if len(report.Debits) != 0 {
		t.Errorf("honest round assessed debits: %v", report.Debits)
	}

	// Peer 0 silently corrupts every message of chunk 1: inventory
	// counts stay perfect, the bytes are garbage.
	victim := res.Handle.Manifest.Chunks[1].FileID
	msgs, err := stores[0].Messages(victim)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		bad := m.Clone()
		bad.Payload[0] ^= 0xFF
		if err := stores[0].Put(bad); err != nil {
			t.Fatal(err)
		}
	}

	// The count-based audit is fooled...
	countReport, err := sys.Audit(ctx, &res.Handle)
	if err != nil {
		t.Fatal(err)
	}
	if !countReport.Healthy() {
		t.Fatal("count-based audit unexpectedly noticed the corruption")
	}

	// ...the keyed spot-check is not.
	report, err = sys.SpotCheck(ctx, &res.Handle, res.Secret, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.AllPassed() {
		t.Fatal("spot-check missed the corruption")
	}
	failed := report.FailedChunks[addrs[0]]
	if len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("FailedChunks[%s] = %v, want [1]", addrs[0], failed)
	}
	if len(report.FailedChunks) != 1 {
		t.Errorf("honest peer flagged: %v", report.FailedChunks)
	}
	if report.Debits[fps[0]] == 0 {
		t.Error("corrupting peer was not debited")
	}
	if report.Debits[fps[1]] != 0 {
		t.Errorf("honest peer debited: %v", report.Debits)
	}
	if report.Stats.Failed != 1 || report.Stats.Passed != 5 {
		t.Errorf("stats = %+v", report.Stats)
	}

	// RepairFailed restores the batch without consulting the peer's
	// (lying) inventory; the next round is clean.
	n, err := sys.RepairFailed(ctx, &res.Handle, res.Secret, data, report)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("RepairFailed uploaded nothing")
	}
	report, err = sys.SpotCheck(ctx, &res.Handle, res.Secret, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !report.AllPassed() {
		t.Fatalf("still failing after repair: %+v", report.FailedChunks)
	}

	// A clean report makes RepairFailed a no-op.
	n, err = sys.RepairFailed(ctx, &res.Handle, res.Secret, data, report)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("no-op repair uploaded %d messages", n)
	}
}
