package core

// Keyed retention spot-checks over a share handle. The count-based
// Audit in repair.go trusts the peer's LIST answer — a peer that lied
// about its inventory, or kept garbage bytes under the right ids,
// would pass it while the data is gone. SpotCheck closes that gap with
// internal/audit's keyed challenges: each (peer, chunk) obligation is
// probed cryptographically, failures are debited, and RepairFailed
// force-re-disseminates exactly the batches that failed, ignoring
// whatever inventory the peer claims.

import (
	"context"
	"fmt"
	"math"
	"sort"

	"asymshare/internal/audit"
	"asymshare/internal/repair"
	"asymshare/internal/rlnc"
)

// spotBatchStride mirrors the encoder's per-peer message-id stride:
// batch rank r mints ids in [r·2^32, (r+1)·2^32), so a chunk's digest
// map partitions by id>>32 into per-peer obligations.
const spotBatchStride = uint64(1) << 32

// SpotCheckOptions tunes a spot-check round. The zero value uses the
// auditor defaults.
type SpotCheckOptions struct {
	// Sample is the number of messages probed per (peer, chunk).
	Sample int

	// PenaltyPerMessage overrides the ledger debit per failed message;
	// zero charges the serialized message size in bytes.
	PenaltyPerMessage float64

	// Seed makes sampling deterministic; zero seeds from time.
	Seed int64
}

// SpotCheckReport is the outcome of one spot-check round.
type SpotCheckReport struct {
	// Verdicts holds one entry per probed (peer, chunk) obligation, in
	// peer-major, chunk-minor order.
	Verdicts []audit.Verdict

	// FailedChunks maps peer address to the chunk indexes whose audit
	// did not pass there — the re-dissemination work list.
	FailedChunks map[string][]int

	// Debits maps peer ledger identity (key fingerprint) to the total
	// penalty assessed, ready for Client.SendAuditVerdicts.
	Debits map[string]uint64

	// Stats are the auditor's counters for this round.
	Stats audit.Stats
}

// AllPassed reports whether every obligation verified.
func (r *SpotCheckReport) AllPassed() bool { return len(r.FailedChunks) == 0 }

// digestsForRank returns the subset of a chunk's digests minted for
// batch rank r.
func digestsForRank(all map[uint64]rlnc.Digest, rank int) map[uint64]rlnc.Digest {
	out := make(map[uint64]rlnc.Digest)
	for id, d := range all {
		if id/spotBatchStride == uint64(rank) {
			out[id] = d
		}
	}
	return out
}

// SpotCheck runs one keyed spot-check round over every (peer, chunk)
// obligation in the handle, respecting ring placement. It contacts
// every peer even after failures — the point is a complete damage
// report, not a quick abort.
func (s *System) SpotCheck(ctx context.Context, h *Handle, secret []byte, opts SpotCheckOptions) (*SpotCheckReport, error) {
	if h == nil || len(h.Peers) == 0 {
		return nil, fmt.Errorf("%w: missing peers", ErrBadHandle)
	}
	a, err := audit.New(audit.Config{
		Prober:            s.client,
		Secret:            secret,
		SampleSize:        opts.Sample,
		PenaltyPerMessage: opts.PenaltyPerMessage,
		Seed:              opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	// Targets are added peer-major, chunk-minor; AuditOnce preserves
	// that order, so obligations[i] annotates Verdicts[i].
	type obligation struct {
		addr  string
		chunk int
	}
	var obligations []obligation
	for _, addr := range h.Peers {
		for i, info := range h.Manifest.Chunks {
			rank := h.batchRank(addr, i)
			if rank < 0 {
				continue
			}
			digests := digestsForRank(info.Digests, rank)
			if len(digests) == 0 {
				continue // shared before digests were recorded
			}
			params, err := info.Params(h.Manifest.Plan)
			if err != nil {
				return nil, err
			}
			err = a.Add(audit.Target{
				Addr:         addr,
				FileID:       info.FileID,
				Digests:      digests,
				MessageBytes: params.MessageBytes(),
			})
			if err != nil {
				return nil, err
			}
			obligations = append(obligations, obligation{addr: addr, chunk: i})
		}
	}

	report := &SpotCheckReport{
		Verdicts:     a.AuditOnce(ctx),
		FailedChunks: make(map[string][]int),
		Debits:       make(map[string]uint64),
	}
	for i, v := range report.Verdicts {
		ob := obligations[i]
		if v.Outcome != audit.Pass {
			report.FailedChunks[ob.addr] = append(report.FailedChunks[ob.addr], ob.chunk)
		}
		if v.Penalty > 0 && v.Peer != "" {
			report.Debits[v.Peer] += uint64(math.Round(v.Penalty))
		}
	}
	report.Stats = a.Stats()
	return report, nil
}

// ReportSpotCheck forwards the round's debits to the user's own peer,
// so audit failures lower the culprit's standing in the allocator that
// actually serves it (Eq. 2 uses the local ledger).
func (s *System) ReportSpotCheck(ctx context.Context, ownPeerAddr string, r *SpotCheckReport) error {
	if r == nil || len(r.Debits) == 0 {
		return nil
	}
	return s.client.SendAuditVerdicts(ctx, ownPeerAddr, r.Debits)
}

// RepairFailed regenerates and re-disseminates every batch that failed
// a spot-check, regardless of the inventory the peer claims. Unlike
// Repair, it never consults LIST: the cryptographic verdict already
// established the data is unusable there. The actual re-mint and
// upload go through internal/repair's engine — the same code path the
// proactive repair daemon uses — at the batches' original ranks, so no
// new digests are minted and the handle needs no re-persisting.
// Returns the number of messages re-uploaded.
func (s *System) RepairFailed(ctx context.Context, h *Handle, secret, data []byte, r *SpotCheckReport) (int, error) {
	if h == nil || len(h.Peers) == 0 {
		return 0, fmt.Errorf("%w: missing peers", ErrBadHandle)
	}
	if r == nil || r.AllPassed() {
		return 0, nil
	}
	if int64(len(data)) != h.Manifest.TotalSize {
		return 0, fmt.Errorf("%w: data is %d bytes, manifest says %d",
			ErrBadHandle, len(data), h.Manifest.TotalSize)
	}
	addrs := make([]string, 0, len(r.FailedChunks))
	for addr := range r.FailedChunks {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	var tasks []repair.Task
	for _, addr := range addrs {
		for _, i := range r.FailedChunks[addr] {
			if i < 0 || i >= len(h.Manifest.Chunks) {
				return 0, fmt.Errorf("%w: chunk index %d out of range", ErrBadHandle, i)
			}
			rank := h.batchRank(addr, i)
			if rank < 0 {
				continue // placement changed since the audit
			}
			tasks = append(tasks, repair.Task{Addr: addr, Chunk: i, Rank: rank})
		}
	}
	eng := &repair.Engine{Manifest: &h.Manifest, Secret: secret, Uploader: s.client}
	res, err := eng.Rebuild(ctx, data, tasks)
	if err != nil {
		return res.Messages, fmt.Errorf("core: repair after failed audit: %w", err)
	}
	return res.Messages, nil
}
