package core

// Contract negotiation and repair orchestration: the owner-side glue
// between a share handle (where batches were placed), the contract
// subsystem (explicit, capacity-checked storage obligations), and the
// proactive repair daemon. A share starts life as informal placements;
// NegotiateContracts upgrades each (peer, chunk) obligation into a
// signed-for contract recorded in a durable holdings set, and
// NewRepairDaemon builds the daemon that keeps those contracts — and
// the rank-margin watermark they imply — healthy without the owner in
// the loop.

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"time"

	"asymshare/internal/contract"
	"asymshare/internal/dht"
	"asymshare/internal/repair"
	"asymshare/internal/wire"
)

// NegotiateContracts proposes one storage contract per (peer, chunk)
// obligation in the handle and records each grant as a holding in set.
// Obligations already covered by a holding are skipped, so the call is
// idempotent and can resume after a crash (the set replays its
// journal). Returns the number of contracts newly accepted; a refusal
// or unreachable peer aborts with the partial count.
func (s *System) NegotiateContracts(ctx context.Context, h *Handle, set *contract.Set, ttl time.Duration) (int, error) {
	if h == nil || len(h.Peers) == 0 {
		return 0, fmt.Errorf("%w: missing peers", ErrBadHandle)
	}
	if set == nil {
		return 0, fmt.Errorf("%w: nil contract set", ErrBadHandle)
	}
	if ttl <= 0 {
		ttl = repair.DefaultTTL
	}
	accepted := 0
	for _, addr := range h.Peers {
		for i, info := range h.Manifest.Chunks {
			rank := h.batchRank(addr, i)
			if rank < 0 || set.Has(addr, i) {
				continue
			}
			messages := len(digestsForRank(info.Digests, rank))
			if messages == 0 {
				continue // shared before digests were recorded
			}
			params, err := info.Params(h.Manifest.Plan)
			if err != nil {
				return accepted, err
			}
			bytes := int64(messages) * int64(params.MessageBytes())
			id, err := newContractID()
			if err != nil {
				return accepted, err
			}
			ttlSecs := int64(ttl / time.Second)
			if ttlSecs < 1 {
				ttlSecs = 1
			}
			grant, fp, err := s.client.ProposeContract(ctx, addr, wire.ContractPropose{
				ContractID: id,
				FileID:     info.FileID,
				Messages:   uint32(messages),
				Bytes:      uint64(bytes),
				TTLSeconds: uint32(ttlSecs),
			})
			if err != nil {
				return accepted, fmt.Errorf("core: negotiate contract with %s: %w", addr, err)
			}
			err = set.Add(contract.Holding{
				ContractID: id,
				Addr:       addr,
				Peer:       fp,
				Chunk:      i,
				Rank:       rank,
				Messages:   messages,
				Bytes:      bytes,
				Expires:    time.Unix(grant.ExpiresUnix, 0),
			})
			if err != nil {
				return accepted, err
			}
			accepted++
		}
	}
	return accepted, nil
}

// NewRepairDaemon builds a proactive repair daemon over this system's
// client for the given share. The caller fills the policy knobs of cfg
// (Target, TTL, Interval, Peers, Persist, ...); the share plumbing —
// manifest, secret, data, holdings, client — is wired here so it
// cannot disagree with the handle.
func (s *System) NewRepairDaemon(h *Handle, secret, data []byte, set *contract.Set, cfg repair.Config) (*repair.Daemon, error) {
	if h == nil {
		return nil, fmt.Errorf("%w: nil handle", ErrBadHandle)
	}
	cfg.Manifest = &h.Manifest
	cfg.Secret = secret
	cfg.Data = data
	cfg.Contracts = set
	cfg.Client = s.client
	return repair.New(cfg)
}

// DHTPeerSource adapts a DHT node's routing table into the repair
// daemon's replacement-candidate source: up to n uniformly random
// contacts that advertise a serving address. Because node ids are
// address hashes, the sample is near-uniform over the live swarm —
// the discovery liveness signal the daemon leans on (a contact still
// in the table answered an RPC recently; the keyed probe then
// verifies it for real before any batch is placed).
func DHTPeerSource(node *dht.Node) repair.PeerSource {
	return func(_ context.Context, n int) []string {
		var addrs []string
		for _, c := range node.RandomContacts(n) {
			if c.Serve != "" {
				addrs = append(addrs, c.Serve)
			}
		}
		return addrs
	}
}

// newContractID draws a random non-zero contract id.
func newContractID() (uint64, error) {
	var buf [8]byte
	for {
		if _, err := rand.Read(buf[:]); err != nil {
			return 0, fmt.Errorf("core: contract id: %w", err)
		}
		if id := binary.BigEndian.Uint64(buf[:]); id != 0 {
			return id, nil
		}
	}
}
