package core_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"asymshare/internal/chunk"
	"asymshare/internal/core"
)

func TestUpdateFilePropagatesEdit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	oldData := make([]byte, 3000) // 3 chunks under smallPlan (1024)
	rng.Read(oldData)

	sys, err := core.NewSystem(identity(t, 100), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for i := byte(0); i < 2; i++ {
		addrs = append(addrs, startPeer(t, 101+i).Addr().String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := sys.ShareFile(ctx, "doc.txt", oldData, addrs)
	if err != nil {
		t.Fatal(err)
	}

	// Edit bytes inside chunk 1 only.
	newData := bytes.Clone(oldData)
	copy(newData[1500:1550], bytes.Repeat([]byte{0xAB}, 50))

	upd, err := sys.UpdateFile(ctx, &res.Handle, res.Secret, oldData, newData)
	if err != nil {
		t.Fatal(err)
	}
	if len(upd.ChangedChunks) != 1 || upd.ChangedChunks[0] != 1 {
		t.Fatalf("ChangedChunks = %v, want [1]", upd.ChangedChunks)
	}
	if upd.MessagesPatched == 0 || upd.BytesSent == 0 {
		t.Errorf("update stats: %+v", upd)
	}
	// Delta traffic covers only the changed chunk.
	if upd.BytesSent >= res.BytesSent {
		t.Errorf("delta bytes %d not smaller than full share %d", upd.BytesSent, res.BytesSent)
	}

	got, stats, err := sys.FetchFile(ctx, &res.Handle, res.Secret)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Fatal("fetch after update is not the new version")
	}
	if stats.Rejected != 0 {
		t.Errorf("rejected = %d; refreshed digests should verify", stats.Rejected)
	}
}

func TestUpdateFileNoChange(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := make([]byte, 900)
	rng.Read(data)
	sys, err := core.NewSystem(identity(t, 110), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}
	addr := startPeer(t, 111).Addr().String()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := sys.ShareFile(ctx, "same.txt", data, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	upd, err := sys.UpdateFile(ctx, &res.Handle, res.Secret, data, bytes.Clone(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(upd.ChangedChunks) != 0 || upd.MessagesPatched != 0 || upd.BytesSent != 0 {
		t.Errorf("no-op update did work: %+v", upd)
	}
}

func TestUpdateFileValidation(t *testing.T) {
	sys, err := core.NewSystem(identity(t, 112), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sys.UpdateFile(ctx, nil, nil, nil, nil); !errors.Is(err, core.ErrBadHandle) {
		t.Errorf("nil handle error = %v", err)
	}
	h := &core.Handle{Peers: []string{"x"}}
	h.Manifest.TotalSize = 10
	if _, err := sys.UpdateFile(ctx, h, nil, make([]byte, 5), make([]byte, 5)); !errors.Is(err, core.ErrBadHandle) {
		t.Errorf("size mismatch error = %v", err)
	}
	if _, err := sys.UpdateFile(ctx, h, nil, make([]byte, 10), make([]byte, 11)); !errors.Is(err, chunk.ErrSizeChanged) {
		t.Errorf("resize error = %v", err)
	}
}

func TestChangedChunks(t *testing.T) {
	oldData := make([]byte, 2500)
	newData := bytes.Clone(oldData)
	newData[0] ^= 1    // chunk 0
	newData[2400] ^= 1 // chunk 2
	got, err := chunk.ChangedChunks(oldData, newData, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("ChangedChunks = %v", got)
	}
	if _, err := chunk.ChangedChunks(oldData, newData[:10], 1024); !errors.Is(err, chunk.ErrSizeChanged) {
		t.Errorf("resize error = %v", err)
	}
	if _, err := chunk.ChangedChunks(oldData, newData, 0); err == nil {
		t.Error("zero chunk size accepted")
	}
	same, err := chunk.ChangedChunks(oldData, oldData, 512)
	if err != nil || len(same) != 0 {
		t.Errorf("identical ChangedChunks = %v, %v", same, err)
	}
}
