package core

// DHT integration: the decentralized alternative to the tracker. The
// user runs (or borrows) a dht.Node; announcements replicate on the K
// nodes closest to each chunk's key, and any node can resolve them.

import (
	"context"
	"fmt"
	"time"

	"asymshare/internal/chunk"
	"asymshare/internal/client"
	"asymshare/internal/dht"
)

// AnnounceHandleDHT publishes every (chunk key -> peer address) pair of
// a handle through the DHT, honoring per-chunk placement.
func (s *System) AnnounceHandleDHT(ctx context.Context, node *dht.Node, h *Handle, ttl time.Duration) error {
	if h == nil || len(h.Peers) == 0 {
		return fmt.Errorf("%w: missing peers", ErrBadHandle)
	}
	for i, info := range h.Manifest.Chunks {
		key := dht.KeyFromFileID(info.FileID)
		for _, addr := range h.PeersForChunk(i) {
			if err := node.Announce(ctx, key, addr, ttl); err != nil {
				return fmt.Errorf("core: dht announce chunk %d: %w", info.FileID, err)
			}
		}
	}
	return nil
}

// FetchFileViaDHT retrieves a file resolving each chunk's peers through
// the DHT — no tracker, no pre-shared peer list.
func (s *System) FetchFileViaDHT(ctx context.Context, node *dht.Node,
	m *chunk.Manifest, secret []byte) ([]byte, client.FetchStats, error) {
	total := client.FetchStats{BytesFrom: make(map[string]uint64)}
	if err := m.Validate(); err != nil {
		return nil, total, err
	}
	pieces := make([][]byte, len(m.Chunks))
	for i, info := range m.Chunks {
		addrs, err := node.Lookup(ctx, dht.KeyFromFileID(info.FileID))
		if err != nil {
			return nil, total, fmt.Errorf("core: dht resolve chunk %d: %w", i, err)
		}
		params, err := info.Params(m.Plan)
		if err != nil {
			return nil, total, err
		}
		data, stats, err := s.client.FetchGeneration(ctx, addrs, params, info.FileID, secret, info.Digests)
		if err != nil {
			return nil, total, fmt.Errorf("core: chunk %d: %w", i, err)
		}
		pieces[i] = data
		total.Messages += stats.Messages
		total.Innovative += stats.Innovative
		total.Rejected += stats.Rejected
		total.Elapsed += stats.Elapsed
		for k, v := range stats.BytesFrom {
			total.BytesFrom[k] += v
		}
	}
	data, err := chunk.Assemble(m, pieces)
	if err != nil {
		return nil, total, err
	}
	return data, total, nil
}
