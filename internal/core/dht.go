package core

// DHT integration: the decentralized alternative to the tracker,
// expressed through the Discovery seam in via.go. The user runs (or
// borrows) a dht.Node; announcements replicate on the K nodes closest
// to each chunk's key, and any node can resolve them.

import (
	"context"
	"fmt"
	"time"

	"asymshare/internal/chunk"
	"asymshare/internal/client"
	"asymshare/internal/dht"
	"asymshare/internal/discovery"
)

// AnnounceHandleDHT publishes every (chunk key -> peer address) pair of
// a handle through the DHT, honoring per-chunk placement. The caller
// keeps ownership of node; records are announced once (no TTL refresh —
// wrap the node in discovery.NewDHT for that).
func (s *System) AnnounceHandleDHT(ctx context.Context, node *dht.Node, h *Handle, ttl time.Duration) error {
	if h == nil || len(h.Peers) == 0 {
		return fmt.Errorf("%w: missing peers", ErrBadHandle)
	}
	d, err := discovery.NewDHT(node, discovery.DHTOptions{ReannounceInterval: -1})
	if err != nil {
		return err
	}
	defer d.Close()
	return s.AnnounceHandleVia(ctx, d, h, ttl)
}

// FetchFileViaDHT retrieves a file resolving each chunk's peers through
// the DHT — no tracker, no pre-shared peer list.
func (s *System) FetchFileViaDHT(ctx context.Context, node *dht.Node,
	m *chunk.Manifest, secret []byte) ([]byte, client.FetchStats, error) {
	d, err := discovery.NewDHT(node, discovery.DHTOptions{ReannounceInterval: -1})
	if err != nil {
		return nil, client.FetchStats{BytesFrom: make(map[string]uint64)}, err
	}
	defer d.Close()
	return s.FetchFileVia(ctx, d, m, secret)
}
