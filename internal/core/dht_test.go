package core_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"asymshare/internal/chunk"
	"asymshare/internal/core"
	"asymshare/internal/dht"
)

func startDHTNode(t *testing.T) *dht.Node {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n, err := dht.NewNode(ln.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.StartListener(ln); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func TestAnnounceAndFetchViaDHT(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	data := make([]byte, 2500)
	rng.Read(data)

	// A small DHT: 5 nodes joined through the first.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dhtNodes := make([]*dht.Node, 5)
	for i := range dhtNodes {
		dhtNodes[i] = startDHTNode(t)
	}
	for i := 1; i < len(dhtNodes); i++ {
		if err := dhtNodes[i].Join(ctx, dhtNodes[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}

	// Storage peers and the share.
	owner, err := core.NewSystem(identity(t, 160), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for i := byte(0); i < 2; i++ {
		addrs = append(addrs, startPeer(t, 161+i).Addr().String())
	}
	res, err := owner.ShareFile(ctx, "dht.bin", data, addrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.AnnounceHandleDHT(ctx, dhtNodes[1], &res.Handle, 0); err != nil {
		t.Fatal(err)
	}

	// A remote user on a different DHT node resolves and fetches with
	// only manifest + secret.
	remote, err := core.NewSystem(identity(t, 165), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := remote.FetchFileViaDHT(ctx, dhtNodes[4], &res.Handle.Manifest, res.Secret)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("DHT-resolved fetch mismatch")
	}
	if stats.Innovative == 0 {
		t.Error("stats empty")
	}
}

func TestFetchViaDHTUnknown(t *testing.T) {
	node := startDHTNode(t)
	sys, err := core.NewSystem(identity(t, 170), nil, core.WithPlan(smallPlan()))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	secret := bytes.Repeat([]byte{8}, 32)
	share, err := buildUnsharedManifest(secret)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = sys.FetchFileViaDHT(ctx, node, share, secret)
	if !errors.Is(err, dht.ErrNotFound) {
		t.Errorf("unknown key fetch error = %v, want ErrNotFound", err)
	}
}

func TestAnnounceHandleDHTValidation(t *testing.T) {
	sys, err := core.NewSystem(identity(t, 171), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AnnounceHandleDHT(context.Background(), nil, nil, 0); !errors.Is(err, core.ErrBadHandle) {
		t.Errorf("nil handle error = %v", err)
	}
}

// buildUnsharedManifest creates a valid manifest whose chunks were
// never announced anywhere.
func buildUnsharedManifest(secret []byte) (*chunk.Manifest, error) {
	share, err := chunk.BuildShare("ghost", make([]byte, 400), smallPlan(), 4242, secret)
	if err != nil {
		return nil, err
	}
	return &share.Manifest, nil
}
