package metrics

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
)

// FuzzHistogramObserve drives a histogram with arbitrary values from
// concurrent writers while a scraper snapshots and serializes it,
// then verifies no observation was lost: count == Σ buckets and
// sum == Σ values, regardless of input.
func FuzzHistogramObserve(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1})
	f.Add(binary.BigEndian.AppendUint64(nil, ^uint64(0)))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		values := make([]uint64, 0, len(data)/8+1)
		for len(data) >= 8 {
			values = append(values, binary.BigEndian.Uint64(data))
			data = data[8:]
		}
		if len(data) > 0 {
			var tail [8]byte
			copy(tail[:], data)
			values = append(values, binary.BigEndian.Uint64(tail[:]))
		}

		r := NewRegistry()
		h := r.Histogram("fuzz_seconds", "", UnitSeconds)

		// Scraper runs concurrently with the writers: snapshotting and
		// serializing must never panic whatever the values are.
		stop := make(chan struct{})
		var scraper sync.WaitGroup
		scraper.Add(1)
		go func() {
			defer scraper.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()

		const writers = 4
		var wg sync.WaitGroup
		var want, wantSum uint64
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, v := range values {
					h.Observe(v)
				}
			}()
			want += uint64(len(values))
			for _, v := range values {
				wantSum += v
			}
		}
		wg.Wait()
		close(stop)
		scraper.Wait()

		s := h.snapshot()
		var got uint64
		for _, n := range s.Buckets {
			got += n
		}
		if s.Count != want || got != want {
			t.Fatalf("count = %d, bucket sum = %d, want %d", s.Count, got, want)
		}
		if s.Sum != wantSum {
			t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
		}
	})
}
