package metrics

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with every instrument kind and the
// label-escaping edge cases, deterministic enough to golden-test.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("wire_frames_sent_total", "Frames written, by frame type.", L("type", "DATA")).Add(42)
	r.Counter("wire_frames_sent_total", "Frames written, by frame type.", L("type", "PUT")).Add(7)
	r.Counter("escape_total", "Help with a backslash \\ and\nnewline.",
		L("path", `C:\tmp`), L("quote", `say "hi"`), L("nl", "a\nb")).Inc()
	r.Gauge("peer_connections_active", "Open authenticated connections.").Set(3)
	r.Rate("peer_served_bytes_rate", "EWMA of served bytes per second.", time.Second)
	h := r.Histogram("store_op_duration_seconds", "Store operation latency.", UnitSeconds, L("backend", "memory"), L("op", "get"))
	h.Observe(100)       // 100 ns → bucket 7 (le 127 ns)
	h.Observe(1000)      // 1 µs → bucket 10
	h.Observe(1000)      // again
	h.Observe(2_000_000) // 2 ms → bucket 21
	h.Observe(0)         // zero → bucket 0
	hb := r.Histogram("client_fetch_bytes", "Fetched generation sizes.", UnitBytes)
	hb.Observe(4096)
	// A labelled family with no series yet still exposes HELP/TYPE.
	r.Histogram("peer_realloc_duration_seconds", "Allocator recompute latency.", UnitSeconds, L("unused", "x"))
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`path="C:\\tmp"`,
		`quote="say \"hi\""`,
		`nl="a\nb"`,
		`# HELP escape_total Help with a backslash \\ and\nnewline.`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x_seconds", "", UnitSeconds)
	h.Observe(1) // bucket 1
	h.Observe(3) // bucket 2
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`x_seconds_bucket{le="+Inf"} 2`,
		"x_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Cumulative counts must be non-decreasing.
	var prev uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "x_seconds_bucket") || strings.Contains(line, "+Inf") {
			continue
		}
		var cum uint64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &cum); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if cum < prev {
			t.Fatalf("cumulative bucket decreased: %q", line)
		}
		prev = cum
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("http_test_total", "").Add(9)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "http_test_total 9") {
		t.Errorf("body missing counter:\n%s", body)
	}

	vars, err := http.Get("http://" + srv.Addr().String() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars.Body.Close()
	if vars.StatusCode != http.StatusOK {
		t.Errorf("/debug/vars status = %d", vars.StatusCode)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("ev_total", "").Inc()
	r.PublishExpvar("metrics_test_registry")
	// A second publish under the same name must not panic.
	r.PublishExpvar("metrics_test_registry")
}
