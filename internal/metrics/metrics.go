// Package metrics is the observability core of asymshare: a
// stdlib-only set of concurrency-safe instruments — monotonic Counter,
// float Gauge, EWMA Rate and log2-bucketed Histogram — behind a
// Registry with cheap label support, a consistent Snapshot API, and
// Prometheus text-format exposition (expose.go).
//
// The hot path (Counter.Inc, Gauge.Set, Rate.Mark, Histogram.Observe)
// is lock-free and allocation-free: a counter increment is one atomic
// add, a histogram observation is three. Scrapes never block writers.
// The paper's claims are quantitative — per-pair bandwidth convergence
// (Corollary 1), incentive lower bounds (Theorem 1), innovative-message
// overhead ≈ q/(q−1) — and these instruments are how the running system
// exposes those numbers instead of burying them in log lines.
//
// Every instrument method is safe on a nil receiver (a no-op), and
// every Registry constructor is safe on a nil registry (returns a nil
// instrument). Packages therefore instrument unconditionally and the
// whole layer vanishes when no registry is configured.
package metrics

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is
// ready to use; a nil *Counter discards all updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value. The zero value is ready to
// use; a nil *Gauge discards all updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta atomically (CAS loop; no locks, no allocations).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultRateHalfLife is the EWMA half-life used when a Rate is created
// with a zero half-life.
const DefaultRateHalfLife = 10 * time.Second

// minRateFold is the minimum elapsed time before pending events are
// folded into the EWMA, so back-to-back reads do not divide by ~zero.
const minRateFold = 10 * time.Millisecond

// Rate is an exponentially weighted moving average of events per
// second. Mark is the lock-free hot path (one atomic add); the decay
// fold happens on the read side under a mutex, so writers never
// contend with scrapes. A nil *Rate discards all marks.
type Rate struct {
	pending atomic.Uint64

	mu   sync.Mutex
	ewma float64
	last time.Time
	tau  float64 // decay time constant in seconds
	now  func() time.Time
}

// NewRate returns a rate with the given half-life (zero means
// DefaultRateHalfLife).
func NewRate(halfLife time.Duration) *Rate {
	if halfLife <= 0 {
		halfLife = DefaultRateHalfLife
	}
	return &Rate{
		tau:  halfLife.Seconds() / math.Ln2,
		now:  time.Now,
		last: time.Now(),
	}
}

// Mark records n events.
func (r *Rate) Mark(n uint64) {
	if r == nil {
		return
	}
	r.pending.Add(n)
}

// Value folds pending events into the EWMA and returns the smoothed
// events-per-second rate.
func (r *Rate) Value() float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	elapsed := now.Sub(r.last).Seconds()
	if elapsed < minRateFold.Seconds() {
		return r.ewma
	}
	inst := float64(r.pending.Swap(0)) / elapsed
	alpha := 1 - math.Exp(-elapsed/r.tau)
	r.ewma += alpha * (inst - r.ewma)
	r.last = now
	return r.ewma
}

// Unit tells the exposition layer how to scale a histogram's raw
// observations.
type Unit uint8

// Histogram units.
const (
	// UnitNone leaves observations unscaled.
	UnitNone Unit = iota

	// UnitSeconds means observations are nanoseconds, exposed as
	// seconds.
	UnitSeconds

	// UnitBytes means observations are bytes.
	UnitBytes
)

// divisor converts raw observations to the exposed unit.
func (u Unit) divisor() float64 {
	if u == UnitSeconds {
		return 1e9
	}
	return 1
}

// histBuckets is the number of log2 buckets: bucket i counts values v
// with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i (bucket 0 holds
// exactly zero).
const histBuckets = 65

// Histogram counts observations in log2 buckets. Observe is lock-free
// and allocation-free: one bits.Len64 and three atomic adds. Snapshots
// taken while writers run may be momentarily torn between count, sum
// and buckets (each is individually atomic); once writers quiesce the
// invariant count == Σ buckets holds exactly — no observation is ever
// lost. A nil *Histogram discards all observations.
type Histogram struct {
	unit    Unit
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// NewHistogram returns a histogram for the given unit.
func NewHistogram(unit Unit) *Histogram {
	return &Histogram{unit: unit}
}

// Observe records one raw observation (nanoseconds for UnitSeconds,
// bytes for UnitBytes).
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// ObserveDuration records a duration on a UnitSeconds histogram.
// Negative durations count as zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d.Nanoseconds()))
}

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.ObserveDuration(time.Since(start))
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Unit    Unit
	Count   uint64
	Sum     uint64 // raw units (ns for UnitSeconds)
	Buckets [histBuckets]uint64
}

// SumScaled returns the sum in the exposed unit (seconds/bytes).
func (s *HistogramSnapshot) SumScaled() float64 {
	return float64(s.Sum) / s.Unit.divisor()
}

// Mean returns the mean observation in the exposed unit, or 0 with no
// observations.
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumScaled() / float64(s.Count)
}

// snapshot copies the histogram counters.
func (h *Histogram) snapshot() *HistogramSnapshot {
	if h == nil {
		return &HistogramSnapshot{}
	}
	out := &HistogramSnapshot{Unit: h.unit, Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		out.Buckets[i] = h.buckets[i].Load()
	}
	return out
}

// bucketUpper returns the inclusive upper bound of bucket i in raw
// units: values in bucket i satisfy v <= 2^i - 1 (bucket 0 holds only
// zero).
func bucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}
