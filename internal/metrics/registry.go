package metrics

// Registry: named families of instruments with label support. Metric
// names and label sets form the exposed contract (see DESIGN.md §7);
// constructors are idempotent — asking for the same (name, labels)
// twice returns the same instrument — so independently initialized
// components can share one registry without coordination.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind classifies an instrument family.
type Kind uint8

// Instrument kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
	KindRate
)

// PromType returns the Prometheus metric type for the kind (rates are
// exposed as gauges).
func (k Kind) PromType() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// Label is one name/value pair attached to a series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Registry holds instrument families. The zero value is not usable;
// use NewRegistry. A nil *Registry is a valid no-op: every constructor
// returns a nil instrument and Snapshot returns an empty snapshot.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

type family struct {
	name     string
	help     string
	kind     Kind
	unit     Unit
	halfLife time.Duration

	mu     sync.RWMutex
	series map[string]*series
}

type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	rate    *Rate
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns (creating if needed) the counter with the given name
// and labels. Panics if the name is already registered as a different
// kind.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.seriesFor(name, help, KindCounter, UnitNone, 0, labels)
	if s == nil {
		return nil
	}
	return s.counter
}

// Gauge returns (creating if needed) the gauge with the given name and
// labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.seriesFor(name, help, KindGauge, UnitNone, 0, labels)
	if s == nil {
		return nil
	}
	return s.gauge
}

// Histogram returns (creating if needed) the histogram with the given
// name, unit and labels.
func (r *Registry) Histogram(name, help string, unit Unit, labels ...Label) *Histogram {
	s := r.seriesFor(name, help, KindHistogram, unit, 0, labels)
	if s == nil {
		return nil
	}
	return s.hist
}

// Rate returns (creating if needed) the EWMA rate with the given name
// and labels. halfLife zero means DefaultRateHalfLife.
func (r *Registry) Rate(name, help string, halfLife time.Duration, labels ...Label) *Rate {
	s := r.seriesFor(name, help, KindRate, UnitNone, halfLife, labels)
	if s == nil {
		return nil
	}
	return s.rate
}

// seriesFor is the shared get-or-create path. Instruments are expected
// to be fetched once and cached by callers; this path takes locks and
// may allocate, the instruments it returns do not.
func (r *Registry) seriesFor(name, help string, kind Kind, unit Unit, halfLife time.Duration, labels []Label) *series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, unit: unit,
			halfLife: halfLife, series: make(map[string]*series)}
		r.families[name] = f
	}
	r.mu.Unlock()
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s",
			name, f.kind.PromType(), kind.PromType()))
	}

	key := labelKey(labels)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s = &series{labels: sortedLabels(labels)}
	switch kind {
	case KindCounter:
		s.counter = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		s.hist = NewHistogram(f.unit)
	case KindRate:
		s.rate = NewRate(f.halfLife)
	}
	f.series[key] = s
	return s
}

// sortedLabels returns a copy of labels sorted by name.
func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// labelKey canonicalizes a label set into a map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := sortedLabels(labels)
	var b strings.Builder
	for _, l := range sorted {
		b.WriteString(l.Name)
		b.WriteByte(0x1f)
		b.WriteString(l.Value)
		b.WriteByte(0x1e)
	}
	return b.String()
}

// Snapshot is a point-in-time copy of every series in a registry,
// ordered deterministically (families by name, series by label key).
type Snapshot struct {
	Families []FamilySnapshot
}

// FamilySnapshot is one metric family.
type FamilySnapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Unit   Unit
	Series []SeriesSnapshot
}

// SeriesSnapshot is one labelled series. Value holds the scalar for
// counters, gauges and rates; Hist is non-nil for histograms.
type SeriesSnapshot struct {
	Labels []Label
	Value  float64
	Hist   *HistogramSnapshot
}

// Snapshot copies the registry. It is safe to call concurrently with
// writers; scalar reads are atomic per instrument.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind, Unit: f.unit}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := SeriesSnapshot{Labels: s.labels}
			switch f.kind {
			case KindCounter:
				ss.Value = float64(s.counter.Value())
			case KindGauge:
				ss.Value = s.gauge.Value()
			case KindRate:
				ss.Value = s.rate.Value()
			case KindHistogram:
				ss.Hist = s.hist.snapshot()
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.RUnlock()
		out.Families = append(out.Families, fs)
	}
	return out
}

// Find returns the snapshot of one family by name, or false.
func (s Snapshot) Find(name string) (FamilySnapshot, bool) {
	for _, f := range s.Families {
		if f.Name == name {
			return f, true
		}
	}
	return FamilySnapshot{}, false
}

// Get returns the label value for a name, or "".
func Get(labels []Label, name string) string {
	for _, l := range labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}
