package metrics

import (
	"io"
	"testing"
	"time"
)

// The benchmarks guard the hot-path contract: 0 allocs/op for every
// instrument update (asserted hard in TestHotPathAllocFree; reported
// here so regressions show up in numbers too).

func BenchmarkCounterParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "", L("k", "v"))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if b.Elapsed() > 0 && c.Value() == 0 {
		b.Fatal("counter never advanced")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(UnitSeconds)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) * 1021)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram(UnitBytes)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := uint64(1)
		for pb.Next() {
			v = v*6364136223846793005 + 1
			h.Observe(v >> 40)
		}
	})
}

func BenchmarkGaugeSet(b *testing.B) {
	var g Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkRateMark(b *testing.B) {
	r := NewRate(time.Second)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Mark(1)
		}
	})
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := goldenRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
