package metrics

// Exposition: Prometheus text format (version 0.0.4), an opt-in
// net/http listener, and expvar publication. The text format is a
// contract: golden-tested in expose_test.go.

import (
	"bufio"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
)

// escapeHelp escapes a HELP line per the text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the text format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// writeLabels writes {a="b",c="d"} including an extra trailing label
// (used for histogram le), or nothing if there are no labels.
func writeLabels(w *bufio.Writer, labels []Label, extraName, extraValue string) {
	if len(labels) == 0 && extraName == "" {
		return
	}
	w.WriteByte('{')
	first := true
	for _, l := range labels {
		if !first {
			w.WriteByte(',')
		}
		first = false
		fmt.Fprintf(w, `%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	if extraName != "" {
		if !first {
			w.WriteByte(',')
		}
		fmt.Fprintf(w, `%s="%s"`, extraName, extraValue)
	}
	w.WriteByte('}')
}

// WritePrometheus writes the registry contents in Prometheus text
// format. Families appear sorted by name; a family with no series yet
// still contributes its HELP and TYPE lines, so the full metric
// contract is visible from the first scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	snap := r.Snapshot()
	for _, f := range snap.Families {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Kind.PromType())
		for _, s := range f.Series {
			switch f.Kind {
			case KindCounter:
				bw.WriteString(f.Name)
				writeLabels(bw, s.Labels, "", "")
				fmt.Fprintf(bw, " %d\n", uint64(s.Value))
			case KindGauge, KindRate:
				bw.WriteString(f.Name)
				writeLabels(bw, s.Labels, "", "")
				fmt.Fprintf(bw, " %g\n", s.Value)
			case KindHistogram:
				writeHistogram(bw, f.Name, s)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram emits cumulative _bucket lines, _sum and _count. Only
// buckets up to the highest populated one are emitted (plus +Inf), so
// idle histograms stay compact.
func writeHistogram(w *bufio.Writer, name string, s SeriesSnapshot) {
	h := s.Hist
	div := h.Unit.divisor()
	highest := -1
	for i := histBuckets - 1; i >= 0; i-- {
		if h.Buckets[i] > 0 {
			highest = i
			break
		}
	}
	var cum uint64
	for i := 0; i <= highest; i++ {
		cum += h.Buckets[i]
		w.WriteString(name)
		w.WriteString("_bucket")
		writeLabels(w, s.Labels, "le", fmt.Sprintf("%g", float64(bucketUpper(i))/div))
		fmt.Fprintf(w, " %d\n", cum)
	}
	w.WriteString(name)
	w.WriteString("_bucket")
	writeLabels(w, s.Labels, "le", "+Inf")
	fmt.Fprintf(w, " %d\n", h.Count)
	w.WriteString(name)
	w.WriteString("_sum")
	writeLabels(w, s.Labels, "", "")
	fmt.Fprintf(w, " %g\n", h.SumScaled())
	w.WriteString(name)
	w.WriteString("_count")
	writeLabels(w, s.Labels, "", "")
	fmt.Fprintf(w, " %d\n", h.Count)
}

// Handler returns an http.Handler serving the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Server is a running metrics listener.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	once sync.Once
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close shuts the listener down.
func (s *Server) Close() error {
	var err error
	s.once.Do(func() { err = s.srv.Close() })
	return err
}

// Serve starts an HTTP listener exposing the registry at /metrics and
// the process expvar map at /debug/vars. It returns once the listener
// is bound; serving continues in the background until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	s := &Server{ln: ln, srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// PublishExpvar publishes the registry under the given expvar name as
// a JSON map of metric name (plus label suffix) to scalar value;
// histograms publish their count, sum and mean. Publishing the same
// name twice is a no-op (expvar forbids duplicates).
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		out := make(map[string]float64)
		for _, f := range r.Snapshot().Families {
			for _, s := range f.Series {
				key := f.Name
				if len(s.Labels) > 0 {
					parts := make([]string, 0, len(s.Labels))
					for _, l := range s.Labels {
						parts = append(parts, l.Name+"="+l.Value)
					}
					key += "{" + strings.Join(parts, ",") + "}"
				}
				if f.Kind == KindHistogram {
					out[key+".count"] = float64(s.Hist.Count)
					out[key+".sum"] = s.Hist.SumScaled()
					out[key+".mean"] = s.Hist.Mean()
				} else {
					out[key] = s.Value
				}
			}
		}
		return out
	}))
}
