package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	var g Gauge
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(workers*perWorker)/2; got != want {
		t.Fatalf("gauge = %g, want %g", got, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(UnitBytes)
	for _, v := range []uint64{0, 1, 2, 3, 4, 1023, 1024} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 0+1+2+3+4+1023+1024 {
		t.Fatalf("sum = %d", s.Sum)
	}
	// bucket index is bits.Len64(v): 0→0, 1→1, {2,3}→2, 4→3, 1023→10, 1024→11
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 10: 1, 11: 1}
	for i, n := range s.Buckets {
		if n != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, n, want[i])
		}
	}
}

func TestHistogramCountMatchesBuckets(t *testing.T) {
	h := NewHistogram(UnitSeconds)
	const workers, perWorker = 6, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			v := seed
			for i := 0; i < perWorker; i++ {
				v = v*6364136223846793005 + 1442695040888963407
				h.Observe(v >> 32)
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	s := h.snapshot()
	var sum uint64
	for _, n := range s.Buckets {
		sum += n
	}
	if s.Count != workers*perWorker || sum != s.Count {
		t.Fatalf("count = %d, bucket sum = %d, want %d", s.Count, sum, workers*perWorker)
	}
}

func TestRateEWMA(t *testing.T) {
	now := time.Unix(1000, 0)
	r := NewRate(time.Second)
	r.now = func() time.Time { return now }
	r.last = now

	r.Mark(1000)
	now = now.Add(time.Second)
	v1 := r.Value()
	if v1 <= 0 || v1 > 1000 {
		t.Fatalf("rate after 1s of 1000 ev/s = %g, want in (0, 1000]", v1)
	}
	// With no further events the rate must decay toward zero.
	now = now.Add(10 * time.Second)
	v2 := r.Value()
	if v2 >= v1 {
		t.Fatalf("rate did not decay: %g -> %g", v1, v2)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("k", "v"))
	b := r.Counter("x_total", "other help", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels returned different counters")
	}
	c := r.Counter("x_total", "help", L("k", "w"))
	if a == c {
		t.Fatal("different label values returned the same counter")
	}
	// Label order must not matter.
	h1 := r.Gauge("y", "", L("a", "1"), L("b", "2"))
	h2 := r.Gauge("y", "", L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatal("label order changed series identity")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("z_total", "")
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("a", "")
	g := reg.Gauge("b", "")
	h := reg.Histogram("c", "", UnitSeconds)
	rt := reg.Rate("d", "", 0)
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	h.Observe(3)
	h.ObserveDuration(time.Second)
	rt.Mark(4)
	if c.Value() != 0 || g.Value() != 0 || rt.Value() != 0 {
		t.Fatal("nil instruments returned non-zero values")
	}
	if n := len(reg.Snapshot().Families); n != 0 {
		t.Fatalf("nil registry snapshot has %d families", n)
	}
}

// TestHotPathAllocFree is the contract behind the ISSUE acceptance
// criterion: Counter.Inc and Histogram.Observe (and the other hot-path
// updates) must not allocate.
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_test_total", "", L("k", "v"))
	g := r.Gauge("alloc_test_gauge", "")
	h := r.Histogram("alloc_test_seconds", "", UnitSeconds)
	rt := r.Rate("alloc_test_rate", "", 0)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3.14)
		g.Add(1)
		h.Observe(12345)
		rt.Mark(2)
	}); n != 0 {
		t.Fatalf("hot path allocated %.1f allocs/op, want 0", n)
	}
}

// TestSnapshotWhileWrite scrapes continuously while writers hammer the
// instruments; under -race this is the concurrent scrape-while-write
// guarantee of the ISSUE.
func TestSnapshotWhileWrite(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("s_total", "")
	h := r.Histogram("s_seconds", "", UnitSeconds)
	g := r.Gauge("s_gauge", "")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(i)
				g.Set(float64(i))
				// New series churn while scraping.
				r.Counter("churn_total", "", L("i", "x")).Inc()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		snap := r.Snapshot()
		if _, ok := snap.Find("s_total"); !ok {
			t.Error("family disappeared mid-scrape")
			break
		}
	}
	close(stop)
	wg.Wait()
	snap := r.Snapshot()
	f, _ := snap.Find("s_seconds")
	hs := f.Series[0].Hist
	var sum uint64
	for _, n := range hs.Buckets {
		sum += n
	}
	if sum != hs.Count {
		t.Fatalf("after quiesce: bucket sum %d != count %d", sum, hs.Count)
	}
}
