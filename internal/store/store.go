// Package store implements a peer's local message storage (Fig. 3 of
// the paper). Each stored file is a sequence of "pre-fabricated"
// encoded messages — an 8-byte file-id, an 8-byte message-id and an
// m-symbol payload — that the peer forwards verbatim when a user
// requests them, so serving needs no computation and no access to the
// coding secret.
//
// Two backends are provided: an in-memory store used by the simulator
// and tests, and a directory-backed store that persists each generation
// as a `<file-id>.dat` file exactly in the Fig. 3 layout.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"asymshare/internal/rlnc"
)

var (
	// ErrUnknownFile is returned when a requested file-id has no
	// messages in the store.
	ErrUnknownFile = errors.New("store: unknown file id")

	// ErrCorrupt is returned when persisted data cannot be parsed.
	ErrCorrupt = errors.New("store: corrupt data file")
)

// Store is a peer's message repository. Implementations must be safe
// for concurrent use.
type Store interface {
	// Put stores a message. Storing the same (file-id, message-id)
	// twice overwrites the previous payload.
	Put(msg *rlnc.Message) error

	// Messages returns the stored messages for a file in message-id
	// order. The caller must not mutate the returned messages.
	Messages(fileID uint64) ([]*rlnc.Message, error)

	// Get returns one stored message as a copy safe to mutate, or
	// ErrUnknownFile if either identifier is absent.
	Get(fileID, messageID uint64) (*rlnc.Message, error)

	// Count returns the number of messages held for a file (0 if none).
	Count(fileID uint64) int

	// Files lists the stored file-ids in ascending order.
	Files() []uint64

	// Drop removes every message of a file.
	Drop(fileID uint64) error
}

// Memory is an in-memory Store.
type Memory struct {
	mu    sync.RWMutex
	files map[uint64]map[uint64]*rlnc.Message
}

var _ Store = (*Memory)(nil)

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{files: make(map[uint64]map[uint64]*rlnc.Message)}
}

// Put implements Store.
func (s *Memory) Put(msg *rlnc.Message) error {
	if msg == nil {
		return fmt.Errorf("store: nil message")
	}
	clone := msg.Clone()
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.files[msg.FileID]
	if !ok {
		m = make(map[uint64]*rlnc.Message)
		s.files[msg.FileID] = m
	}
	m[msg.MessageID] = clone
	return nil
}

// Messages implements Store.
func (s *Memory) Messages(fileID uint64) ([]*rlnc.Message, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.files[fileID]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownFile, fileID)
	}
	out := make([]*rlnc.Message, 0, len(m))
	for _, msg := range m {
		out = append(out, msg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MessageID < out[j].MessageID })
	return out, nil
}

// Get implements Store.
func (s *Memory) Get(fileID, messageID uint64) (*rlnc.Message, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.files[fileID]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownFile, fileID)
	}
	msg, ok := m[messageID]
	if !ok {
		return nil, fmt.Errorf("%w: %d message %d", ErrUnknownFile, fileID, messageID)
	}
	return msg.Clone(), nil
}

// Count implements Store.
func (s *Memory) Count(fileID uint64) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files[fileID])
}

// Files implements Store.
func (s *Memory) Files() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]uint64, 0, len(s.files))
	for id := range s.files {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Drop implements Store.
func (s *Memory) Drop(fileID uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.files, fileID)
	return nil
}

// TotalMessages returns the number of messages across all files.
func (s *Memory) TotalMessages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, m := range s.files {
		n += len(m)
	}
	return n
}
