package store

// Crash-recovery tests for the journaled disk backend. The table cases
// hand-craft specific damage (torn tails, bit flips, truncations) and
// assert the recovery policy: torn tails are cut, interior corruption
// is quarantined, and neither is fatal. The sweep tests run the store
// on fsx.ErrFS and inject a fault at every single filesystem operation
// of a Put workload, asserting the durability contract: every
// acknowledged Put survives, every surviving message is byte-identical
// to something that was written, and every failure is a clean error —
// never silent corruption.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"asymshare/internal/fsx"
	"asymshare/internal/metrics"
	"asymshare/internal/rlnc"
)

// journalBytes renders a complete journal file for crafting test cases.
func journalBytes(fileID uint64, msgs ...*rlnc.Message) []byte {
	buf := append([]byte(nil), encodeHeader(fileID)...)
	for _, m := range msgs {
		buf = append(buf, encodeRecord(m)...)
	}
	return buf
}

func TestJournalRecoveryTable(t *testing.T) {
	m1 := msg(0xAB, 1, 0x11, 0x12, 0x13)
	m2 := msg(0xAB, 2, 0x21, 0x22)
	m3 := msg(0xAB, 3, 0x31)
	full := journalBytes(0xAB, m1, m2, m3)
	rec3Start := len(full) - (recordHdrLen + len(m3.Payload))
	rec2Start := rec3Start - (recordHdrLen + len(m2.Payload))

	cases := []struct {
		name        string
		data        []byte
		wantIDs     []uint64 // message-ids recovered for file 0xAB
		truncated   int
		quarantined int
	}{
		{
			name:    "clean journal",
			data:    full,
			wantIDs: []uint64{1, 2, 3},
		},
		{
			name:      "torn mid-payload of last record",
			data:      full[:len(full)-1],
			wantIDs:   []uint64{1, 2},
			truncated: 1,
		},
		{
			name:      "torn inside last record header",
			data:      full[:rec3Start+5],
			wantIDs:   []uint64{1, 2},
			truncated: 1,
		},
		{
			name:      "torn right after a valid record",
			data:      append(append([]byte(nil), full...), 0xDE, 0xAD), // trailing garbage too short to frame
			wantIDs:   []uint64{1, 2, 3},
			truncated: 1,
		},
		{
			name:      "torn header",
			data:      full[:10],
			wantIDs:   nil,
			truncated: 1,
		},
		{
			name:    "empty file",
			data:    nil,
			wantIDs: nil,
		},
		{
			name: "bit flip in mid-file record payload",
			data: func() []byte {
				d := append([]byte(nil), full...)
				d[rec2Start+recordHdrLen] ^= 0x01
				return d
			}(),
			wantIDs:     []uint64{1},
			quarantined: 1,
		},
		{
			name: "bit flip in final record payload",
			data: func() []byte {
				d := append([]byte(nil), full...)
				d[len(d)-1] ^= 0x80
				return d
			}(),
			wantIDs:     []uint64{1, 2},
			quarantined: 1,
		},
		{
			name: "record file-id disagrees with header",
			data: func() []byte {
				alien := msg(0xCD, 9, 0x99)
				return append(append([]byte(nil), journalBytes(0xAB, m1)...), encodeRecord(alien)...)
			}(),
			wantIDs:     []uint64{1},
			quarantined: 1,
		},
		{
			name: "unknown journal version",
			data: func() []byte {
				d := append([]byte(nil), full...)
				d[7] = 9
				return d
			}(),
			wantIDs:     nil,
			quarantined: 1,
		},
		{
			name:        "legacy file with damaged tail keeps parsed prefix",
			data:        append(legacyBytes(m1, m2), 0, 0, 0, 9, 1, 2),
			wantIDs:     []uint64{1, 2},
			quarantined: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "ab.dat")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			d, err := OpenDisk(dir)
			if err != nil {
				t.Fatalf("recovery must absorb damage, got: %v", err)
			}
			var got []uint64
			if msgs, err := d.Messages(0xAB); err == nil {
				for _, m := range msgs {
					got = append(got, m.MessageID)
				}
			}
			if fmt.Sprint(got) != fmt.Sprint(tc.wantIDs) {
				t.Errorf("recovered ids = %v, want %v", got, tc.wantIDs)
			}
			stats := d.Recovery()
			if stats.TruncatedTails != tc.truncated {
				t.Errorf("TruncatedTails = %d, want %d", stats.TruncatedTails, tc.truncated)
			}
			if stats.QuarantinedFiles != tc.quarantined {
				t.Errorf("QuarantinedFiles = %d, want %d", stats.QuarantinedFiles, tc.quarantined)
			}
			if tc.quarantined > 0 {
				if _, err := os.Stat(path + ".corrupt"); err != nil {
					t.Errorf("quarantine file missing: %v", err)
				}
			}
			// Recovered payloads are intact, and the store reopens
			// cleanly now that the damage is repaired.
			for _, id := range tc.wantIDs {
				m, err := d.Get(0xAB, id)
				if err != nil {
					t.Fatalf("Get(%d): %v", id, err)
				}
				want := map[uint64][]byte{1: m1.Payload, 2: m2.Payload, 3: m3.Payload}[id]
				if !bytes.Equal(m.Payload, want) {
					t.Errorf("message %d payload = %x, want %x", id, m.Payload, want)
				}
			}
			again, err := OpenDisk(dir)
			if err != nil {
				t.Fatalf("second open: %v", err)
			}
			if r := again.Recovery(); r.TruncatedTails != 0 || r.QuarantinedFiles != 0 {
				t.Errorf("second open repaired again: %+v", r)
			}
		})
	}
}

// legacyBytes renders the pre-journal format: [4-byte len][Fig. 3
// record] concatenated.
func legacyBytes(msgs ...*rlnc.Message) []byte {
	var buf bytes.Buffer
	var lenBuf [4]byte
	for _, m := range msgs {
		lenBuf[0] = byte(len(m.Payload) >> 24)
		lenBuf[1] = byte(len(m.Payload) >> 16)
		lenBuf[2] = byte(len(m.Payload) >> 8)
		lenBuf[3] = byte(len(m.Payload))
		buf.Write(lenBuf[:])
		m.WriteTo(&buf)
	}
	return buf.Bytes()
}

func TestDiskMigratesLegacyFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "2a.dat")
	if err := os.WriteFile(path, legacyBytes(msg(0x2A, 1, 1, 2), msg(0x2A, 2, 3)), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.Recovery().MigratedLegacy != 1 {
		t.Errorf("MigratedLegacy = %d", d.Recovery().MigratedLegacy)
	}
	if got := d.Count(0x2A); got != 2 {
		t.Fatalf("Count = %d", got)
	}
	// The file is now a journal and appends keep working.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:4]) != journalMagic {
		t.Fatalf("file not migrated to journal format: %x", data[:4])
	}
	if err := d.Put(msg(0x2A, 3, 4)); err != nil {
		t.Fatal(err)
	}
	again, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := again.Count(0x2A); got != 3 {
		t.Errorf("Count after migrate+append+reopen = %d", got)
	}
	if again.Recovery().MigratedLegacy != 0 {
		t.Error("migration ran twice")
	}
}

func TestDiskCompaction(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	d, err := OpenDiskWith(dir, DiskOptions{CompactMinBytes: 1024, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 100)
	// Overwrite one message many times: the journal accumulates dead
	// records until compaction rewrites it near its live size.
	for i := 0; i < 100; i++ {
		p := append([]byte(nil), payload...)
		p[0] = byte(i)
		if err := d.Put(msg(0x77, 1, p...)); err != nil {
			t.Fatal(err)
		}
	}
	info, err := os.Stat(filepath.Join(dir, "77.dat"))
	if err != nil {
		t.Fatal(err)
	}
	// Without compaction the journal would be ~100 records (≈14 KiB);
	// with it, the size stays near the 1 KiB trigger threshold.
	if info.Size() > 2048 {
		t.Errorf("journal never compacted: size %d", info.Size())
	}
	compacted := false
	for _, fam := range reg.Snapshot().Families {
		if fam.Name == MetricCompactions {
			for _, s := range fam.Series {
				if s.Value > 0 {
					compacted = true
				}
			}
		}
	}
	if !compacted {
		t.Error("store_compactions_total never incremented")
	}
	// The compacted journal reopens with the latest payload.
	again, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := again.Get(0x77, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Payload[0] != 99 {
		t.Errorf("recovered payload[0] = %d, want 99", m.Payload[0])
	}
}

// crashWorkload is the Put sequence the sweep tests replay: two files,
// fresh writes and overwrites, enough to cross journal creation,
// appends and at least one compaction.
func crashWorkload() []*rlnc.Message {
	var out []*rlnc.Message
	for i := 0; i < 12; i++ {
		p := bytes.Repeat([]byte{byte(0xA0 + i)}, 40)
		out = append(out, msg(1, uint64(i%4), p...)) // overwrites ids 0-3
		out = append(out, msg(2, uint64(i), byte(i), 0xFF))
	}
	return out
}

// verifyRecovered opens the store after a fault and checks the
// durability contract. acked[i] reports whether work[i]'s Put returned
// success.
func verifyRecovered(t *testing.T, efs *fsx.ErrFS, dir string, work []*rlnc.Message, acked []bool, label string) {
	t.Helper()
	d, err := OpenDiskWith(dir, DiskOptions{FS: efs, CompactMinBytes: 512})
	if err != nil {
		t.Fatalf("%s: reopen after fault failed: %v", label, err)
	}
	// The last acked write per (file, message) must be recoverable — or
	// be superseded by a later (unacked but fully landed) write of the
	// same slot. Any recovered payload must be byte-identical to SOME
	// write of that slot at or after the last acked one.
	type slot struct{ fid, mid uint64 }
	lastAcked := make(map[slot]int)
	for i, ok := range acked {
		if ok {
			lastAcked[slot{work[i].FileID, work[i].MessageID}] = i
		}
	}
	for s, idx := range lastAcked {
		got, err := d.Get(s.fid, s.mid)
		if err != nil {
			t.Fatalf("%s: acked message (%d,%d) lost: %v", label, s.fid, s.mid, err)
		}
		valid := false
		for i := idx; i < len(work); i++ {
			w := work[i]
			if w.FileID == s.fid && w.MessageID == s.mid && bytes.Equal(got.Payload, w.Payload) {
				valid = true
				break
			}
		}
		if !valid {
			t.Fatalf("%s: message (%d,%d) recovered with corrupt payload %x", label, s.fid, s.mid, got.Payload)
		}
	}
	// Nothing in the store may be garbage: every present message must
	// match some write of its slot.
	for _, fid := range d.Files() {
		msgs, err := d.Messages(fid)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			valid := false
			for _, w := range work {
				if w.FileID == m.FileID && w.MessageID == m.MessageID && bytes.Equal(w.Payload, m.Payload) {
					valid = true
					break
				}
			}
			if !valid {
				t.Fatalf("%s: store holds fabricated message (%d,%d) %x", label, m.FileID, m.MessageID, m.Payload)
			}
		}
	}
	// A pure crash/error never looks like bit rot.
	if q := d.Recovery().QuarantinedFiles; q != 0 {
		t.Fatalf("%s: crash recovery quarantined %d files", label, q)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("%s: close: %v", label, err)
	}
}

// countWorkloadOps runs the workload on a clean ErrFS and returns the
// number of filesystem operations it performs.
func countWorkloadOps(t *testing.T, work []*rlnc.Message) int {
	t.Helper()
	efs := fsx.NewErrFS(1)
	d, err := OpenDiskWith("/store", DiskOptions{FS: efs, CompactMinBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range work {
		if err := d.Put(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	return efs.Ops()
}

func TestDiskCrashPointSweep(t *testing.T) {
	work := crashWorkload()
	total := countWorkloadOps(t, work)
	if total < len(work) {
		t.Fatalf("implausible op count %d", total)
	}
	for n := 1; n <= total; n++ {
		efs := fsx.NewErrFS(int64(n))
		efs.CrashAtOp(n)
		d, err := OpenDiskWith("/store", DiskOptions{FS: efs, CompactMinBytes: 512})
		acked := make([]bool, len(work))
		if err == nil {
			for i, m := range work {
				if err := d.Put(m); err != nil {
					break
				}
				acked[i] = true
			}
			d.Close()
		}
		if !efs.Crashed() {
			t.Fatalf("crash at op %d never fired (total ops %d)", n, total)
		}
		efs.Reboot()
		verifyRecovered(t, efs, "/store", work, acked, fmt.Sprintf("crash@%d", n))
	}
}

func TestDiskFaultInjectionSweep(t *testing.T) {
	work := crashWorkload()
	total := countWorkloadOps(t, work)
	faults := []struct {
		name string
		arm  func(e *fsx.ErrFS, n int)
		err  error
	}{
		{"eio", func(e *fsx.ErrFS, n int) { e.FailOp(n, fsx.ErrDiskIO) }, fsx.ErrDiskIO},
		{"enospc", func(e *fsx.ErrFS, n int) { e.FailOp(n, fsx.ErrNoSpace) }, fsx.ErrNoSpace},
		{"shortwrite", func(e *fsx.ErrFS, n int) { e.ShortWriteOp(n) }, io.ErrShortWrite},
	}
	for _, fault := range faults {
		t.Run(fault.name, func(t *testing.T) {
			for n := 1; n <= total; n++ {
				efs := fsx.NewErrFS(int64(n))
				fault.arm(efs, n)
				label := fmt.Sprintf("%s@%d", fault.name, n)
				d, err := OpenDiskWith("/store", DiskOptions{FS: efs, CompactMinBytes: 512})
				acked := make([]bool, len(work))
				if err != nil {
					// The injected fault hit MkdirAll/scan: must be the
					// typed error, and the sweep point is spent.
					if !errors.Is(err, fault.err) {
						t.Fatalf("%s: open failed with foreign error: %v", label, err)
					}
				} else {
					for i, m := range work {
						if err := d.Put(m); err != nil {
							if !errors.Is(err, fault.err) {
								t.Fatalf("%s: Put failed with foreign error: %v", label, err)
							}
							continue // later Puts must recover
						}
						acked[i] = true
					}
					if err := d.Close(); err != nil && !errors.Is(err, fault.err) {
						t.Fatalf("%s: close: %v", label, err)
					}
				}
				verifyRecovered(t, efs, "/store", work, acked, label)
			}
		})
	}
}
