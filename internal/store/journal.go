package store

// Journal framing for the disk backend. Each `<file-id>.dat` is an
// append-only journal in the spirit of log-structured storage
// (Rosenblum & Ousterhout): a 16-byte header followed by CRC-32C
// framed records, one per Put. Appending is O(record) instead of the
// previous O(file) rewrite, and recovery distinguishes the two ways a
// journal goes bad:
//
//   - a *torn tail* — the last record is incomplete or fails its CRC
//     and nothing follows it; exactly what a power cut mid-append
//     leaves behind. Recovery truncates the tail and keeps the prefix.
//   - *interior corruption* — a record that is fully present fails its
//     CRC, or the framing desynchronizes with valid data after it;
//     bit rot, not a crash. Recovery quarantines the file (renames it
//     to `<name>.corrupt`, preserving the evidence) and rewrites the
//     undamaged prefix as a fresh journal.
//
// Layout:
//
//	header:  "ASJ1" | uint32 version (=1) | uint64 file-id     (16 B)
//	record:  uint32 payloadLen | uint32 CRC-32C | uint64 file-id |
//	         uint64 message-id | payload                   (24+n B)
//
// The CRC (Castagnoli) covers everything in the record except itself:
// the length field, both identifiers and the payload. All integers are
// big-endian, matching the wire format.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"asymshare/internal/rlnc"
)

const (
	journalMagic   = "ASJ1"
	journalVersion = 1
	headerLen      = 16
	recordHdrLen   = 24
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errTornTail and errCorruptRecord classify journal read failures for
// the recovery policy; neither escapes the package.
var (
	errTornTail      = errors.New("store: torn journal tail")
	errCorruptRecord = errors.New("store: corrupt journal record")
)

// encodeHeader renders the 16-byte journal header.
func encodeHeader(fileID uint64) []byte {
	hdr := make([]byte, headerLen)
	copy(hdr, journalMagic)
	binary.BigEndian.PutUint32(hdr[4:], journalVersion)
	binary.BigEndian.PutUint64(hdr[8:], fileID)
	return hdr
}

// parseHeader validates a journal header and returns the embedded
// file-id.
func parseHeader(hdr []byte) (uint64, error) {
	if len(hdr) < headerLen || string(hdr[:4]) != journalMagic {
		return 0, fmt.Errorf("%w: bad journal magic", ErrCorrupt)
	}
	if v := binary.BigEndian.Uint32(hdr[4:]); v != journalVersion {
		return 0, fmt.Errorf("%w: journal version %d", ErrCorrupt, v)
	}
	return binary.BigEndian.Uint64(hdr[8:]), nil
}

// encodeRecord renders one framed record.
func encodeRecord(msg *rlnc.Message) []byte {
	buf := make([]byte, recordHdrLen+len(msg.Payload))
	binary.BigEndian.PutUint32(buf[0:], uint32(len(msg.Payload)))
	binary.BigEndian.PutUint64(buf[8:], msg.FileID)
	binary.BigEndian.PutUint64(buf[16:], msg.MessageID)
	copy(buf[recordHdrLen:], msg.Payload)
	binary.BigEndian.PutUint32(buf[4:], recordCRC(buf))
	return buf
}

// recordCRC computes the Castagnoli CRC over a framed record buffer,
// skipping the CRC field itself.
func recordCRC(buf []byte) uint32 {
	crc := crc32.Update(0, castagnoli, buf[0:4])
	return crc32.Update(crc, castagnoli, buf[8:])
}

// readRecord reads one record from r. remaining is the byte count left
// in the file, used to classify failures: a record that could not fit
// in the remaining bytes is a torn tail; a record fully present but
// failing validation is interior corruption.
func readRecord(r io.Reader, remaining int64) (*rlnc.Message, int64, error) {
	var hdr [recordHdrLen]byte
	if remaining < recordHdrLen {
		return nil, 0, errTornTail
	}
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, errTornTail
	}
	payloadLen := binary.BigEndian.Uint32(hdr[:4])
	recLen := int64(recordHdrLen) + int64(payloadLen)
	if payloadLen > maxRecordPayload {
		// A garbage length field: if the claimed record runs past EOF
		// the length itself was torn; if it would have fit, something
		// rotted in place.
		if recLen > remaining {
			return nil, 0, errTornTail
		}
		return nil, 0, fmt.Errorf("%w: record of %d bytes", errCorruptRecord, payloadLen)
	}
	if recLen > remaining {
		return nil, 0, errTornTail
	}
	buf := make([]byte, recLen)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[recordHdrLen:]); err != nil {
		return nil, 0, errTornTail
	}
	if got, want := recordCRC(buf), binary.BigEndian.Uint32(hdr[4:8]); got != want {
		return nil, 0, fmt.Errorf("%w: crc %08x != %08x", errCorruptRecord, got, want)
	}
	msg := &rlnc.Message{
		FileID:    binary.BigEndian.Uint64(hdr[8:16]),
		MessageID: binary.BigEndian.Uint64(hdr[16:24]),
		Payload:   buf[recordHdrLen:],
	}
	return msg, recLen, nil
}
