package store

import (
	"errors"
	"sync"
	"testing"

	"asymshare/internal/rlnc"
)

// The auditor samples stored messages (Get, Messages, Count) while the
// peer keeps accepting pre-dissemination batches (Put) and retiring
// files (Drop). These tests hammer every Store method from concurrent
// goroutines; run them with -race to check the backends' locking.

func hammerStore(t *testing.T, s Store) {
	t.Helper()
	const (
		files    = 4
		writers  = 4
		readers  = 4
		msgCount = 64
	)
	var wg sync.WaitGroup
	start := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < msgCount; i++ {
				msg := &rlnc.Message{
					FileID:    uint64(i % files),
					MessageID: uint64(w*msgCount + i),
					Payload:   []byte{byte(w), byte(i)},
				}
				if err := s.Put(msg); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				// Overwrite the same id to exercise replacement paths.
				msg.Payload = []byte{byte(i), byte(w)}
				if err := s.Put(msg); err != nil {
					t.Errorf("Put overwrite: %v", err)
					return
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for i := 0; i < msgCount; i++ {
				fileID := uint64(i % files)
				// All of these race with Put/Drop; unknown-file errors
				// are expected, data races are not.
				s.Count(fileID)
				s.Files()
				if msgs, err := s.Messages(fileID); err == nil {
					for _, m := range msgs {
						if m.FileID != fileID {
							t.Errorf("Messages(%d) returned file %d", fileID, m.FileID)
							return
						}
					}
				} else if !errors.Is(err, ErrUnknownFile) {
					t.Errorf("Messages: %v", err)
					return
				}
				got, err := s.Get(fileID, uint64(i))
				if err == nil {
					// The copy must be safe to mutate under -race.
					got.Payload = append(got.Payload, 0xff)
				} else if !errors.Is(err, ErrUnknownFile) {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(r)
	}

	// One goroutine keeps dropping a file the writers re-create.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < msgCount; i++ {
			if err := s.Drop(uint64(i % files)); err != nil {
				t.Errorf("Drop: %v", err)
				return
			}
		}
	}()

	close(start)
	wg.Wait()

	// The store must still be coherent afterwards.
	for _, fileID := range s.Files() {
		msgs, err := s.Messages(fileID)
		if err != nil {
			t.Fatalf("Messages(%d) after hammer: %v", fileID, err)
		}
		for _, m := range msgs {
			if m.FileID != fileID {
				t.Fatalf("file %d holds message of file %d", fileID, m.FileID)
			}
		}
		if got := s.Count(fileID); got != len(msgs) {
			t.Fatalf("Count(%d) = %d, Messages = %d", fileID, got, len(msgs))
		}
	}
}

func TestMemoryConcurrentAuditSampling(t *testing.T) {
	hammerStore(t, NewMemory())
}

func TestDiskConcurrentAuditSampling(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hammerStore(t, d)
}

// TestMemoryMessagesSnapshotVsDrop checks that a Messages result taken
// for audit sampling stays readable after the file is concurrently
// dropped — the auditor holds references, not live map entries.
func TestMemoryMessagesSnapshotVsDrop(t *testing.T) {
	s := NewMemory()
	for i := 0; i < 32; i++ {
		if err := s.Put(&rlnc.Message{FileID: 9, MessageID: uint64(i), Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := s.Messages(9)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Drop(9); err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 32 {
		t.Fatalf("snapshot lost messages: %d", len(msgs))
	}
	for i, m := range msgs {
		if m.MessageID != uint64(i) || len(m.Payload) != 1 {
			t.Fatalf("snapshot message %d corrupted after Drop: %+v", i, m)
		}
	}
	if s.Count(9) != 0 {
		t.Fatal("Drop did not clear the file")
	}
}
