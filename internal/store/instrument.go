package store

// Optional latency/error instrumentation for Store backends. The disk
// backend's write latency is part of the paper's "pre-fabricated
// messages" argument (Sec. III-A): serving is a verbatim read, so store
// latency bounds serve latency; the histograms make that measurable.

import (
	"time"

	"asymshare/internal/metrics"
	"asymshare/internal/rlnc"
)

// Exported store metric names (see DESIGN.md §7).
const (
	MetricOpDuration = "store_op_duration_seconds"
	MetricOpErrors   = "store_op_errors_total"
)

// Namer is implemented by backends that can identify themselves for
// the `backend` metric label.
type Namer interface {
	Backend() string
}

// Backend implements Namer.
func (s *Memory) Backend() string { return "memory" }

// Backend implements Namer.
func (d *Disk) Backend() string { return "disk" }

// instrumented decorates a Store with per-operation latency histograms
// and error counters labelled {backend, op}.
type instrumented struct {
	inner Store

	put, get, messages, drop     *metrics.Histogram
	putE, getE, messagesE, dropE *metrics.Counter
}

var _ Store = (*instrumented)(nil)

// Instrument wraps s with store_op_duration_seconds{backend,op} and
// store_op_errors_total{backend,op}. With a nil registry or nil store
// the input is returned unchanged. Backends not implementing Namer are
// labelled backend="unknown".
func Instrument(s Store, reg *metrics.Registry) Store {
	if s == nil || reg == nil {
		return s
	}
	backend := "unknown"
	if n, ok := s.(Namer); ok {
		backend = n.Backend()
	}
	hist := func(op string) *metrics.Histogram {
		return reg.Histogram(MetricOpDuration, "Store operation latency.", metrics.UnitSeconds,
			metrics.L("backend", backend), metrics.L("op", op))
	}
	errs := func(op string) *metrics.Counter {
		return reg.Counter(MetricOpErrors, "Store operations that returned an error.",
			metrics.L("backend", backend), metrics.L("op", op))
	}
	return &instrumented{
		inner: s,
		put:   hist("put"), get: hist("get"), messages: hist("messages"), drop: hist("drop"),
		putE: errs("put"), getE: errs("get"), messagesE: errs("messages"), dropE: errs("drop"),
	}
}

// Unwrap returns the underlying Store.
func (i *instrumented) Unwrap() Store { return i.inner }

// Put implements Store.
func (i *instrumented) Put(msg *rlnc.Message) error {
	start := time.Now()
	err := i.inner.Put(msg)
	i.put.ObserveSince(start)
	if err != nil {
		i.putE.Inc()
	}
	return err
}

// Messages implements Store.
func (i *instrumented) Messages(fileID uint64) ([]*rlnc.Message, error) {
	start := time.Now()
	out, err := i.inner.Messages(fileID)
	i.messages.ObserveSince(start)
	if err != nil {
		i.messagesE.Inc()
	}
	return out, err
}

// Get implements Store.
func (i *instrumented) Get(fileID, messageID uint64) (*rlnc.Message, error) {
	start := time.Now()
	out, err := i.inner.Get(fileID, messageID)
	i.get.ObserveSince(start)
	if err != nil {
		i.getE.Inc()
	}
	return out, err
}

// Count implements Store.
func (i *instrumented) Count(fileID uint64) int { return i.inner.Count(fileID) }

// Files implements Store.
func (i *instrumented) Files() []uint64 { return i.inner.Files() }

// Drop implements Store.
func (i *instrumented) Drop(fileID uint64) error {
	start := time.Now()
	err := i.inner.Drop(fileID)
	i.drop.ObserveSince(start)
	if err != nil {
		i.dropE.Inc()
	}
	return err
}
