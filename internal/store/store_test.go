package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"asymshare/internal/rlnc"
)

func msg(fileID, id uint64, payload ...byte) *rlnc.Message {
	return &rlnc.Message{FileID: fileID, MessageID: id, Payload: payload}
}

func testStoreBasics(t *testing.T, s Store) {
	t.Helper()
	if _, err := s.Messages(1); !errors.Is(err, ErrUnknownFile) {
		t.Errorf("empty store Messages error = %v", err)
	}
	if got := s.Count(1); got != 0 {
		t.Errorf("empty Count = %d", got)
	}
	if err := s.Put(msg(1, 2, 0xA, 0xB)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(msg(1, 1, 0xC)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(msg(9, 5, 0xD)); err != nil {
		t.Fatal(err)
	}
	msgs, err := s.Messages(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || msgs[0].MessageID != 1 || msgs[1].MessageID != 2 {
		t.Fatalf("Messages(1) = %v", msgs)
	}
	if got := s.Count(1); got != 2 {
		t.Errorf("Count(1) = %d", got)
	}
	files := s.Files()
	if len(files) != 2 || files[0] != 1 || files[1] != 9 {
		t.Errorf("Files() = %v", files)
	}
	// Overwrite same id.
	if err := s.Put(msg(1, 2, 0xFF)); err != nil {
		t.Fatal(err)
	}
	msgs, err = s.Messages(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || !bytes.Equal(msgs[1].Payload, []byte{0xFF}) {
		t.Errorf("overwrite failed: %v", msgs)
	}
	if err := s.Drop(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Messages(1); !errors.Is(err, ErrUnknownFile) {
		t.Errorf("after Drop error = %v", err)
	}
	if got := s.Count(9); got != 1 {
		t.Errorf("Count(9) after Drop(1) = %d", got)
	}
}

func TestMemoryBasics(t *testing.T) { testStoreBasics(t, NewMemory()) }

func TestDiskBasics(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStoreBasics(t, d)
}

func TestMemoryPutCopies(t *testing.T) {
	s := NewMemory()
	original := msg(1, 1, 7, 8)
	if err := s.Put(original); err != nil {
		t.Fatal(err)
	}
	original.Payload[0] = 0
	msgs, err := s.Messages(1)
	if err != nil {
		t.Fatal(err)
	}
	if msgs[0].Payload[0] != 7 {
		t.Error("Put did not copy the message payload")
	}
}

func TestMemoryPutNil(t *testing.T) {
	if err := NewMemory().Put(nil); err == nil {
		t.Error("nil message accepted")
	}
}

func TestMemoryTotalMessages(t *testing.T) {
	s := NewMemory()
	for i := uint64(0); i < 5; i++ {
		if err := s.Put(msg(i%2, i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.TotalMessages(); got != 5 {
		t.Errorf("TotalMessages = %d", got)
	}
}

func TestMemoryConcurrentAccess(t *testing.T) {
	s := NewMemory()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := s.Put(msg(uint64(g), uint64(i), byte(i))); err != nil {
					t.Error(err)
					return
				}
				s.Count(uint64(g))
				s.Files()
			}
		}(g)
	}
	wg.Wait()
	if got := s.TotalMessages(); got != 800 {
		t.Errorf("TotalMessages = %d, want 800", got)
	}
}

func TestDiskPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	batch := []*rlnc.Message{
		msg(0xABCD, 1, 1, 2, 3),
		msg(0xABCD, 2, 4, 5, 6),
		msg(0xEF01, 7, 9),
	}
	if err := d.PutBatch(batch); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := reopened.Messages(0xABCD)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || !bytes.Equal(msgs[0].Payload, []byte{1, 2, 3}) {
		t.Fatalf("reloaded messages: %v", msgs)
	}
	if got := reopened.Count(0xEF01); got != 1 {
		t.Errorf("Count(0xEF01) = %d", got)
	}
	files := reopened.Files()
	if len(files) != 2 {
		t.Errorf("Files = %v", files)
	}
}

func TestDiskDropRemovesFile(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(msg(0x10, 1, 1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "10.dat")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("data file missing: %v", err)
	}
	if err := d.Drop(0x10); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("data file still present after Drop: %v", err)
	}
	// Dropping twice is fine.
	if err := d.Drop(0x10); err != nil {
		t.Errorf("second Drop: %v", err)
	}
}

func TestDiskCorruptFile(t *testing.T) {
	// A corrupt data file must not brick the store: it is quarantined as
	// `<name>.corrupt` and the store opens without it.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ff.dat"), []byte{0, 0, 0, 9, 1, 2}, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatalf("corrupt file must quarantine, not fail open: %v", err)
	}
	if got := d.Files(); len(got) != 0 {
		t.Errorf("Files = %v, want empty", got)
	}
	if got := d.Recovery().QuarantinedFiles; got != 1 {
		t.Errorf("QuarantinedFiles = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "ff.dat.corrupt")); err != nil {
		t.Errorf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ff.dat")); !os.IsNotExist(err) {
		t.Errorf("original corrupt file still present: %v", err)
	}
}

func TestDiskIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.dat"), 0o755); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Files(); len(got) != 0 {
		t.Errorf("Files = %v, want empty", got)
	}
}

func TestGetMessage(t *testing.T) {
	for _, s := range []Store{NewMemory(), mustDisk(t)} {
		if _, err := s.Get(1, 1); !errors.Is(err, ErrUnknownFile) {
			t.Errorf("Get on empty store error = %v", err)
		}
		if err := s.Put(msg(1, 7, 0xAA, 0xBB)); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get(1, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Payload, []byte{0xAA, 0xBB}) {
			t.Fatalf("Get payload = %x", got.Payload)
		}
		// The returned message is a copy.
		got.Payload[0] = 0
		again, err := s.Get(1, 7)
		if err != nil {
			t.Fatal(err)
		}
		if again.Payload[0] != 0xAA {
			t.Error("Get returned aliased storage")
		}
		if _, err := s.Get(1, 8); !errors.Is(err, ErrUnknownFile) {
			t.Errorf("Get unknown message error = %v", err)
		}
	}
}

func mustDisk(t *testing.T) *Disk {
	t.Helper()
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskDir(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dir() != dir {
		t.Errorf("Dir = %q, want %q", d.Dir(), dir)
	}
}
