package store

// Directory-backed store. Each file-id is persisted as
// `<file-id-hex>.dat`, an append-only CRC-32C framed journal (see
// journal.go for the format). A Put appends one record and fsyncs —
// O(record), where the previous implementation rewrote the whole file —
// and the caller is only acknowledged after the record is durable.
// When overwrites accumulate enough dead bytes the journal is compacted
// through a temp-file → fsync → rename → dir-fsync sequence, so a crash
// at any point leaves either the old or the new journal intact.
//
// Startup recovery is forgiving in exactly the ways a crash demands:
// a torn tail (the one record a power cut can mangle) is truncated and
// the prefix kept; interior corruption quarantines the file as
// `<name>.corrupt` — preserved for inspection, never silently dropped,
// never fatal to the rest of the store — and re-journals the undamaged
// prefix. Files in the pre-journal format (no magic) are migrated on
// first open. All filesystem access goes through an fsx.FS so the
// recovery paths are exercised under deterministic fault injection.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"asymshare/internal/fsx"
	"asymshare/internal/metrics"
	"asymshare/internal/rlnc"
)

const maxRecordPayload = 64 << 20 // sanity bound when reading

// Disk recovery and maintenance metric names (see DESIGN.md §7).
const (
	MetricQuarantined = "store_quarantined_files_total"
	MetricTruncated   = "store_truncated_tails_total"
	MetricCompactions = "store_compactions_total"
)

// Compaction defaults: rewrite a journal once it exceeds both 1 MiB and
// twice its live content.
const (
	defaultCompactMinBytes = 1 << 20
	defaultCompactFactor   = 2.0
)

// DiskOptions configures OpenDiskWith. The zero value is valid: the
// real filesystem, no metrics, default compaction thresholds.
type DiskOptions struct {
	// FS is the filesystem seam; nil means fsx.OS.
	FS fsx.FS

	// Metrics receives recovery and compaction counters; nil disables.
	Metrics *metrics.Registry

	// CompactMinBytes is the journal size below which compaction never
	// runs (default 1 MiB). CompactFactor is the size/live ratio above
	// which it does (default 2.0).
	CompactMinBytes int64
	CompactFactor   float64
}

// RecoveryStats describes what startup recovery had to repair.
type RecoveryStats struct {
	// TruncatedTails counts journals whose final, torn record was cut.
	TruncatedTails int

	// QuarantinedFiles counts data files renamed to `<name>.corrupt`
	// because of interior corruption; their undamaged prefix was kept.
	QuarantinedFiles int

	// MigratedLegacy counts pre-journal files rewritten into the
	// journal format.
	MigratedLegacy int
}

// journalState tracks one open journal.
type journalState struct {
	path    string
	f       fsx.File         // append handle, opened lazily
	size    int64            // bytes on disk
	live    int64            // header + live records
	recLens map[uint64]int64 // message-id → framed record length

	// broken means a failed append may have left partial record bytes
	// at the tail; the file must be truncated back to size before the
	// next append, or the garbage would corrupt the framing mid-file.
	broken bool
}

// Disk is a Store persisted under a directory.
type Disk struct {
	dir  string
	fsys fsx.FS

	compactMinBytes int64
	compactFactor   float64

	mu       sync.Mutex
	mem      *Memory // authoritative in-memory index
	journals map[uint64]*journalState
	stats    RecoveryStats
	closed   bool

	quarantined *metrics.Counter
	truncated   *metrics.Counter
	compactions *metrics.Counter
}

var _ Store = (*Disk)(nil)

// OpenDisk opens (creating if needed) a directory-backed store on the
// real filesystem and recovers any existing data files.
func OpenDisk(dir string) (*Disk, error) {
	return OpenDiskWith(dir, DiskOptions{})
}

// OpenDiskWith opens a directory-backed store with explicit options.
// Corrupt data files are quarantined, not fatal: the store always opens
// unless the directory itself is unusable.
func OpenDiskWith(dir string, opts DiskOptions) (*Disk, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = fsx.OS
	}
	if opts.CompactMinBytes <= 0 {
		opts.CompactMinBytes = defaultCompactMinBytes
	}
	if opts.CompactFactor <= 1 {
		opts.CompactFactor = defaultCompactFactor
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	d := &Disk{
		dir:             dir,
		fsys:            fsys,
		compactMinBytes: opts.CompactMinBytes,
		compactFactor:   opts.CompactFactor,
		mem:             NewMemory(),
		journals:        make(map[uint64]*journalState),
		quarantined:     opts.Metrics.Counter(MetricQuarantined, "Corrupt data files renamed to .corrupt during recovery."),
		truncated:       opts.Metrics.Counter(MetricTruncated, "Journals whose torn final record was truncated during recovery."),
		compactions:     opts.Metrics.Counter(MetricCompactions, "Journal compaction rewrites."),
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".dat") {
			continue
		}
		if err := d.recoverFile(filepath.Join(dir, name)); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Dir returns the backing directory.
func (d *Disk) Dir() string { return d.dir }

// Recovery returns what startup recovery repaired.
func (d *Disk) Recovery() RecoveryStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Close flushes and closes every open journal. The store must not be
// used afterwards.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var first error
	for _, js := range d.journals {
		if js.f == nil {
			continue
		}
		if err := js.f.Sync(); err != nil && first == nil {
			first = fmt.Errorf("store: close: %w", err)
		}
		if err := js.f.Close(); err != nil && first == nil {
			first = fmt.Errorf("store: close: %w", err)
		}
		js.f = nil
	}
	return first
}

// --- recovery -------------------------------------------------------

// recoverFile loads one data file, repairing or quarantining as needed.
// Only directory-level failures are returned; per-file damage is
// absorbed.
func (d *Disk) recoverFile(path string) error {
	info, err := d.fsys.Stat(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size := info.Size()
	if size == 0 {
		// A creation that never got its header: nothing was ever
		// acknowledged from it.
		d.fsys.Remove(path)
		d.fsys.SyncDir(d.dir)
		return nil
	}
	f, err := d.fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var magic [4]byte
	n, _ := io.ReadFull(f, magic[:])
	if n == 4 && string(magic[:]) == journalMagic {
		err = d.recoverJournal(f, path, size)
	} else {
		err = d.recoverLegacy(f, path, size)
	}
	f.Close()
	return err
}

// recoverJournal reads a journal-format file positioned after its
// 4-byte magic.
func (d *Disk) recoverJournal(f fsx.File, path string, size int64) error {
	if size < headerLen {
		// The creating header write itself was torn.
		d.stats.TruncatedTails++
		d.truncated.Inc()
		if err := d.fsys.Remove(path); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		return d.fsys.SyncDir(d.dir)
	}
	hdr := make([]byte, headerLen)
	copy(hdr, journalMagic)
	if _, err := io.ReadFull(f, hdr[4:]); err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	fileID, err := parseHeader(hdr)
	if err != nil {
		return d.quarantine(path, nil, err)
	}
	var (
		recs   []*rlnc.Message
		offset = int64(headerLen)
	)
	for offset < size {
		msg, n, err := readRecord(f, size-offset)
		if err == nil && msg.FileID != fileID {
			err = fmt.Errorf("%w: record file-id %d in journal %d", errCorruptRecord, msg.FileID, fileID)
		}
		switch {
		case err == nil:
			recs = append(recs, msg)
			offset += n
		case errors.Is(err, errTornTail):
			if err := d.truncateTail(path, offset); err != nil {
				return err
			}
			return d.adopt(path, fileID, recs, offset)
		default:
			return d.quarantine(path, recs, err)
		}
	}
	return d.adopt(path, fileID, recs, size)
}

// recoverLegacy parses a pre-journal file ([4-byte len][Fig. 3 record]
// concatenation, no checksums) positioned after a 4-byte read, and
// migrates it to the journal format. Without checksums a parse failure
// cannot be blamed on a torn tail, so damage quarantines the file,
// keeping the structurally-sound prefix.
func (d *Disk) recoverLegacy(f fsx.File, path string, size int64) error {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	var (
		recs   []*rlnc.Message
		lenBuf [4]byte
		broken error
	)
	for {
		if _, err := io.ReadFull(f, lenBuf[:]); err != nil {
			if err != io.EOF {
				broken = fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
			}
			break
		}
		payloadLen := binary.BigEndian.Uint32(lenBuf[:])
		if payloadLen > maxRecordPayload {
			broken = fmt.Errorf("%w: %s: record of %d bytes", ErrCorrupt, path, payloadLen)
			break
		}
		msg, err := rlnc.ReadMessage(f, int(payloadLen))
		if err != nil {
			broken = fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
			break
		}
		recs = append(recs, msg)
	}
	if broken != nil {
		return d.quarantine(path, recs, broken)
	}
	return d.migrateLegacy(path, recs)
}

// migrateLegacy rewrites cleanly-parsed legacy records as journals, one
// per file-id, and removes the original if its name is not reused.
func (d *Disk) migrateLegacy(path string, recs []*rlnc.Message) error {
	d.stats.MigratedLegacy++
	if len(recs) == 0 {
		if err := d.fsys.Remove(path); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		return d.fsys.SyncDir(d.dir)
	}
	byFile := make(map[uint64][]*rlnc.Message)
	var order []uint64
	for _, msg := range recs {
		if _, ok := byFile[msg.FileID]; !ok {
			order = append(order, msg.FileID)
		}
		byFile[msg.FileID] = append(byFile[msg.FileID], msg)
	}
	reused := false
	for _, fid := range order {
		target := d.pathFor(fid)
		if target == path {
			reused = true
		}
		if err := d.writeJournal(target, fid, byFile[fid]); err != nil {
			return err
		}
		if err := d.adopt(target, fid, byFile[fid], 0); err != nil {
			return err
		}
		if js := d.journals[fid]; js != nil {
			js.size = js.live
		}
	}
	if !reused {
		if err := d.fsys.Remove(path); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		return d.fsys.SyncDir(d.dir)
	}
	return nil
}

// quarantine renames a damaged file to `<name>.corrupt` and, when a
// valid prefix was recovered, re-journals it under the original name.
// The cause is absorbed, not returned: one rotten file must not stop
// the node from serving everything else it holds.
func (d *Disk) quarantine(path string, recs []*rlnc.Message, cause error) error {
	d.stats.QuarantinedFiles++
	d.quarantined.Inc()
	if err := d.fsys.Rename(path, path+".corrupt"); err != nil {
		return fmt.Errorf("store: quarantine %s (%v): %w", path, cause, err)
	}
	if err := d.fsys.SyncDir(d.dir); err != nil {
		return fmt.Errorf("store: quarantine %s: %w", path, err)
	}
	if len(recs) == 0 {
		return nil
	}
	fid := recs[0].FileID
	kept := recs[:0]
	for _, msg := range recs {
		if msg.FileID == fid {
			kept = append(kept, msg)
		}
	}
	target := d.pathFor(fid)
	if err := d.writeJournal(target, fid, kept); err != nil {
		return err
	}
	if err := d.adopt(target, fid, kept, 0); err != nil {
		return err
	}
	if js := d.journals[fid]; js != nil {
		js.size = js.live
	}
	return nil
}

// truncateTail cuts a journal back to its last valid record.
func (d *Disk) truncateTail(path string, offset int64) error {
	d.stats.TruncatedTails++
	d.truncated.Inc()
	w, err := d.fsys.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("store: truncate %s: %w", path, err)
	}
	defer w.Close()
	if err := w.Truncate(offset); err != nil {
		return fmt.Errorf("store: truncate %s: %w", path, err)
	}
	if err := w.Sync(); err != nil {
		return fmt.Errorf("store: truncate %s: %w", path, err)
	}
	return nil
}

// adopt indexes recovered records and registers the journal. size 0
// means "equals live bytes" (freshly rewritten journals).
func (d *Disk) adopt(path string, fileID uint64, recs []*rlnc.Message, size int64) error {
	js := d.journals[fileID]
	if js == nil {
		js = &journalState{path: path, live: headerLen, recLens: make(map[uint64]int64)}
		d.journals[fileID] = js
	}
	js.path = path
	for _, msg := range recs {
		if err := d.mem.Put(msg); err != nil {
			return err
		}
		recLen := int64(recordHdrLen + len(msg.Payload))
		if old, ok := js.recLens[msg.MessageID]; ok {
			js.live -= old
		}
		js.recLens[msg.MessageID] = recLen
		js.live += recLen
	}
	if size > 0 {
		js.size = size
	}
	return nil
}

// writeJournal atomically writes a complete journal file.
func (d *Disk) writeJournal(path string, fileID uint64, msgs []*rlnc.Message) error {
	total := headerLen
	for _, msg := range msgs {
		total += recordHdrLen + len(msg.Payload)
	}
	buf := make([]byte, 0, total)
	buf = append(buf, encodeHeader(fileID)...)
	for _, msg := range msgs {
		buf = append(buf, encodeRecord(msg)...)
	}
	if err := fsx.WriteFileAtomic(d.fsys, path, buf, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// --- writes ---------------------------------------------------------

func (d *Disk) pathFor(fileID uint64) string {
	return filepath.Join(d.dir, strconv.FormatUint(fileID, 16)+".dat")
}

// ensureJournal returns the journal for fileID with an open append
// handle, creating file and header on first use. The directory entry is
// made durable before the first record is acknowledged.
func (d *Disk) ensureJournal(fileID uint64) (*journalState, error) {
	js := d.journals[fileID]
	if js == nil {
		js = &journalState{
			path:    d.pathFor(fileID),
			live:    headerLen,
			recLens: make(map[uint64]int64),
		}
		d.journals[fileID] = js
	}
	if js.f != nil {
		return js, nil
	}
	// Re-stat on every reopen: after a failed compaction the tracked
	// size can be stale (the rename may or may not have landed), and
	// repair truncation must target the file that is actually there.
	switch info, err := d.fsys.Stat(js.path); {
	case err == nil:
		js.size = info.Size()
	case errors.Is(err, fs.ErrNotExist):
		js.size = 0
	default:
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := d.fsys.OpenFile(js.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if js.size < headerLen {
		if js.size > 0 {
			// A previous header write failed partway: start over.
			if err := f.Truncate(0); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: %w", err)
			}
		}
		if _, err := f.Write(encodeHeader(fileID)); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		js.size = headerLen
	}
	// Unconditional on reopen: the directory entry (creation here, or a
	// compaction rename whose own dir fsync failed) must be durable
	// before the next append is acknowledged, or a crash could revert
	// the name and take acknowledged records with it.
	if err := d.fsys.SyncDir(d.dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	js.f = f
	return js, nil
}

// repair truncates trailing garbage left by a failed append.
func (d *Disk) repair(js *journalState) error {
	if err := js.f.Truncate(js.size); err != nil {
		return fmt.Errorf("store: repair %s: %w", js.path, err)
	}
	if err := js.f.Sync(); err != nil {
		return fmt.Errorf("store: repair %s: %w", js.path, err)
	}
	js.broken = false
	return nil
}

// appendLocked appends one record without syncing. The in-memory index
// is only updated once the bytes are written, and callers sync before
// returning success, so an acknowledged Put is always durable; on error
// the index may lag the journal by a torn record, which recovery cuts.
func (d *Disk) appendLocked(msg *rlnc.Message) (*journalState, error) {
	if msg == nil {
		return nil, fmt.Errorf("store: nil message")
	}
	js, err := d.ensureJournal(msg.FileID)
	if err != nil {
		return nil, err
	}
	if js.broken {
		if err := d.repair(js); err != nil {
			return nil, err
		}
	}
	rec := encodeRecord(msg)
	if _, err := js.f.Write(rec); err != nil {
		js.broken = true
		return nil, fmt.Errorf("store: append: %w", err)
	}
	js.size += int64(len(rec))
	if old, ok := js.recLens[msg.MessageID]; ok {
		js.live -= old
	}
	js.recLens[msg.MessageID] = int64(len(rec))
	js.live += int64(len(rec))
	if err := d.mem.Put(msg); err != nil {
		return nil, err
	}
	return js, nil
}

// maybeCompact rewrites a journal whose dead bytes dominate. The rename
// lands before any further append, so the append handle is reopened.
func (d *Disk) maybeCompact(fileID uint64, js *journalState) error {
	if js.size < d.compactMinBytes || float64(js.size) <= d.compactFactor*float64(js.live) {
		return nil
	}
	msgs, err := d.mem.Messages(fileID)
	if err != nil {
		return err
	}
	if js.f != nil {
		if err := js.f.Close(); err != nil {
			return fmt.Errorf("store: compact %s: %w", js.path, err)
		}
		js.f = nil
	}
	if err := d.writeJournal(js.path, fileID, msgs); err != nil {
		// The rename may have landed without its directory fsync; the
		// next append's reopen re-stats and re-syncs the directory.
		return err
	}
	js.size = js.live
	js.broken = false
	d.compactions.Inc()
	return nil
}

// Put implements Store: one durable append.
func (d *Disk) Put(msg *rlnc.Message) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("store: closed")
	}
	js, err := d.appendLocked(msg)
	if err != nil {
		return err
	}
	if err := js.f.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	return d.maybeCompact(msg.FileID, js)
}

// PutBatch stores several messages with a single fsync per touched
// file-id.
func (d *Disk) PutBatch(msgs []*rlnc.Message) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("store: closed")
	}
	touched := make(map[uint64]*journalState)
	for _, msg := range msgs {
		js, err := d.appendLocked(msg)
		if err != nil {
			return err
		}
		touched[msg.FileID] = js
	}
	for fileID, js := range touched {
		if js.f != nil {
			if err := js.f.Sync(); err != nil {
				return fmt.Errorf("store: sync: %w", err)
			}
		}
		if err := d.maybeCompact(fileID, js); err != nil {
			return err
		}
	}
	return nil
}

// Messages implements Store.
func (d *Disk) Messages(fileID uint64) ([]*rlnc.Message, error) {
	return d.mem.Messages(fileID)
}

// Get implements Store.
func (d *Disk) Get(fileID, messageID uint64) (*rlnc.Message, error) {
	return d.mem.Get(fileID, messageID)
}

// Count implements Store.
func (d *Disk) Count(fileID uint64) int { return d.mem.Count(fileID) }

// Files implements Store.
func (d *Disk) Files() []uint64 { return d.mem.Files() }

// Drop implements Store and removes the data file durably.
func (d *Disk) Drop(fileID uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.mem.Drop(fileID); err != nil {
		return err
	}
	path := d.pathFor(fileID)
	if js := d.journals[fileID]; js != nil {
		path = js.path
		if js.f != nil {
			js.f.Close()
		}
		delete(d.journals, fileID)
	}
	if err := d.fsys.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	return d.fsys.SyncDir(d.dir)
}
