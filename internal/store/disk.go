package store

// Directory-backed store. Each file-id is persisted as
// `<file-id-hex>.dat` containing the concatenation of its messages in
// the Fig. 3 record layout, each record prefixed with a 4-byte
// big-endian payload length so mixed payload sizes can coexist:
//
//	[4-byte len][8-byte file-id][8-byte message-id][payload]...
//
// Writes go through an in-memory index and are flushed synchronously;
// the store is small (a peer caches other users' generations), so a
// full-file rewrite per Put batch is acceptable and keeps recovery
// trivial.

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"asymshare/internal/rlnc"
)

const maxRecordPayload = 64 << 20 // sanity bound when reading

// Disk is a Store persisted under a directory.
type Disk struct {
	dir string

	mu  sync.Mutex
	mem *Memory // authoritative in-memory index
}

var _ Store = (*Disk)(nil)

// OpenDisk opens (creating if needed) a directory-backed store and
// loads any existing data files.
func OpenDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	d := &Disk{dir: dir, mem: NewMemory()}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".dat") {
			continue
		}
		if err := d.loadFile(filepath.Join(dir, name)); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Dir returns the backing directory.
func (d *Disk) Dir() string { return d.dir }

func (d *Disk) loadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(f, lenBuf[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
		}
		payloadLen := binary.BigEndian.Uint32(lenBuf[:])
		if payloadLen > maxRecordPayload {
			return fmt.Errorf("%w: %s: record of %d bytes", ErrCorrupt, path, payloadLen)
		}
		msg, err := rlnc.ReadMessage(f, int(payloadLen))
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
		}
		if err := d.mem.Put(msg); err != nil {
			return err
		}
	}
}

func (d *Disk) pathFor(fileID uint64) string {
	return filepath.Join(d.dir, strconv.FormatUint(fileID, 16)+".dat")
}

// Put implements Store. The file's data file is rewritten atomically.
func (d *Disk) Put(msg *rlnc.Message) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.mem.Put(msg); err != nil {
		return err
	}
	return d.flushFile(msg.FileID)
}

// PutBatch stores several messages with a single rewrite per file-id.
func (d *Disk) PutBatch(msgs []*rlnc.Message) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	touched := make(map[uint64]bool)
	for _, msg := range msgs {
		if err := d.mem.Put(msg); err != nil {
			return err
		}
		touched[msg.FileID] = true
	}
	for fileID := range touched {
		if err := d.flushFile(fileID); err != nil {
			return err
		}
	}
	return nil
}

func (d *Disk) flushFile(fileID uint64) error {
	msgs, err := d.mem.Messages(fileID)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, "put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	ok := false
	defer func() {
		if !ok {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	var lenBuf [4]byte
	for _, msg := range msgs {
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(msg.Payload)))
		if _, err := tmp.Write(lenBuf[:]); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, err := msg.WriteTo(tmp); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpName, d.pathFor(fileID)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	ok = true
	return nil
}

// Messages implements Store.
func (d *Disk) Messages(fileID uint64) ([]*rlnc.Message, error) {
	return d.mem.Messages(fileID)
}

// Get implements Store.
func (d *Disk) Get(fileID, messageID uint64) (*rlnc.Message, error) {
	return d.mem.Get(fileID, messageID)
}

// Count implements Store.
func (d *Disk) Count(fileID uint64) int { return d.mem.Count(fileID) }

// Files implements Store.
func (d *Disk) Files() []uint64 { return d.mem.Files() }

// Drop implements Store and removes the data file.
func (d *Disk) Drop(fileID uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.mem.Drop(fileID); err != nil {
		return err
	}
	if err := os.Remove(d.pathFor(fileID)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
