package rlnc

import (
	"errors"
	"math/rand"
	"testing"

	"asymshare/internal/gf"
)

func testFields(t *testing.T) []gf.Field {
	t.Helper()
	out := make([]gf.Field, 0, 4)
	for _, bits := range gf.Widths() {
		f, err := gf.New(bits)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, f)
	}
	return out
}

func TestIdentityProperties(t *testing.T) {
	for _, f := range testFields(t) {
		id := Identity(f, 5)
		if !id.Invertible() {
			t.Errorf("GF(2^%d): identity not invertible", f.Bits())
		}
		if id.Rank() != 5 {
			t.Errorf("GF(2^%d): identity rank = %d", f.Bits(), id.Rank())
		}
		inv, err := id.Inverse()
		if err != nil {
			t.Fatal(err)
		}
		if !inv.Equal(id) {
			t.Errorf("GF(2^%d): identity inverse != identity", f.Bits())
		}
	}
}

func TestMatrixFromRowsRagged(t *testing.T) {
	f := gf.MustNew(gf.Bits8)
	_, err := MatrixFromRows(f, [][]uint32{{1, 2}, {3}})
	if !errors.Is(err, ErrBadParams) {
		t.Errorf("ragged rows error = %v, want ErrBadParams", err)
	}
}

func TestRandomMatrixInverse(t *testing.T) {
	for _, f := range testFields(t) {
		rng := rand.New(rand.NewSource(int64(f.Bits())))
		for trial := 0; trial < 10; trial++ {
			n := 1 + rng.Intn(12)
			m := RandomMatrix(f, rng, n, n)
			inv, err := m.Inverse()
			if errors.Is(err, ErrSingular) {
				if m.Rank() == n {
					t.Fatalf("GF(2^%d): full-rank matrix reported singular", f.Bits())
				}
				continue // genuinely singular random draw (likely only in GF(16))
			}
			if err != nil {
				t.Fatal(err)
			}
			prod, err := m.Mul(inv)
			if err != nil {
				t.Fatal(err)
			}
			if !prod.Equal(Identity(f, n)) {
				t.Fatalf("GF(2^%d): M * M^-1 != I for n=%d", f.Bits(), n)
			}
			prod2, err := inv.Mul(m)
			if err != nil {
				t.Fatal(err)
			}
			if !prod2.Equal(Identity(f, n)) {
				t.Fatalf("GF(2^%d): M^-1 * M != I for n=%d", f.Bits(), n)
			}
		}
	}
}

func TestSingularMatrix(t *testing.T) {
	f := gf.MustNew(gf.Bits8)
	m := NewMatrix(f, 3, 3)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2) // duplicate row
	m.Set(2, 2, 7)
	if got := m.Rank(); got != 2 {
		t.Errorf("Rank() = %d, want 2", got)
	}
	if m.Invertible() {
		t.Error("singular matrix reported invertible")
	}
	if _, err := m.Inverse(); !errors.Is(err, ErrSingular) {
		t.Errorf("Inverse error = %v, want ErrSingular", err)
	}
}

func TestNonSquareInverse(t *testing.T) {
	f := gf.MustNew(gf.Bits8)
	m := NewMatrix(f, 2, 3)
	if _, err := m.Inverse(); !errors.Is(err, ErrSingular) {
		t.Errorf("non-square Inverse error = %v, want ErrSingular", err)
	}
}

func TestMulShapes(t *testing.T) {
	f := gf.MustNew(gf.Bits8)
	a := NewMatrix(f, 2, 3)
	b := NewMatrix(f, 3, 4)
	prod, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Rows() != 2 || prod.Cols() != 4 {
		t.Errorf("product shape %dx%d, want 2x4", prod.Rows(), prod.Cols())
	}
	if _, err := b.Mul(a); err == nil {
		t.Error("3x4 * 2x3 should fail")
	}
}

func TestMulVecAgainstMul(t *testing.T) {
	f := gf.MustNew(gf.Bits16)
	rng := rand.New(rand.NewSource(4))
	m := RandomMatrix(f, rng, 6, 5)
	v := make([]uint32, 5)
	for i := range v {
		v[i] = rng.Uint32() & f.Mask()
	}
	got, err := m.MulVec(v)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against matrix-matrix product with v as a column.
	col := NewMatrix(f, 5, 1)
	for i, x := range v {
		col.Set(i, 0, x)
	}
	prod, err := m.Mul(col)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != prod.At(i, 0) {
			t.Fatalf("MulVec[%d] = %#x, want %#x", i, got[i], prod.At(i, 0))
		}
	}
	if _, err := m.MulVec(v[:3]); err == nil {
		t.Error("MulVec with wrong length should fail")
	}
}

func TestRankOfWideAndTall(t *testing.T) {
	f := gf.MustNew(gf.Bits32)
	rng := rand.New(rand.NewSource(5))
	wide := RandomMatrix(f, rng, 3, 10)
	if got := wide.Rank(); got != 3 {
		t.Errorf("wide random rank = %d, want 3 (w.h.p.)", got)
	}
	tall := RandomMatrix(f, rng, 10, 3)
	if got := tall.Rank(); got != 3 {
		t.Errorf("tall random rank = %d, want 3 (w.h.p.)", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := gf.MustNew(gf.Bits8)
	m := NewMatrix(f, 2, 2)
	m.Set(0, 0, 9)
	c := m.Clone()
	c.Set(0, 0, 1)
	if m.At(0, 0) != 9 {
		t.Error("Clone shares storage with original")
	}
}

func TestSolveViaInverse(t *testing.T) {
	// Decoding sanity: for random invertible A and data x, A^-1 (A x) == x.
	for _, f := range testFields(t) {
		rng := rand.New(rand.NewSource(21))
		n := 8
		var a *Matrix
		for {
			a = RandomMatrix(f, rng, n, n)
			if a.Invertible() {
				break
			}
		}
		x := make([]uint32, n)
		for i := range x {
			x[i] = rng.Uint32() & f.Mask()
		}
		y, err := a.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		ainv, err := a.Inverse()
		if err != nil {
			t.Fatal(err)
		}
		got, err := ainv.MulVec(y)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if got[i] != x[i] {
				t.Fatalf("GF(2^%d): solve mismatch at %d", f.Bits(), i)
			}
		}
	}
}

func BenchmarkMatrixInverse(b *testing.B) {
	for _, bits := range gf.Widths() {
		f := gf.MustNew(bits)
		for _, n := range []int{8, 32, 128} {
			rng := rand.New(rand.NewSource(1))
			var m *Matrix
			for {
				m = RandomMatrix(f, rng, n, n)
				if m.Invertible() {
					break
				}
			}
			b.Run(benchLabel(bits, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := m.Inverse(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func benchLabel(bits uint, n int) string {
	digits := func(x int) string {
		if x == 0 {
			return "0"
		}
		var buf [12]byte
		i := len(buf)
		for x > 0 {
			i--
			buf[i] = byte('0' + x%10)
			x /= 10
		}
		return string(buf[i:])
	}
	return "GF2_" + digits(int(bits)) + "/k=" + digits(n)
}
