package rlnc

// Encoded message layout (Fig. 3 of the paper): an 8-byte file-id and an
// 8-byte message-id in plaintext, followed by the m-symbol encoded
// payload. Messages are "pre-fabricated" at initialization time and
// forwarded verbatim by storage peers, so serving requires no
// computation.

import (
	"crypto/md5"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"
)

const headerBytes = 16

// MessageHeaderBytes is the size of the serialized message header: an
// 8-byte file-id followed by an 8-byte message-id (Fig. 3). Exported so
// the wire layer can frame stored messages without marshaling.
const MessageHeaderBytes = headerBytes

// ErrShortMessage is returned when unmarshaling a buffer smaller than
// the 16-byte message header.
var ErrShortMessage = errors.New("rlnc: message shorter than header")

// DigestLen is the length of a message authentication digest (128-bit
// MD5, as in Sec. III-C of the paper).
const DigestLen = md5.Size

// Digest is the per-message authentication digest stored by the owning
// peer and used to reject forged messages before decoding.
type Digest [DigestLen]byte

func (d Digest) String() string { return fmt.Sprintf("%x", d[:]) }

// Message is one encoded message Y_i.
type Message struct {
	FileID    uint64
	MessageID uint64
	Payload   []byte // packed m-symbol vector
}

// Digest returns the MD5 digest over the full serialized message
// (header and payload), so both identifier tampering and payload
// corruption are detected.
func (m *Message) Digest() Digest {
	h := md5.New()
	var hdr [headerBytes]byte
	binary.BigEndian.PutUint64(hdr[0:], m.FileID)
	binary.BigEndian.PutUint64(hdr[8:], m.MessageID)
	h.Write(hdr[:])
	h.Write(m.Payload)
	var d Digest
	h.Sum(d[:0])
	return d
}

// digestInto computes the same digest as Digest with caller-owned
// scratch: h is a reusable MD5 hash, hdr the header buffer, and the
// sum is appended to buf[:0]. The pipeline's verifier slots use this
// to authenticate without per-message allocations.
func (m *Message) digestInto(h hash.Hash, hdr *[headerBytes]byte, buf []byte) []byte {
	h.Reset()
	binary.BigEndian.PutUint64(hdr[0:], m.FileID)
	binary.BigEndian.PutUint64(hdr[8:], m.MessageID)
	h.Write(hdr[:])
	h.Write(m.Payload)
	return h.Sum(buf[:0])
}

// PutHeader writes the 16-byte serialized header into dst, which must
// be at least MessageHeaderBytes long. The zero-copy serve path frames
// a stored message as PutHeader + Payload — byte-identical to
// MarshalBinary without the copy of the payload.
func (m *Message) PutHeader(dst []byte) {
	binary.BigEndian.PutUint64(dst[0:], m.FileID)
	binary.BigEndian.PutUint64(dst[8:], m.MessageID)
}

// MarshalBinary serializes the message per Fig. 3.
func (m *Message) MarshalBinary() ([]byte, error) {
	buf := make([]byte, headerBytes+len(m.Payload))
	binary.BigEndian.PutUint64(buf[0:], m.FileID)
	binary.BigEndian.PutUint64(buf[8:], m.MessageID)
	copy(buf[headerBytes:], m.Payload)
	return buf, nil
}

// UnmarshalBinary parses a serialized message. The payload is copied.
func (m *Message) UnmarshalBinary(data []byte) error {
	if len(data) < headerBytes {
		return fmt.Errorf("%w: %d bytes", ErrShortMessage, len(data))
	}
	m.FileID = binary.BigEndian.Uint64(data[0:])
	m.MessageID = binary.BigEndian.Uint64(data[8:])
	m.Payload = make([]byte, len(data)-headerBytes)
	copy(m.Payload, data[headerBytes:])
	return nil
}

// WriteTo writes the serialized message to w.
func (m *Message) WriteTo(w io.Writer) (int64, error) {
	buf, err := m.MarshalBinary()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadMessage reads one message with a payload of exactly payloadLen
// bytes from r.
func ReadMessage(r io.Reader, payloadLen int) (*Message, error) {
	buf := make([]byte, headerBytes+payloadLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	var m Message
	if err := m.UnmarshalBinary(buf); err != nil {
		return nil, err
	}
	return &m, nil
}

// Clone returns a deep copy of the message.
func (m *Message) Clone() *Message {
	p := make([]byte, len(m.Payload))
	copy(p, m.Payload)
	return &Message{FileID: m.FileID, MessageID: m.MessageID, Payload: p}
}

func (m *Message) String() string {
	return fmt.Sprintf("rlnc.Message{file=%d, id=%d, %dB}", m.FileID, m.MessageID, len(m.Payload))
}
