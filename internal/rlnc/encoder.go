package rlnc

// Encoder for Eq. (1) of the paper: Y_i = sum_{j=1..k} beta_ij * X_j,
// with beta rows derived from a secret key (coeff.go). Messages are
// deterministic in (fileID, messageID), so the encoder can regenerate
// any message on demand and storage peers can be replenished without
// the owner keeping the encoded form around.

import (
	"fmt"

	"asymshare/internal/gf"
)

// Encoder produces encoded messages for one generation (one file, or
// one 1 MB chunk of a large file — see package chunk).
type Encoder struct {
	params Params
	fileID uint64
	gen    *CoeffGenerator
	chunks [][]byte // k packed chunks, zero-padded to ChunkBytes
}

// NewEncoder splits data into k chunks per params and prepares the
// coefficient generator. data must be at most params.CapacityBytes()
// and exactly params.DataLen bytes.
func NewEncoder(params Params, fileID uint64, secret, data []byte) (*Encoder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(data) != params.DataLen {
		return nil, fmt.Errorf("%w: data is %d bytes, params say %d",
			ErrBadParams, len(data), params.DataLen)
	}
	gen, err := NewCoeffGenerator(params.Field, params.K, secret)
	if err != nil {
		return nil, err
	}
	cb := params.ChunkBytes()
	chunks := make([][]byte, params.K)
	for j := range chunks {
		chunk := make([]byte, cb)
		lo := j * cb
		if lo < len(data) {
			hi := min(lo+cb, len(data))
			copy(chunk, data[lo:hi])
		}
		chunks[j] = chunk
	}
	return &Encoder{params: params, fileID: fileID, gen: gen, chunks: chunks}, nil
}

// Params returns the coding parameters.
func (e *Encoder) Params() Params { return e.params }

// FileID returns the generation's file identifier.
func (e *Encoder) FileID() uint64 { return e.fileID }

// Message deterministically produces the encoded message with the given
// message-id.
func (e *Encoder) Message(messageID uint64) *Message {
	f := e.params.Field
	row := e.gen.Row(e.fileID, messageID)
	payload := make([]byte, e.params.ChunkBytes())
	for j, c := range row {
		if c != 0 {
			f.AddScaledSlice(payload, e.chunks[j], c)
		}
	}
	return &Message{FileID: e.fileID, MessageID: messageID, Payload: payload}
}

// batchStride separates the message-id ranges assigned to different
// peers, leaving room for the encoder to skip linearly dependent ids.
const batchStride = uint64(1) << 32

// BatchForPeer generates the batch of up to k messages destined for the
// peer with the given index (0-based), per the initialization phase of
// Sec. III-A. The paper's encoder "tests generated rows for linear
// independence before encoding"; we realize that guarantee by scanning
// message-ids from peer*2^32 upward and skipping any id whose
// coefficient row is dependent on the ids already chosen, so the batch
// coefficient matrix is always invertible and a user can decode from any
// single complete batch. The decoder re-derives rows from the ids, so
// skipped ids cost nothing.
func (e *Encoder) BatchForPeer(peer, n int) ([]*Message, error) {
	if peer < 0 || n <= 0 || n > e.params.K {
		return nil, fmt.Errorf("%w: peer=%d n=%d (k=%d)", ErrBadParams, peer, n, e.params.K)
	}
	ids, err := e.independentIDs(uint64(peer)*batchStride, n)
	if err != nil {
		return nil, err
	}
	msgs := make([]*Message, 0, n)
	for _, id := range ids {
		msgs = append(msgs, e.Message(id))
	}
	return msgs, nil
}

// independentIDs scans ids from start, returning the first n whose
// coefficient rows are jointly linearly independent.
func (e *Encoder) independentIDs(start uint64, n int) ([]uint64, error) {
	f := e.params.Field
	// Maintain a row-echelon basis of chosen rows for O(k) dependence
	// checks per candidate.
	echelon := make([][]uint32, 0, n)
	pivots := make([]int, 0, n)
	ids := make([]uint64, 0, n)
	row := make([]uint32, e.params.K)

	// The scan window is far smaller than batchStride; with random rows
	// the expected number of skips is < 2 even over GF(16).
	const maxScan = 1 << 16
	for off := uint64(0); off < maxScan && len(ids) < n; off++ {
		id := start + off
		e.gen.RowInto(e.fileID, id, row)
		cand := make([]uint32, e.params.K)
		copy(cand, row)
		if !reduceRow(f, cand, echelon, pivots, nil, nil) {
			continue // dependent; skip this id
		}
		echelon = append(echelon, cand)
		pivots = append(pivots, leadingIndex(cand))
		ids = append(ids, id)
	}
	if len(ids) < n {
		return nil, fmt.Errorf("%w: could not find %d independent rows", ErrBadParams, n)
	}
	return ids, nil
}

// leadingIndex returns the index of the first non-zero element, or -1.
func leadingIndex(row []uint32) int {
	for j, v := range row {
		if v != 0 {
			return j
		}
	}
	return -1
}

// reduceRow reduces cand against the echelon rows (normalizing its
// pivot if it survives) and reports whether cand is independent. If
// payload and echelonPayloads are non-nil the same operations are
// applied to the payload vector, which is how the decoder performs
// incremental Gaussian elimination.
func reduceRow(f gf.Field, cand []uint32, echelon [][]uint32, pivots []int,
	payload []byte, echelonPayloads [][]byte) bool {
	for i, er := range echelon {
		p := pivots[i]
		if cand[p] == 0 {
			continue
		}
		factor := cand[p] // echelon rows have unit pivots
		addScaledRow(f, cand, er, factor)
		if payload != nil {
			f.AddScaledSlice(payload, echelonPayloads[i], factor)
		}
	}
	lead := leadingIndex(cand)
	if lead < 0 {
		return false
	}
	// Normalize so the pivot is 1.
	inv, err := f.Inv(cand[lead])
	if err != nil {
		return false // unreachable: cand[lead] != 0
	}
	if inv != 1 {
		scaleRow(f, cand, inv)
		if payload != nil {
			f.ScaleSlice(payload, inv)
		}
	}
	return true
}
