package rlnc

// Keyed coefficient generation (Sec. III-A of the paper). The encoding
// coefficients beta_i = [beta_i1 .. beta_ik] for message i are drawn
// from a cryptographically strong pseudorandom stream seeded with a
// cryptographic hash of the message-id i and a secret key known only to
// the owning peer. Because the betas are never transmitted, a storage
// peer holding message Y_i cannot decode it without guessing the full
// k-tuple — and has no way to verify a guess (Sec. III-C).
//
// The stream is HMAC-SHA256(secret, fileID || messageID || counter),
// expanded block by block; each coefficient consumes ceil(p/8) bytes and
// is masked to p bits, which is uniform because p divides the bit width
// consumed.

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"

	"asymshare/internal/gf"
)

// SecretLen is the recommended secret key length in bytes.
const SecretLen = 32

// CoeffGenerator deterministically derives coefficient rows from a
// secret. It is immutable and safe for concurrent use.
type CoeffGenerator struct {
	secret []byte
	field  gf.Field
	k      int
}

// NewCoeffGenerator returns a generator for rows of k coefficients over
// the given field. The secret is copied.
func NewCoeffGenerator(field gf.Field, k int, secret []byte) (*CoeffGenerator, error) {
	if field == nil || k <= 0 {
		return nil, fmt.Errorf("%w: field=%v k=%d", ErrBadParams, field, k)
	}
	if len(secret) == 0 {
		return nil, fmt.Errorf("%w: empty secret", ErrBadParams)
	}
	s := make([]byte, len(secret))
	copy(s, secret)
	return &CoeffGenerator{secret: s, field: field, k: k}, nil
}

// K returns the row length.
func (g *CoeffGenerator) K() int { return g.k }

// Field returns the coefficient field.
func (g *CoeffGenerator) Field() gf.Field { return g.field }

// Row returns the coefficient row beta_i for the message identified by
// (fileID, messageID). The same identifiers always yield the same row.
func (g *CoeffGenerator) Row(fileID, messageID uint64) []uint32 {
	row := make([]uint32, g.k)
	g.RowInto(fileID, messageID, row)
	return row
}

// RowInto fills row (which must have length k) with the coefficients
// for (fileID, messageID), avoiding a row allocation. Each call still
// instantiates a fresh HMAC; hot loops deriving many rows should hold a
// Stream instead.
func (g *CoeffGenerator) RowInto(fileID, messageID uint64, row []uint32) {
	s := RowStream{g: g, mac: hmac.New(sha256.New, g.secret)}
	s.RowInto(fileID, messageID, row)
}

// RowStream derives coefficient rows with a reusable keyed HMAC and
// block buffer, so steady-state derivation allocates nothing. A
// RowStream is not safe for concurrent use; the pipeline hands one to
// each verifier slot.
type RowStream struct {
	g     *CoeffGenerator
	mac   hash.Hash
	block []byte
	seed  [20]byte // fileID || messageID || block counter
}

// Stream returns a reusable row deriver bound to the generator.
func (g *CoeffGenerator) Stream() *RowStream {
	return &RowStream{
		g:     g,
		mac:   hmac.New(sha256.New, g.secret),
		block: make([]byte, 0, sha256.Size),
	}
}

// RowInto fills row with the coefficients for (fileID, messageID),
// producing exactly the same stream as CoeffGenerator.RowInto.
func (s *RowStream) RowInto(fileID, messageID uint64, row []uint32) {
	g := s.g
	if len(row) != g.k {
		panic("rlnc: RowInto row length mismatch")
	}
	bytesPerCoeff := int(g.field.Bits()+7) / 8
	mask := g.field.Mask()

	binary.BigEndian.PutUint64(s.seed[0:], fileID)
	binary.BigEndian.PutUint64(s.seed[8:], messageID)

	counter := uint32(0)
	for i := 0; i < g.k; {
		binary.BigEndian.PutUint32(s.seed[16:], counter)
		s.mac.Reset()
		s.mac.Write(s.seed[:])
		s.block = s.mac.Sum(s.block[:0])
		counter++
		for off := 0; off+bytesPerCoeff <= len(s.block) && i < g.k; i++ {
			var v uint32
			for b := 0; b < bytesPerCoeff; b++ {
				v = v<<8 | uint32(s.block[off])
				off++
			}
			row[i] = v & mask
		}
	}
}

// RowMatrix returns the coefficient rows for the given message ids as a
// matrix, in id order.
func (g *CoeffGenerator) RowMatrix(fileID uint64, messageIDs []uint64) *Matrix {
	m := NewMatrix(g.field, len(messageIDs), g.k)
	for i, id := range messageIDs {
		g.RowInto(fileID, id, m.Row(i))
	}
	return m
}
