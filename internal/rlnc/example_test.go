package rlnc_test

import (
	"bytes"
	"fmt"

	"asymshare/internal/gf"
	"asymshare/internal/rlnc"
)

// Example encodes one generation with a secret key, decodes it from
// exactly k messages, and verifies the round trip — the core loop of
// the paper's Sections III-A and III-B.
func Example() {
	field := gf.MustNew(gf.Bits32)
	secret := bytes.Repeat([]byte{7}, rlnc.SecretLen)
	data := []byte("the quick brown fox jumps over the lazy dog!")

	// k chunks of m=4 32-bit symbols (16 bytes) each.
	params, err := rlnc.ParamsForSize(field, len(data), 4)
	if err != nil {
		panic(err)
	}
	enc, err := rlnc.NewEncoder(params, 42, secret, data)
	if err != nil {
		panic(err)
	}
	dec, err := rlnc.NewDecoder(params, 42, secret, nil)
	if err != nil {
		panic(err)
	}
	for id := uint64(0); !dec.Done(); id++ {
		if _, err := dec.Add(enc.Message(id)); err != nil {
			panic(err)
		}
	}
	got, err := dec.Decode()
	if err != nil {
		panic(err)
	}
	fmt.Printf("k=%d, decoded %q\n", params.K, got)
	// Output: k=3, decoded "the quick brown fox jumps over the lazy dog!"
}

// ExampleEncoder_BatchForPeer shows the per-peer invertibility
// guarantee: any single complete batch decodes on its own.
func ExampleEncoder_BatchForPeer() {
	field := gf.MustNew(gf.Bits8)
	secret := bytes.Repeat([]byte{9}, rlnc.SecretLen)
	data := bytes.Repeat([]byte("abcd"), 8)

	params, err := rlnc.NewParams(field, 4, 8, len(data))
	if err != nil {
		panic(err)
	}
	enc, err := rlnc.NewEncoder(params, 1, secret, data)
	if err != nil {
		panic(err)
	}
	batch, err := enc.BatchForPeer(0, params.K)
	if err != nil {
		panic(err)
	}
	dec, err := rlnc.NewDecoder(params, 1, secret, nil)
	if err != nil {
		panic(err)
	}
	for _, msg := range batch {
		if _, err := dec.Add(msg); err != nil {
			panic(err)
		}
	}
	fmt.Println("decodable from one peer:", dec.Done())
	// Output: decodable from one peer: true
}

// ExampleApplyDelta demonstrates the in-place update path: peers patch
// stored messages with deltas and end up holding the new version's
// messages, without ever seeing the secret.
func ExampleApplyDelta() {
	field := gf.MustNew(gf.Bits8)
	secret := bytes.Repeat([]byte{3}, rlnc.SecretLen)
	oldData := bytes.Repeat([]byte("v1 "), 8) // 24 bytes
	newData := bytes.Repeat([]byte("v2 "), 8)

	params, err := rlnc.NewParams(field, 3, 8, len(oldData))
	if err != nil {
		panic(err)
	}
	oldEnc, err := rlnc.NewEncoder(params, 5, secret, oldData)
	if err != nil {
		panic(err)
	}
	newEnc, err := rlnc.NewEncoder(params, 5, secret, newData)
	if err != nil {
		panic(err)
	}
	delta, err := rlnc.NewDeltaEncoder(params, 5, secret, oldData, newData)
	if err != nil {
		panic(err)
	}

	stored := oldEnc.Message(0) // what a peer holds
	if err := rlnc.ApplyDelta(stored, delta.Delta(0)); err != nil {
		panic(err)
	}
	fmt.Println("patched == re-encoded:", stored.Equal(newEnc.Message(0)))
	// Output: patched == re-encoded: true
}
