package rlnc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"asymshare/internal/gf"
)

func TestPacketMarshalRoundTrip(t *testing.T) {
	for _, f := range testFields(t) {
		p := &CodedPacket{
			FileID:  0xAABBCCDD,
			Coeffs:  []uint32{1 & f.Mask(), 2 & f.Mask(), f.Mask(), 0},
			Payload: []byte{9, 8, 7, 6},
		}
		blob, err := p.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalPacket(f, 4, blob)
		if err != nil {
			t.Fatal(err)
		}
		if got.FileID != p.FileID || !bytes.Equal(got.Payload, p.Payload) {
			t.Fatalf("GF(2^%d): round trip %+v", f.Bits(), got)
		}
		for i := range p.Coeffs {
			if got.Coeffs[i] != p.Coeffs[i] {
				t.Fatalf("GF(2^%d): coeff %d = %#x, want %#x", f.Bits(), i, got.Coeffs[i], p.Coeffs[i])
			}
		}
	}
}

func TestPacketUnmarshalErrors(t *testing.T) {
	f := gf.MustNew(gf.Bits8)
	if _, err := UnmarshalPacket(f, 4, make([]byte, 5)); !errors.Is(err, ErrBadParams) {
		t.Errorf("short packet error = %v", err)
	}
	p := &CodedPacket{FileID: 1, Coeffs: []uint32{1, 2}, Payload: []byte{1}}
	blob, err := p.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalPacket(f, 3, blob); !errors.Is(err, ErrBadParams) {
		t.Errorf("k mismatch error = %v", err)
	}
	empty := &CodedPacket{FileID: 1}
	if _, err := empty.Marshal(f); !errors.Is(err, ErrBadParams) {
		t.Errorf("empty coeffs error = %v", err)
	}
}

func TestHeaderOverheadVsSecretMode(t *testing.T) {
	// The coefficient header costs k*p bits per packet; the paper's
	// secret-key mode sends only the 8-byte message-id. For the paper's
	// Table I corner (GF(2^4), m=2^13, k=256) the header is 128 bytes
	// per 4 KiB payload — ~3% overhead the secret mode avoids.
	f := gf.MustNew(gf.Bits4)
	p := &CodedPacket{FileID: 1, Coeffs: make([]uint32, 256)}
	if got := p.HeaderBytes(f); got != 8+128 {
		t.Errorf("HeaderBytes = %d, want 136", got)
	}
	f32 := gf.MustNew(gf.Bits32)
	p32 := &CodedPacket{FileID: 1, Coeffs: make([]uint32, 8)}
	if got := p32.HeaderBytes(f32); got != 8+32 {
		t.Errorf("HeaderBytes = %d, want 40", got)
	}
}

func TestRecodeChainRoundTrip(t *testing.T) {
	// Source -> relay (recoding) -> decoder: the relay emits fresh
	// combinations and the decoder still recovers the data, for every
	// field.
	rng := rand.New(rand.NewSource(51))
	for _, f := range testFields(t) {
		k := 6
		p := mustParams(t, f, k, 16, k*gf.VecBytes(f.Bits(), 16))
		data := randomData(rng, p.DataLen)
		enc, err := NewEncoder(p, 9, testSecret(), data)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := NewCoeffGenerator(f, k, testSecret())
		if err != nil {
			t.Fatal(err)
		}
		relay, err := NewRecoder(p, 9, 1)
		if err != nil {
			t.Fatal(err)
		}
		// The relay absorbs k+2 source packets.
		for id := uint64(0); id < uint64(k+2); id++ {
			if err := relay.Absorb(PacketFromMessage(gen, enc.Message(id))); err != nil {
				t.Fatal(err)
			}
		}
		if relay.Held() != k+2 {
			t.Fatalf("Held = %d", relay.Held())
		}
		dec, err := NewDecoder(p, 9, testSecret(), nil)
		if err != nil {
			t.Fatal(err)
		}
		for tries := 0; !dec.Done(); tries++ {
			if tries > 6*k {
				t.Fatalf("GF(2^%d): decoder starved after %d recoded packets", f.Bits(), tries)
			}
			pkt, err := relay.Emit()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := dec.AddRaw(pkt.Coeffs, pkt.Payload); err != nil {
				t.Fatal(err)
			}
		}
		got, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("GF(2^%d): recode chain mismatch", f.Bits())
		}
	}
}

func TestRecoderValidation(t *testing.T) {
	f := gf.MustNew(gf.Bits8)
	p := mustParams(t, f, 4, 8, 32)
	r, err := NewRecoder(p, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Emit(); !errors.Is(err, ErrBadParams) {
		t.Errorf("empty Emit error = %v", err)
	}
	wrongFile := &CodedPacket{FileID: 6, Coeffs: make([]uint32, 4), Payload: make([]byte, 8)}
	if err := r.Absorb(wrongFile); !errors.Is(err, ErrWrongFile) {
		t.Errorf("wrong file error = %v", err)
	}
	badK := &CodedPacket{FileID: 5, Coeffs: make([]uint32, 3), Payload: make([]byte, 8)}
	if err := r.Absorb(badK); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad k error = %v", err)
	}
	badPayload := &CodedPacket{FileID: 5, Coeffs: make([]uint32, 4), Payload: make([]byte, 7)}
	if err := r.Absorb(badPayload); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad payload error = %v", err)
	}
}

func TestRecoderDoesNotAliasInputs(t *testing.T) {
	f := gf.MustNew(gf.Bits8)
	p := mustParams(t, f, 2, 8, 16)
	r, err := NewRecoder(p, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	pkt := &CodedPacket{FileID: 1, Coeffs: []uint32{1, 0}, Payload: make([]byte, 8)}
	if err := r.Absorb(pkt); err != nil {
		t.Fatal(err)
	}
	pkt.Coeffs[0] = 99
	pkt.Payload[0] = 99
	out, err := r.Emit()
	if err != nil {
		t.Fatal(err)
	}
	// Emitted packet is c * (1,0 | zero payload): coeff[1] must be 0 and
	// payload must be all zero regardless of caller mutation.
	if out.Coeffs[1] != 0 || !gf.IsZeroSlice(out.Payload) {
		t.Error("recoder aliased caller-owned packet memory")
	}
}
