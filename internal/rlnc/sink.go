package rlnc

import "sync"

// Stats is the message accounting shared by every decoder front end.
// Each message offered to Add lands in exactly one outcome bucket, so
// Received == Accepted + Rejected + Duplicate + Redundant always holds.
type Stats struct {
	Received  int // messages offered
	Accepted  int // innovative: increased the decoder's rank
	Rejected  int // failed validation or digest authentication
	Duplicate int // repeated message-ids
	Redundant int // authentic but linearly dependent (or rank already full)
}

// Sink is the streaming decode interface the fetch path codes against:
// something that consumes encoded messages until it has gathered a full
// generation. Both the sequential Decoder (wrapped in SyncSink for
// concurrent producers) and the parallel Pipeline implement it.
type Sink interface {
	// Add folds one message in and reports whether it was innovative.
	// Messages for other files and authentication failures return
	// errors; dependent or duplicate messages return (false, nil).
	Add(msg *Message) (bool, error)
	// Rank is the dimension of the span gathered so far.
	Rank() int
	// Done reports whether rank has reached k.
	Done() bool
	// Stats returns the message accounting so far.
	Stats() Stats
}

// ByteSink is the zero-copy extension of Sink: a decode engine that
// ingests serialized messages (16-byte header + payload) straight from
// wire frames. The Pipeline implements it natively — parse in place,
// digest the frame bytes, one copy into its arena — and SyncSink via an
// unmarshal shim, so callers can feed whichever engine they were given
// without caring which path is the fast one.
type ByteSink interface {
	Sink
	// AddBytes folds one serialized message in. The caller keeps
	// ownership of data; it may be reused once the call returns.
	AddBytes(data []byte) (bool, error)
}

var (
	_ Sink     = (*SyncSink)(nil)
	_ Sink     = (*Pipeline)(nil)
	_ ByteSink = (*SyncSink)(nil)
	_ ByteSink = (*Pipeline)(nil)
)

// SyncSink makes a sequential Decoder usable by concurrent producers by
// serializing every call under one mutex — the baseline the Pipeline's
// sharded design replaces (see DESIGN.md §9).
type SyncSink struct {
	mu  sync.Mutex
	dec *Decoder
}

// NewSyncSink wraps dec. The decoder must not be used directly while
// the wrapper is in use.
func NewSyncSink(dec *Decoder) *SyncSink { return &SyncSink{dec: dec} }

// Add implements Sink.
func (s *SyncSink) Add(msg *Message) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dec.Add(msg)
}

// AddBytes implements ByteSink by unmarshaling (the sequential engine
// keeps its own copy of the payload, so the copy is inherent here).
func (s *SyncSink) AddBytes(data []byte) (bool, error) {
	var msg Message
	if err := msg.UnmarshalBinary(data); err != nil {
		return false, err
	}
	return s.Add(&msg)
}

// Rank implements Sink.
func (s *SyncSink) Rank() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dec.Rank()
}

// Done implements Sink.
func (s *SyncSink) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dec.Done()
}

// Stats implements Sink.
func (s *SyncSink) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dec.Stats()
}

// Decode completes back-substitution on the wrapped decoder.
func (s *SyncSink) Decode() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dec.Decode()
}
