package rlnc

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"asymshare/internal/gf"
)

// pipelineGen builds an encoder plus the owner-published digest map for
// a deterministic generation.
func pipelineGen(t testing.TB, bits uint, k, pieceLen int, seed int64) (*Encoder, map[uint64]Digest, []byte) {
	t.Helper()
	f := gf.MustNew(bits)
	p, err := NewParams(f, k, pieceLen, k*pieceLen)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	data := randomData(rng, p.DataLen)
	enc, err := NewEncoder(p, 7, testSecret(), data)
	if err != nil {
		t.Fatal(err)
	}
	digests := make(map[uint64]Digest)
	for id := uint64(0); id < uint64(4*k); id++ {
		digests[id] = enc.Message(id).Digest()
	}
	return enc, digests, data
}

// scrambledStream builds a deterministic message stream containing
// innovative, duplicate, corrupt, and (past rank k) redundant messages.
func scrambledStream(enc *Encoder, rng *rand.Rand, k int) []*Message {
	var msgs []*Message
	for id := uint64(0); id < uint64(2*k); id++ {
		msgs = append(msgs, enc.Message(id))
	}
	// Duplicates of a few early messages.
	for id := uint64(0); id < 4; id++ {
		msgs = append(msgs, enc.Message(id).Clone())
	}
	// Corrupted payloads and a forged message-id.
	for i := 0; i < 3; i++ {
		bad := enc.Message(uint64(i + 4)).Clone()
		bad.Payload[rng.Intn(len(bad.Payload))] ^= 0x5a
		msgs = append(msgs, bad)
	}
	unknown := enc.Message(uint64(5 * k))
	msgs = append(msgs, unknown)
	rng.Shuffle(len(msgs), func(i, j int) { msgs[i], msgs[j] = msgs[j], msgs[i] })
	return msgs
}

// TestRowStreamMatchesRow pins the reusable RowStream to the one-shot
// derivation: the pipeline's coefficient replay depends on them being
// byte-for-byte the same stream.
func TestRowStreamMatchesRow(t *testing.T) {
	for _, bits := range []uint{gf.Bits4, gf.Bits8, gf.Bits16} {
		f := gf.MustNew(bits)
		for _, k := range []int{1, 7, 64, 200} {
			g, err := NewCoeffGenerator(f, k, testSecret())
			if err != nil {
				t.Fatal(err)
			}
			s := g.Stream()
			row := make([]uint32, k)
			for id := uint64(0); id < 20; id++ {
				s.RowInto(9, id, row)
				want := g.Row(9, id)
				for i := range row {
					if row[i] != want[i] {
						t.Fatalf("GF(2^%d) k=%d id=%d: stream row diverges at %d: %d != %d",
							bits, k, id, i, row[i], want[i])
					}
				}
			}
		}
	}
}

// TestPipelineMatchesSequentialDecoder is the differential test from
// the acceptance criteria: the same seeded stream of innovative,
// duplicate, corrupt and redundant messages must yield byte-identical
// output and identical accounting from the parallel pipeline and the
// sequential decoder.
func TestPipelineMatchesSequentialDecoder(t *testing.T) {
	for _, bits := range []uint{gf.Bits8, gf.Bits16} {
		for _, workers := range []int{1, 3} {
			t.Run(fmt.Sprintf("p%d_w%d", bits, workers), func(t *testing.T) {
				k := 24
				enc, digests, data := pipelineGen(t, bits, k, 96, int64(bits)*100+int64(workers))
				rng := rand.New(rand.NewSource(42))
				msgs := scrambledStream(enc, rng, k)

				dec, err := NewDecoder(enc.Params(), enc.FileID(), testSecret(), digests)
				if err != nil {
					t.Fatal(err)
				}
				pipe, err := NewPipeline(enc.Params(), enc.FileID(), testSecret(), digests,
					PipelineConfig{Workers: workers, SegmentBytes: 16})
				if err != nil {
					t.Fatal(err)
				}
				defer pipe.Close()

				for i, msg := range msgs {
					wantInnov, wantErr := dec.Add(msg.Clone())
					gotInnov, gotErr := pipe.Add(msg)
					if wantInnov != gotInnov {
						t.Fatalf("msg %d (id %d): innovative %v vs decoder %v",
							i, msg.MessageID, gotInnov, wantInnov)
					}
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("msg %d (id %d): err %v vs decoder %v",
							i, msg.MessageID, gotErr, wantErr)
					}
				}
				if ds, ps := dec.Stats(), pipe.Stats(); ds != ps {
					t.Fatalf("stats diverge: pipeline %+v, decoder %+v", ps, ds)
				}
				want, err := dec.Decode()
				if err != nil {
					t.Fatal(err)
				}
				got, err := pipe.Decode()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatal("pipeline output differs from sequential decoder")
				}
				if !bytes.Equal(got, data) {
					t.Fatal("pipeline output differs from original data")
				}
				// Decode is idempotent.
				again, err := pipe.Decode()
				if err != nil || !bytes.Equal(again, want) {
					t.Fatalf("second Decode = %v (equal=%v)", err, bytes.Equal(again, want))
				}
			})
		}
	}
}

// TestPipelineConcurrentProducers races N producers feeding interleaved
// innovative, redundant, duplicate and corrupt messages and checks the
// Stats invariants hold: every message lands in exactly one bucket and
// Accepted reaches exactly k. Run under -race via `make race-codec`.
func TestPipelineConcurrentProducers(t *testing.T) {
	const producers = 8
	k := 32
	enc, digests, data := pipelineGen(t, gf.Bits8, k, 256, 77)
	pipe, err := NewPipeline(enc.Params(), enc.FileID(), testSecret(), digests,
		PipelineConfig{Workers: 2, Verifiers: 4, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	var wg sync.WaitGroup
	sent := 0
	for pr := 0; pr < producers; pr++ {
		rng := rand.New(rand.NewSource(int64(1000 + pr)))
		msgs := scrambledStream(enc, rng, k)
		sent += len(msgs)
		wg.Add(1)
		go func(msgs []*Message) {
			defer wg.Done()
			for _, msg := range msgs {
				if _, err := pipe.Add(msg); err != nil {
					// Bad digests and wrong ids are part of the stream;
					// only unexpected errors matter.
					continue
				}
			}
		}(msgs)
	}
	wg.Wait()

	st := pipe.Stats()
	if st.Received != sent {
		t.Errorf("received %d, sent %d", st.Received, sent)
	}
	if got := st.Accepted + st.Rejected + st.Duplicate + st.Redundant; got != st.Received {
		t.Errorf("buckets sum to %d, received %d (%+v)", got, st.Received, st)
	}
	if st.Accepted != k {
		t.Errorf("accepted %d, want exactly %d", st.Accepted, k)
	}
	if !pipe.Done() || pipe.Rank() != k {
		t.Fatalf("rank %d, done %v", pipe.Rank(), pipe.Done())
	}
	got, err := pipe.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("concurrent decode mismatch")
	}
	tel := pipe.Telemetry()
	if tel.Jobs == 0 || tel.EliminatedBytes == 0 {
		t.Errorf("telemetry not recording: %+v", tel)
	}
}

// TestPipelineReset decodes two generations' worth of streams through
// one engine, exercising buffer recycling.
func TestPipelineReset(t *testing.T) {
	k := 16
	enc, digests, data := pipelineGen(t, gf.Bits8, k, 64, 5)
	pipe, err := NewPipeline(enc.Params(), enc.FileID(), testSecret(), digests,
		PipelineConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	out := make([]byte, enc.Params().DataLen)
	for round := 0; round < 3; round++ {
		for id := uint64(0); pipe.Rank() < k; id++ {
			if _, err := pipe.Add(enc.Message(id)); err != nil {
				t.Fatal(err)
			}
		}
		if err := pipe.DecodeInto(out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round %d: decode mismatch", round)
		}
		pipe.Reset()
		if pipe.Rank() != 0 || pipe.Done() {
			t.Fatal("reset did not clear rank")
		}
		if st := pipe.Stats(); st != (Stats{}) {
			t.Fatalf("reset did not clear stats: %+v", st)
		}
	}
}

// TestPipelineErrors pins the error surface: wrong file, bad payload
// length, forged digests, decode before rank k, use after Close.
func TestPipelineErrors(t *testing.T) {
	k := 8
	enc, digests, _ := pipelineGen(t, gf.Bits8, k, 32, 9)
	pipe, err := NewPipeline(enc.Params(), enc.FileID(), testSecret(), digests,
		PipelineConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := pipe.Decode(); err == nil {
		t.Error("early Decode succeeded")
	}
	wrong := enc.Message(0).Clone()
	wrong.FileID++
	if _, err := pipe.Add(wrong); err == nil {
		t.Error("wrong-file message accepted")
	}
	short := enc.Message(0).Clone()
	short.Payload = short.Payload[:4]
	if _, err := pipe.Add(short); err == nil {
		t.Error("short payload accepted")
	}
	forged := enc.Message(1).Clone()
	forged.Payload[0] ^= 1
	if _, err := pipe.Add(forged); err == nil {
		t.Error("forged payload accepted")
	}
	st := pipe.Stats()
	if st.Received != 3 || st.Rejected != 3 {
		t.Errorf("stats after rejects: %+v", st)
	}

	pipe.Close()
	pipe.Close() // idempotent
	if _, err := pipe.Add(enc.Message(0)); err == nil {
		t.Error("Add after Close succeeded")
	}
	if _, err := pipe.Decode(); err == nil {
		t.Error("Decode after Close succeeded")
	}
}

// TestPipelineSteadyStateAllocs is the acceptance-criteria benchmark
// assertion: once warmed up, a full feed-decode-reset cycle performs
// zero heap allocations per accepted message (same pattern as
// internal/metrics' TestHotPathAllocFree).
func TestPipelineSteadyStateAllocs(t *testing.T) {
	k := 16
	enc, digests, _ := pipelineGen(t, gf.Bits8, k, 512, 13)
	pipe, err := NewPipeline(enc.Params(), enc.FileID(), testSecret(), digests,
		PipelineConfig{Workers: 1, Verifiers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	msgs := make([]*Message, 0, 2*k)
	for id := uint64(0); id < uint64(2*k); id++ {
		msgs = append(msgs, enc.Message(id))
	}
	out := make([]byte, enc.Params().DataLen)
	cycle := func() {
		for _, msg := range msgs {
			if _, err := pipe.Add(msg); err != nil {
				t.Fatal(err)
			}
		}
		if err := pipe.DecodeInto(out); err != nil {
			t.Fatal(err)
		}
		pipe.Reset()
	}
	cycle() // warm up lazy hash state and map buckets
	if n := testing.AllocsPerRun(10, cycle); n != 0 {
		t.Fatalf("steady-state decode allocates %v times per cycle, want 0", n)
	}
}

// benchPipelineDecode measures full-generation decode throughput
// (bytes of recovered data per second) for one engine.
func benchDecode(b *testing.B, k, pieceLen int, pipeline bool) {
	enc, _, _ := pipelineGen(b, gf.Bits8, k, pieceLen, 21)
	msgs := make([]*Message, 0, k+4)
	for id := uint64(0); id < uint64(k+4); id++ {
		msgs = append(msgs, enc.Message(id))
	}
	out := make([]byte, enc.Params().DataLen)
	b.SetBytes(int64(enc.Params().DataLen))
	b.ResetTimer()
	if pipeline {
		pipe, err := NewPipeline(enc.Params(), enc.FileID(), testSecret(), nil, PipelineConfig{})
		if err != nil {
			b.Fatal(err)
		}
		defer pipe.Close()
		for i := 0; i < b.N; i++ {
			for _, msg := range msgs {
				if pipe.Done() {
					break
				}
				if _, err := pipe.Add(msg); err != nil {
					b.Fatal(err)
				}
			}
			if err := pipe.DecodeInto(out); err != nil {
				b.Fatal(err)
			}
			pipe.Reset()
		}
		return
	}
	for i := 0; i < b.N; i++ {
		dec, err := NewDecoder(enc.Params(), enc.FileID(), testSecret(), nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, msg := range msgs {
			if dec.Done() {
				break
			}
			if _, err := dec.Add(msg); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := dec.Decode(); err != nil {
			b.Fatal(err)
		}
	}
}

// 1 MiB generation at k=64: the acceptance-criteria configuration.
func BenchmarkDecodeSequential(b *testing.B) { benchDecode(b, 64, 1<<20/64, false) }
func BenchmarkDecodePipeline(b *testing.B)   { benchDecode(b, 64, 1<<20/64, true) }
