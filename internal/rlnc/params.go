// Package rlnc implements the random linear coding scheme of Section III
// of the paper: a file of b bits is split into k chunks, each an m-symbol
// vector over GF(2^p), and encoded messages Y_i = sum_j beta_ij * X_j are
// produced with coefficient rows beta_i derived from a per-file secret
// key (never transmitted), so storage peers cannot decode what they hold.
package rlnc

import (
	"errors"
	"fmt"

	"asymshare/internal/gf"
)

var (
	// ErrBadParams is returned when coding parameters are inconsistent.
	ErrBadParams = errors.New("rlnc: invalid parameters")

	// ErrNotDecodable is returned by Decode before rank k is reached.
	ErrNotDecodable = errors.New("rlnc: not enough innovative messages to decode")

	// ErrDataTooLarge is returned when the input does not fit in k chunks.
	ErrDataTooLarge = errors.New("rlnc: data exceeds generation capacity")

	// ErrSingular is returned when inverting a rank-deficient or
	// non-square matrix.
	ErrSingular = errors.New("rlnc: matrix is singular")
)

// Params fixes the coding geometry of one generation: the field, the
// number of chunks k, the symbols per chunk m, and the exact byte length
// of the original data (needed to strip padding after decoding).
type Params struct {
	Field   gf.Field
	K       int // chunks per generation (decoding needs k innovative messages)
	M       int // symbols per chunk
	DataLen int // original data length in bytes; <= K * ChunkBytes()
}

// NewParams validates and returns coding parameters.
func NewParams(field gf.Field, k, m, dataLen int) (Params, error) {
	p := Params{Field: field, K: k, M: m, DataLen: dataLen}
	if field == nil {
		return Params{}, fmt.Errorf("%w: nil field", ErrBadParams)
	}
	if k <= 0 || m <= 0 || dataLen < 0 {
		return Params{}, fmt.Errorf("%w: k=%d m=%d dataLen=%d", ErrBadParams, k, m, dataLen)
	}
	if m*int(field.Bits())%8 != 0 {
		return Params{}, fmt.Errorf("%w: chunk of %d GF(2^%d) symbols is not byte-aligned",
			ErrBadParams, m, field.Bits())
	}
	if dataLen > p.CapacityBytes() {
		return Params{}, fmt.Errorf("%w: %d bytes > capacity %d", ErrDataTooLarge, dataLen, p.CapacityBytes())
	}
	return p, nil
}

// ParamsForSize chooses k so that dataLen bytes fit into chunks of m
// symbols over the given field — the construction behind Table I of the
// paper (k = b / (m * p) for b bits of data).
func ParamsForSize(field gf.Field, dataLen, m int) (Params, error) {
	if field == nil {
		return Params{}, fmt.Errorf("%w: nil field", ErrBadParams)
	}
	if m <= 0 || dataLen <= 0 {
		return Params{}, fmt.Errorf("%w: m=%d dataLen=%d", ErrBadParams, m, dataLen)
	}
	chunkBytes := gf.VecBytes(field.Bits(), m)
	if m*int(field.Bits())%8 != 0 {
		return Params{}, fmt.Errorf("%w: chunk of %d GF(2^%d) symbols is not byte-aligned",
			ErrBadParams, m, field.Bits())
	}
	k := (dataLen + chunkBytes - 1) / chunkBytes
	return NewParams(field, k, m, dataLen)
}

// ChunkBytes returns the packed byte length of one chunk (and of one
// encoded payload, since coding preserves length).
func (p Params) ChunkBytes() int {
	return gf.VecBytes(p.Field.Bits(), p.M)
}

// CapacityBytes returns the maximum data length the generation can hold.
func (p Params) CapacityBytes() int {
	return p.K * p.ChunkBytes()
}

// MessageBytes returns the wire size of one encoded message, including
// the 16-byte plaintext header of Fig. 3 (8-byte file-id, 8-byte
// message-id).
func (p Params) MessageBytes() int {
	return headerBytes + p.ChunkBytes()
}

// Overhead returns the fraction of transmitted bytes that is header
// rather than payload, a measure of how the choice of m dilutes goodput.
func (p Params) Overhead() float64 {
	return float64(headerBytes) / float64(p.MessageBytes())
}

// Validate re-checks the invariants of p (useful after deserialization).
func (p Params) Validate() error {
	_, err := NewParams(p.Field, p.K, p.M, p.DataLen)
	return err
}

func (p Params) String() string {
	bits := uint(0)
	if p.Field != nil {
		bits = p.Field.Bits()
	}
	return fmt.Sprintf("rlnc.Params{GF(2^%d), k=%d, m=%d, data=%dB}", bits, p.K, p.M, p.DataLen)
}
