package rlnc

// Coefficient-space elimination with recorded row operations. The
// pipeline runs reduceRowCoeffs under its small acceptance lock — a
// K-element pass per echelon row, no payload touched — and replays the
// recorded steps over the payload later, outside the lock, segment by
// segment on the worker pool. Replaying the identical factor sequence
// over GF arithmetic is exact, which is what keeps Pipeline output
// byte-identical to the sequential Decoder.

import "asymshare/internal/gf"

// elimStep records one row operation: fold factor times echelon row
// src into the candidate.
type elimStep struct {
	src    int32
	factor uint32
}

// reduceRowCoeffs reduces cand in place against the echelon rows
// (unit pivots assumed, as reduceRow leaves them), appending each
// applied operation to steps — pass a reused steps[:0] to stay
// allocation-free. It returns the extended steps, the normalization
// scale applied to the surviving pivot (1 when none), and whether cand
// was innovative. The recorded operation sequence is exactly the one
// reduceRow would apply to the payload.
func reduceRowCoeffs(f gf.Field, cand []uint32, echelon [][]uint32, pivots []int, steps []elimStep) ([]elimStep, uint32, bool) {
	for i, er := range echelon {
		p := pivots[i]
		factor := cand[p]
		if factor == 0 {
			continue
		}
		addScaledRow(f, cand, er, factor)
		steps = append(steps, elimStep{src: int32(i), factor: factor})
	}
	lead := leadingIndex(cand)
	if lead < 0 {
		return steps, 1, false
	}
	inv, err := f.Inv(cand[lead])
	if err != nil {
		return steps, 1, false // unreachable: cand[lead] != 0
	}
	if inv != 1 {
		scaleRow(f, cand, inv)
	}
	return steps, inv, true
}
