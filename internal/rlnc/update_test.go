package rlnc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"asymshare/internal/gf"
)

func TestDeltaPatchEqualsReencode(t *testing.T) {
	// Patching old messages with delta messages must reproduce exactly
	// the messages a fresh encoder of the new content would mint.
	rng := rand.New(rand.NewSource(71))
	for _, f := range testFields(t) {
		k := 6
		p := mustParams(t, f, k, 16, k*gf.VecBytes(f.Bits(), 16))
		oldData := randomData(rng, p.DataLen)
		newData := bytes.Clone(oldData)
		// Modify a few scattered bytes.
		for _, off := range []int{0, 7, p.DataLen / 2, p.DataLen - 1} {
			newData[off] ^= 0x5A
		}
		oldEnc, err := NewEncoder(p, 3, testSecret(), oldData)
		if err != nil {
			t.Fatal(err)
		}
		newEnc, err := NewEncoder(p, 3, testSecret(), newData)
		if err != nil {
			t.Fatal(err)
		}
		delta, err := NewDeltaEncoder(p, 3, testSecret(), oldData, newData)
		if err != nil {
			t.Fatal(err)
		}
		if delta.Unchanged() {
			t.Fatal("Unchanged = true for modified data")
		}
		for id := uint64(0); id < uint64(2*k); id++ {
			stored := oldEnc.Message(id)
			if err := ApplyDelta(stored, delta.Delta(id)); err != nil {
				t.Fatal(err)
			}
			want := newEnc.Message(id)
			if !stored.Equal(want) {
				t.Fatalf("GF(2^%d): patched message %d != re-encoded", f.Bits(), id)
			}
		}
	}
}

func TestDeltaDecodeAfterPatch(t *testing.T) {
	// End-to-end: patch a stored batch, then decode the new version
	// from the patched messages.
	rng := rand.New(rand.NewSource(72))
	f := gf.MustNew(gf.Bits32)
	k := 8
	p := mustParams(t, f, k, 8, k*32)
	oldData := randomData(rng, p.DataLen)
	newData := randomData(rng, p.DataLen)

	oldEnc, err := NewEncoder(p, 4, testSecret(), oldData)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := oldEnc.BatchForPeer(0, k)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := NewDeltaEncoder(p, 4, testSecret(), oldData, newData)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range batch {
		if err := ApplyDelta(msg, delta.Delta(msg.MessageID)); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := NewDecoder(p, 4, testSecret(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range batch {
		if _, err := dec.Add(msg); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Fatal("decode after patch != new version")
	}
}

func TestDeltaNoopDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	f := gf.MustNew(gf.Bits8)
	k := 4
	p := mustParams(t, f, k, 16, k*16)
	data := randomData(rng, p.DataLen)

	// Identical versions: everything is a no-op.
	same, err := NewDeltaEncoder(p, 5, testSecret(), data, data)
	if err != nil {
		t.Fatal(err)
	}
	if !same.Unchanged() {
		t.Error("Unchanged = false for identical data")
	}
	if !same.IsNoop(0) || !same.IsNoop(99) {
		t.Error("IsNoop = false for identical data")
	}

	// A change confined to chunk 0: messages still involve all chunks
	// (dense coefficients), so deltas are non-zero — but the delta
	// payload is exactly beta_0 * D_0, verified via linearity above.
	modified := bytes.Clone(data)
	modified[0] ^= 1
	diff, err := NewDeltaEncoder(p, 5, testSecret(), data, modified)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Unchanged() {
		t.Error("Unchanged = true for modified data")
	}
}

func TestApplyDeltaValidation(t *testing.T) {
	a := &Message{FileID: 1, MessageID: 2, Payload: []byte{1, 2}}
	wrongFile := &Message{FileID: 9, MessageID: 2, Payload: []byte{1, 2}}
	wrongID := &Message{FileID: 1, MessageID: 3, Payload: []byte{1, 2}}
	wrongLen := &Message{FileID: 1, MessageID: 2, Payload: []byte{1}}
	if err := ApplyDelta(a, wrongFile); !errors.Is(err, ErrBadParams) {
		t.Errorf("wrong file error = %v", err)
	}
	if err := ApplyDelta(a, wrongID); !errors.Is(err, ErrBadParams) {
		t.Errorf("wrong id error = %v", err)
	}
	if err := ApplyDelta(a, wrongLen); !errors.Is(err, ErrBadParams) {
		t.Errorf("wrong len error = %v", err)
	}
}

func TestNewDeltaEncoderValidation(t *testing.T) {
	f := gf.MustNew(gf.Bits8)
	p := mustParams(t, f, 4, 8, 32)
	if _, err := NewDeltaEncoder(p, 1, testSecret(), make([]byte, 32), make([]byte, 31)); !errors.Is(err, ErrBadParams) {
		t.Errorf("size mismatch error = %v", err)
	}
}
