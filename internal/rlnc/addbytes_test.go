package rlnc

// Differential coverage for the zero-copy ingest path: AddBytes must be
// observationally identical to UnmarshalBinary + Add for every message
// class (innovative, duplicate, redundant, corrupt, foreign, short),
// and must hold the same steady-state zero-allocation guarantee.

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"asymshare/internal/gf"
)

// marshal serializes msg or fails the test.
func marshal(t testing.TB, msg *Message) []byte {
	t.Helper()
	buf, err := msg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestAddBytesMatchesAdd feeds the same scrambled stream — innovative,
// duplicate, corrupt and redundant messages — to one pipeline via Add
// and another via AddBytes, and requires identical accounting, identical
// per-message verdicts, and identical decoded output.
func TestAddBytesMatchesAdd(t *testing.T) {
	k := 12
	enc, digests, data := pipelineGen(t, gf.Bits8, k, 256, 41)
	rng := rand.New(rand.NewSource(99))
	msgs := scrambledStream(enc, rng, k)

	byMsg, err := NewPipeline(enc.Params(), enc.FileID(), testSecret(), digests, PipelineConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer byMsg.Close()
	byBytes, err := NewPipeline(enc.Params(), enc.FileID(), testSecret(), digests, PipelineConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer byBytes.Close()

	for i, msg := range msgs {
		okA, errA := byMsg.Add(msg.Clone())
		okB, errB := byBytes.AddBytes(marshal(t, msg))
		if okA != okB || (errA == nil) != (errB == nil) {
			t.Fatalf("message %d: Add = (%v, %v), AddBytes = (%v, %v)", i, okA, errA, okB, errB)
		}
	}
	if byMsg.Stats() != byBytes.Stats() {
		t.Fatalf("stats diverge: Add %+v, AddBytes %+v", byMsg.Stats(), byBytes.Stats())
	}
	outA, err := byMsg.Decode()
	if err != nil {
		t.Fatal(err)
	}
	outB, err := byBytes.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(outA, outB) || !bytes.Equal(outA, data) {
		t.Fatal("decoded outputs diverge")
	}
}

// TestAddBytesRejects pins the early error classes: short buffers,
// foreign files, wrong payload lengths and forged payloads must fail
// with the same sentinel errors Add uses.
func TestAddBytesRejects(t *testing.T) {
	k := 8
	enc, digests, _ := pipelineGen(t, gf.Bits8, k, 128, 7)
	pipe, err := NewPipeline(enc.Params(), enc.FileID(), testSecret(), digests, PipelineConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	if _, err := pipe.AddBytes(make([]byte, MessageHeaderBytes-1)); !errors.Is(err, ErrShortMessage) {
		t.Errorf("short buffer error = %v", err)
	}
	foreign := enc.Message(0).Clone()
	foreign.FileID++
	if _, err := pipe.AddBytes(marshal(t, foreign)); !errors.Is(err, ErrWrongFile) {
		t.Errorf("foreign file error = %v", err)
	}
	short := enc.Message(0).Clone()
	short.Payload = short.Payload[:8]
	if _, err := pipe.AddBytes(marshal(t, short)); !errors.Is(err, ErrBadParams) {
		t.Errorf("short payload error = %v", err)
	}
	forged := marshal(t, enc.Message(1))
	forged[len(forged)-1] ^= 1
	if _, err := pipe.AddBytes(forged); !errors.Is(err, ErrBadDigest) {
		t.Errorf("forged payload error = %v", err)
	}
	// The short buffer is a parse failure — the legacy path would die
	// in UnmarshalBinary before reaching the sink — so only the three
	// well-formed rejects are accounted.
	st := pipe.Stats()
	if st.Received != 3 || st.Rejected != 3 {
		t.Errorf("stats after rejects: %+v", st)
	}
}

// TestAddBytesCallerOwnsBuffer verifies the documented contract that
// the input may be recycled immediately: the same backing buffer is
// reused (and clobbered) for every message, and the decode must still
// produce the original data.
func TestAddBytesCallerOwnsBuffer(t *testing.T) {
	k := 8
	enc, digests, data := pipelineGen(t, gf.Bits8, k, 128, 17)
	pipe, err := NewPipeline(enc.Params(), enc.FileID(), testSecret(), digests, PipelineConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	scratch := make([]byte, 0, MessageHeaderBytes+enc.Params().ChunkBytes())
	for id := uint64(0); !pipe.Done(); id++ {
		scratch = append(scratch[:0], marshal(t, enc.Message(id))...)
		if _, err := pipe.AddBytes(scratch); err != nil {
			t.Fatal(err)
		}
		// Clobber the buffer the way a frame reader recycling it would.
		for i := range scratch {
			scratch[i] = 0xAA
		}
	}
	out, err := pipe.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("decode diverged after input buffer reuse")
	}
}

// TestSyncSinkAddBytes covers the compatibility shim on the sequential
// engine.
func TestSyncSinkAddBytes(t *testing.T) {
	k := 8
	enc, digests, data := pipelineGen(t, gf.Bits8, k, 128, 23)
	dec, err := NewDecoder(enc.Params(), enc.FileID(), testSecret(), digests)
	if err != nil {
		t.Fatal(err)
	}
	sink := NewSyncSink(dec)
	for id := uint64(0); !sink.Done(); id++ {
		if _, err := sink.AddBytes(marshal(t, enc.Message(id))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sink.AddBytes([]byte{1, 2}); !errors.Is(err, ErrShortMessage) {
		t.Errorf("short buffer error = %v", err)
	}
	out, err := sink.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("decode diverged")
	}
}

// TestAddBytesSteadyStateAllocs is the receive-side half of the
// zero-copy proof: a warmed pipeline ingests serialized frames and
// completes a decode-reset cycle without a single heap allocation.
func TestAddBytesSteadyStateAllocs(t *testing.T) {
	k := 16
	enc, digests, _ := pipelineGen(t, gf.Bits8, k, 512, 13)
	pipe, err := NewPipeline(enc.Params(), enc.FileID(), testSecret(), digests,
		PipelineConfig{Workers: 1, Verifiers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	frames := make([][]byte, 0, 2*k)
	for id := uint64(0); id < uint64(2*k); id++ {
		frames = append(frames, marshal(t, enc.Message(id)))
	}
	out := make([]byte, enc.Params().DataLen)
	cycle := func() {
		for _, frame := range frames {
			if _, err := pipe.AddBytes(frame); err != nil {
				t.Fatal(err)
			}
		}
		if err := pipe.DecodeInto(out); err != nil {
			t.Fatal(err)
		}
		pipe.Reset()
	}
	cycle() // warm up lazy hash state and map buckets
	if n := testing.AllocsPerRun(10, cycle); n != 0 {
		t.Fatalf("steady-state byte ingest allocates %v times per cycle, want 0", n)
	}
}
