package rlnc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"asymshare/internal/gf"
)

func testSecret() []byte {
	s := make([]byte, SecretLen)
	for i := range s {
		s[i] = byte(i*7 + 3)
	}
	return s
}

func mustParams(t *testing.T, f gf.Field, k, m, dataLen int) Params {
	t.Helper()
	p, err := NewParams(f, k, m, dataLen)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func randomData(rng *rand.Rand, n int) []byte {
	d := make([]byte, n)
	rng.Read(d)
	return d
}

func TestParamsValidation(t *testing.T) {
	f := gf.MustNew(gf.Bits8)
	if _, err := NewParams(nil, 4, 8, 10); !errors.Is(err, ErrBadParams) {
		t.Errorf("nil field error = %v", err)
	}
	if _, err := NewParams(f, 0, 8, 10); !errors.Is(err, ErrBadParams) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := NewParams(f, 4, 0, 10); !errors.Is(err, ErrBadParams) {
		t.Errorf("m=0 error = %v", err)
	}
	if _, err := NewParams(f, 4, 8, 4*8+1); !errors.Is(err, ErrDataTooLarge) {
		t.Errorf("oversize error = %v", err)
	}
	// GF(16) with odd m is not byte aligned.
	f4 := gf.MustNew(gf.Bits4)
	if _, err := NewParams(f4, 4, 3, 2); !errors.Is(err, ErrBadParams) {
		t.Errorf("unaligned error = %v", err)
	}
}

func TestParamsForSizeMatchesTableI(t *testing.T) {
	// Table I of the paper: number of messages k to encode 1 MB of data
	// for field size q and message length m symbols.
	const mb = 1 << 20
	want := map[uint]map[int]int{
		gf.Bits4:  {1 << 13: 256, 1 << 14: 128, 1 << 15: 64, 1 << 16: 32, 1 << 17: 16, 1 << 18: 8},
		gf.Bits8:  {1 << 13: 128, 1 << 14: 64, 1 << 15: 32, 1 << 16: 16, 1 << 17: 8, 1 << 18: 4},
		gf.Bits16: {1 << 13: 64, 1 << 14: 32, 1 << 15: 16, 1 << 16: 8, 1 << 17: 4, 1 << 18: 2},
		gf.Bits32: {1 << 13: 32, 1 << 14: 16, 1 << 15: 8, 1 << 16: 4, 1 << 17: 2, 1 << 18: 1},
	}
	for bits, row := range want {
		f := gf.MustNew(bits)
		for m, k := range row {
			p, err := ParamsForSize(f, mb, m)
			if err != nil {
				t.Fatalf("ParamsForSize(GF(2^%d), 1MB, %d): %v", bits, m, err)
			}
			if p.K != k {
				t.Errorf("GF(2^%d) m=%d: k = %d, want %d", bits, m, p.K, k)
			}
		}
	}
}

func TestParamsGeometry(t *testing.T) {
	f := gf.MustNew(gf.Bits32)
	p := mustParams(t, f, 8, 1<<15, 1<<20)
	if got := p.ChunkBytes(); got != 1<<17 {
		t.Errorf("ChunkBytes = %d", got)
	}
	if got := p.CapacityBytes(); got != 1<<20 {
		t.Errorf("CapacityBytes = %d", got)
	}
	if got := p.MessageBytes(); got != 16+1<<17 {
		t.Errorf("MessageBytes = %d", got)
	}
	if p.Overhead() <= 0 || p.Overhead() >= 0.001 {
		t.Errorf("Overhead = %v out of expected range", p.Overhead())
	}
}

func TestCoeffGeneratorDeterministic(t *testing.T) {
	f := gf.MustNew(gf.Bits8)
	g1, err := NewCoeffGenerator(f, 16, testSecret())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewCoeffGenerator(f, 16, testSecret())
	if err != nil {
		t.Fatal(err)
	}
	r1 := g1.Row(7, 42)
	r2 := g2.Row(7, 42)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("same secret and ids produced different rows")
		}
	}
	// Different message id, file id, or secret changes the row.
	if rowsEqual(r1, g1.Row(7, 43)) {
		t.Error("different message-id produced identical row")
	}
	if rowsEqual(r1, g1.Row(8, 42)) {
		t.Error("different file-id produced identical row")
	}
	other, err := NewCoeffGenerator(f, 16, []byte("other secret"))
	if err != nil {
		t.Fatal(err)
	}
	if rowsEqual(r1, other.Row(7, 42)) {
		t.Error("different secret produced identical row")
	}
}

func rowsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCoeffGeneratorValidation(t *testing.T) {
	f := gf.MustNew(gf.Bits8)
	if _, err := NewCoeffGenerator(nil, 4, testSecret()); !errors.Is(err, ErrBadParams) {
		t.Errorf("nil field error = %v", err)
	}
	if _, err := NewCoeffGenerator(f, 0, testSecret()); !errors.Is(err, ErrBadParams) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := NewCoeffGenerator(f, 4, nil); !errors.Is(err, ErrBadParams) {
		t.Errorf("empty secret error = %v", err)
	}
}

func TestCoeffGeneratorCopiesSecret(t *testing.T) {
	f := gf.MustNew(gf.Bits8)
	secret := testSecret()
	g, err := NewCoeffGenerator(f, 8, secret)
	if err != nil {
		t.Fatal(err)
	}
	before := g.Row(1, 1)
	secret[0] ^= 0xFF // caller mutates its copy
	after := g.Row(1, 1)
	if !rowsEqual(before, after) {
		t.Error("generator shares the caller's secret slice")
	}
}

func TestCoeffDistributionRoughlyUniform(t *testing.T) {
	// Over GF(16), coefficient values should be close to uniform; a
	// grossly biased generator would break the independence arguments.
	f := gf.MustNew(gf.Bits4)
	g, err := NewCoeffGenerator(f, 64, testSecret())
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 16)
	total := 0
	for id := uint64(0); id < 200; id++ {
		for _, v := range g.Row(1, id) {
			counts[v]++
			total++
		}
	}
	expect := float64(total) / 16
	for v, c := range counts {
		if float64(c) < 0.7*expect || float64(c) > 1.3*expect {
			t.Errorf("value %d count %d deviates from uniform expectation %.0f", v, c, expect)
		}
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{FileID: 0xDEADBEEF01020304, MessageID: 42, Payload: []byte{1, 2, 3, 4}}
	buf, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 16+4 {
		t.Fatalf("serialized length %d", len(buf))
	}
	var got Message
	if err := got.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if got.FileID != m.FileID || got.MessageID != m.MessageID || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Unmarshal copies the payload.
	buf[16] ^= 0xFF
	if got.Payload[0] == buf[16] {
		t.Error("UnmarshalBinary aliases input buffer")
	}
}

func TestMessageUnmarshalShort(t *testing.T) {
	var m Message
	if err := m.UnmarshalBinary(make([]byte, 15)); !errors.Is(err, ErrShortMessage) {
		t.Errorf("short unmarshal error = %v", err)
	}
}

func TestMessageReadWrite(t *testing.T) {
	m := &Message{FileID: 9, MessageID: 10, Payload: []byte{5, 6, 7, 8, 9, 10}}
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil || n != int64(16+6) {
		t.Fatalf("WriteTo = %d, %v", n, err)
	}
	got, err := ReadMessage(&buf, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got.FileID != 9 || got.MessageID != 10 || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("ReadMessage mismatch: %+v", got)
	}
}

func TestMessageDigestDetectsTampering(t *testing.T) {
	m := &Message{FileID: 1, MessageID: 2, Payload: []byte{1, 2, 3, 4}}
	d := m.Digest()
	tampered := m.Clone()
	tampered.Payload[0] ^= 1
	if tampered.Digest() == d {
		t.Error("payload tampering not reflected in digest")
	}
	renamed := m.Clone()
	renamed.MessageID = 3
	if renamed.Digest() == d {
		t.Error("message-id tampering not reflected in digest")
	}
}

func TestEncodeDecodeRoundTripAllFields(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, f := range testFields(t) {
		k, m := 12, 32
		p := mustParams(t, f, k, m, k*gf.VecBytes(f.Bits(), m)-5) // exercise padding
		data := randomData(rng, p.DataLen)
		enc, err := NewEncoder(p, 77, testSecret(), data)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := NewDecoder(p, 77, testSecret(), nil)
		if err != nil {
			t.Fatal(err)
		}
		for id := uint64(0); !dec.Done(); id++ {
			if id > uint64(4*k) {
				t.Fatalf("GF(2^%d): needed more than %d messages for k=%d", f.Bits(), 4*k, k)
			}
			if _, err := dec.Add(enc.Message(id)); err != nil {
				t.Fatal(err)
			}
		}
		got, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("GF(2^%d): decode mismatch", f.Bits())
		}
	}
}

func TestDecodeFromSingleBatch(t *testing.T) {
	// A batch produced by BatchForPeer is guaranteed invertible: exactly
	// k messages from one peer must always decode.
	rng := rand.New(rand.NewSource(33))
	for _, f := range testFields(t) {
		k := 8
		p := mustParams(t, f, k, 16, k*gf.VecBytes(f.Bits(), 16))
		data := randomData(rng, p.DataLen)
		enc, err := NewEncoder(p, 5, testSecret(), data)
		if err != nil {
			t.Fatal(err)
		}
		for peer := 0; peer < 4; peer++ {
			batch, err := enc.BatchForPeer(peer, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != k {
				t.Fatalf("batch size %d, want %d", len(batch), k)
			}
			dec, err := NewDecoder(p, 5, testSecret(), nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, msg := range batch {
				if _, err := dec.Add(msg); err != nil {
					t.Fatal(err)
				}
			}
			if !dec.Done() {
				t.Fatalf("GF(2^%d) peer %d: batch of k messages did not reach rank k", f.Bits(), peer)
			}
			got, err := dec.Decode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("GF(2^%d) peer %d: decode mismatch", f.Bits(), peer)
			}
		}
	}
}

func TestDecodeAcrossPeers(t *testing.T) {
	// Messages drawn from different peers' batches combine into a
	// decodable set w.h.p. — the parallel-download path.
	rng := rand.New(rand.NewSource(35))
	f := gf.MustNew(gf.Bits32)
	k := 9
	p := mustParams(t, f, k, 8, k*gf.VecBytes(f.Bits(), 8))
	data := randomData(rng, p.DataLen)
	enc, err := NewEncoder(p, 6, testSecret(), data)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(p, 6, testSecret(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Three messages from each of three peers.
	for peer := 0; peer < 3; peer++ {
		batch, err := enc.BatchForPeer(peer, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := dec.Add(batch[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !dec.Done() {
		t.Fatalf("rank %d after 9 cross-peer messages", dec.Rank())
	}
	got, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-peer decode mismatch")
	}
}

func TestDecoderRejectsForgeries(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	f := gf.MustNew(gf.Bits8)
	k := 6
	p := mustParams(t, f, k, 16, k*16)
	data := randomData(rng, p.DataLen)
	enc, err := NewEncoder(p, 3, testSecret(), data)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := enc.BatchForPeer(0, k)
	if err != nil {
		t.Fatal(err)
	}
	digests := make(map[uint64]Digest, k)
	for _, msg := range batch {
		digests[msg.MessageID] = msg.Digest()
	}
	dec, err := NewDecoder(p, 3, testSecret(), digests)
	if err != nil {
		t.Fatal(err)
	}

	// A forged payload must be rejected.
	forged := batch[0].Clone()
	forged.Payload[3] ^= 0x55
	if _, err := dec.Add(forged); !errors.Is(err, ErrBadDigest) {
		t.Errorf("forged message error = %v, want ErrBadDigest", err)
	}
	// An unknown message-id must be rejected when digests are pinned.
	unknown := enc.Message(batchStride * 99)
	if _, err := dec.Add(unknown); !errors.Is(err, ErrBadDigest) {
		t.Errorf("unknown-id message error = %v, want ErrBadDigest", err)
	}
	// Authentic messages still decode.
	for _, msg := range batch {
		if _, err := dec.Add(msg); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decode after forgery attempts mismatch")
	}
	if st := dec.Stats(); st.Rejected != 2 {
		t.Errorf("rejected = %d, want 2", st.Rejected)
	}
}

func TestDecoderDuplicateAndWrongFile(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	f := gf.MustNew(gf.Bits8)
	k := 4
	p := mustParams(t, f, k, 8, k*8)
	data := randomData(rng, p.DataLen)
	enc, err := NewEncoder(p, 1, testSecret(), data)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(p, 1, testSecret(), nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := enc.Message(0)
	if innovative, err := dec.Add(msg); err != nil || !innovative {
		t.Fatalf("first Add = %v, %v", innovative, err)
	}
	if innovative, err := dec.Add(msg.Clone()); err != nil || innovative {
		t.Fatalf("duplicate Add = %v, %v; want false, nil", innovative, err)
	}
	wrong := msg.Clone()
	wrong.FileID = 2
	if _, err := dec.Add(wrong); !errors.Is(err, ErrWrongFile) {
		t.Errorf("wrong-file error = %v", err)
	}
	short := msg.Clone()
	short.Payload = short.Payload[:4]
	if _, err := dec.Add(short); !errors.Is(err, ErrBadParams) {
		t.Errorf("short-payload error = %v", err)
	}
	if st := dec.Stats(); st.Duplicate != 1 {
		t.Errorf("duplicates = %d, want 1", st.Duplicate)
	}
}

func TestDecodeBeforeDone(t *testing.T) {
	f := gf.MustNew(gf.Bits8)
	p := mustParams(t, f, 4, 8, 32)
	dec, err := NewDecoder(p, 1, testSecret(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(); !errors.Is(err, ErrNotDecodable) {
		t.Errorf("early Decode error = %v", err)
	}
}

func TestAddRawMode(t *testing.T) {
	// Classic coefficients-in-header mode: random rows, explicit coeffs.
	rng := rand.New(rand.NewSource(41))
	f := gf.MustNew(gf.Bits8)
	k := 10
	p := mustParams(t, f, k, 16, k*16)
	data := randomData(rng, p.DataLen)
	enc, err := NewEncoder(p, 8, testSecret(), data)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(p, 8, testSecret(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Feed raw combinations built from random coefficients applied to
	// the true chunks (simulating a re-encoding relay).
	cb := p.ChunkBytes()
	chunks := make([][]byte, k)
	for j := range chunks {
		chunks[j] = make([]byte, cb)
		copy(chunks[j], data[j*cb:min(len(data), (j+1)*cb)])
	}
	for !dec.Done() {
		coeffs := make([]uint32, k)
		payload := make([]byte, cb)
		for j := range coeffs {
			coeffs[j] = rng.Uint32() & f.Mask()
			f.AddScaledSlice(payload, chunks[j], coeffs[j])
		}
		if _, err := dec.AddRaw(coeffs, payload); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("AddRaw decode mismatch")
	}
	// Validation paths.
	if _, err := dec.AddRaw(make([]uint32, k-1), make([]byte, cb)); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad coeff len error = %v", err)
	}
	if _, err := dec.AddRaw(make([]uint32, k), make([]byte, cb-1)); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad payload len error = %v", err)
	}
	_ = enc
}

func TestEncoderValidation(t *testing.T) {
	f := gf.MustNew(gf.Bits8)
	p := mustParams(t, f, 4, 8, 30)
	if _, err := NewEncoder(p, 1, testSecret(), make([]byte, 31)); !errors.Is(err, ErrBadParams) {
		t.Errorf("length mismatch error = %v", err)
	}
	enc, err := NewEncoder(p, 1, testSecret(), make([]byte, 30))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.BatchForPeer(-1, 4); !errors.Is(err, ErrBadParams) {
		t.Errorf("negative peer error = %v", err)
	}
	if _, err := enc.BatchForPeer(0, 5); !errors.Is(err, ErrBadParams) {
		t.Errorf("n>k error = %v", err)
	}
	if _, err := enc.BatchForPeer(0, 0); !errors.Is(err, ErrBadParams) {
		t.Errorf("n=0 error = %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := gf.MustNew(gf.Bits8)
	prop := func(seed int64, kRaw, payloadTail uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw)%12 + 1
		m := 8
		dataLen := (k-1)*m + int(payloadTail)%m + 1
		p, err := NewParams(f, k, m, dataLen)
		if err != nil {
			return false
		}
		data := randomData(rng, dataLen)
		enc, err := NewEncoder(p, 1, testSecret(), data)
		if err != nil {
			return false
		}
		dec, err := NewDecoder(p, 1, testSecret(), nil)
		if err != nil {
			return false
		}
		for id := uint64(0); !dec.Done() && id < uint64(6*k); id++ {
			if _, err := dec.Add(enc.Message(id)); err != nil {
				return false
			}
		}
		got, err := dec.Decode()
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInnovationOverheadSmallForLargeFields(t *testing.T) {
	// With q = 2^32, nearly every random message is innovative; the
	// expected overhead beyond k messages is ~ k/(q-1), i.e. zero in
	// practice.
	rng := rand.New(rand.NewSource(47))
	f := gf.MustNew(gf.Bits32)
	k := 16
	p := mustParams(t, f, k, 4, k*16)
	data := randomData(rng, p.DataLen)
	enc, err := NewEncoder(p, 2, testSecret(), data)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(p, 2, testSecret(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < uint64(k); id++ {
		if _, err := dec.Add(enc.Message(id)); err != nil {
			t.Fatal(err)
		}
	}
	if !dec.Done() {
		t.Errorf("rank %d after exactly k=%d random GF(2^32) messages", dec.Rank(), k)
	}
}
