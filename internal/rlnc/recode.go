package rlnc

// Coefficient-header mode and recoding. The paper's scheme differs from
// practical network coding [28] in two deliberate ways (Sec. III-A):
// coefficients travel as a secret key rather than as message headers,
// and storage peers forward verbatim rather than re-encoding. This file
// implements the classic alternative so the trade-off can be measured:
// CodedPacket carries its coefficient row in plaintext, and Recoder
// lets any relay mint fresh random combinations of what it holds —
// at the cost of per-message header overhead (k*p bits) and of giving
// every holder of k packets the ability to decode.

import (
	"fmt"
	"math/rand"

	"asymshare/internal/gf"
)

// CodedPacket is an encoded message with an explicit coefficient
// header.
type CodedPacket struct {
	FileID  uint64
	Coeffs  []uint32 // k coefficients over the generation's field
	Payload []byte
}

// HeaderBytes returns the size of the plaintext coefficient header —
// the per-packet overhead the paper's secret-key mode avoids.
func (p *CodedPacket) HeaderBytes(field gf.Field) int {
	return 8 + gf.VecBytes(field.Bits(), len(p.Coeffs))
}

// Marshal serializes the packet: file-id, coefficient count, packed
// coefficients, payload.
func (p *CodedPacket) Marshal(field gf.Field) ([]byte, error) {
	if len(p.Coeffs) == 0 {
		return nil, fmt.Errorf("%w: packet without coefficients", ErrBadParams)
	}
	coeffBytes := gf.VecBytes(field.Bits(), len(p.Coeffs))
	out := make([]byte, 8+4+coeffBytes+len(p.Payload))
	be64(out[0:], p.FileID)
	be32(out[8:], uint32(len(p.Coeffs)))
	packed := out[12 : 12+coeffBytes]
	for i, c := range p.Coeffs {
		gf.SetSym(field.Bits(), packed, i, c)
	}
	copy(out[12+coeffBytes:], p.Payload)
	return out, nil
}

// UnmarshalPacket parses a serialized packet for a generation with k
// coefficients over the given field.
func UnmarshalPacket(field gf.Field, k int, data []byte) (*CodedPacket, error) {
	coeffBytes := gf.VecBytes(field.Bits(), k)
	if len(data) < 12+coeffBytes {
		return nil, fmt.Errorf("%w: packet of %d bytes", ErrBadParams, len(data))
	}
	count := rd32(data[8:])
	if int(count) != k {
		return nil, fmt.Errorf("%w: packet has %d coefficients, want %d", ErrBadParams, count, k)
	}
	p := &CodedPacket{
		FileID: rd64(data),
		Coeffs: make([]uint32, k),
	}
	packed := data[12 : 12+coeffBytes]
	for i := range p.Coeffs {
		p.Coeffs[i] = gf.GetSym(field.Bits(), packed, i)
	}
	p.Payload = append([]byte(nil), data[12+coeffBytes:]...)
	return p, nil
}

func be64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

func be32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (24 - 8*i))
	}
}

func rd64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func rd32(b []byte) uint32 {
	var v uint32
	for i := 0; i < 4; i++ {
		v = v<<8 | uint32(b[i])
	}
	return v
}

// PacketFromMessage converts an owner message into coefficient-header
// form by re-deriving its secret row — only the owner (or anyone
// holding the secret) can do this, which is the point.
func PacketFromMessage(gen *CoeffGenerator, msg *Message) *CodedPacket {
	payload := make([]byte, len(msg.Payload))
	copy(payload, msg.Payload)
	return &CodedPacket{
		FileID:  msg.FileID,
		Coeffs:  gen.Row(msg.FileID, msg.MessageID),
		Payload: payload,
	}
}

// Recoder accumulates coded packets and emits fresh uniform random
// combinations of them — the relay operation of practical network
// coding.
type Recoder struct {
	params  Params
	fileID  uint64
	rng     *rand.Rand
	coeffs  [][]uint32
	payload [][]byte
}

// NewRecoder creates a relay for one generation.
func NewRecoder(params Params, fileID uint64, seed int64) (*Recoder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Recoder{
		params: params,
		fileID: fileID,
		rng:    rand.New(rand.NewSource(seed)),
	}, nil
}

// Absorb stores one packet for future recombination.
func (r *Recoder) Absorb(p *CodedPacket) error {
	if p.FileID != r.fileID {
		return fmt.Errorf("%w: got file %d, want %d", ErrWrongFile, p.FileID, r.fileID)
	}
	if len(p.Coeffs) != r.params.K {
		return fmt.Errorf("%w: %d coefficients, want %d", ErrBadParams, len(p.Coeffs), r.params.K)
	}
	if len(p.Payload) != r.params.ChunkBytes() {
		return fmt.Errorf("%w: payload %d bytes, want %d",
			ErrBadParams, len(p.Payload), r.params.ChunkBytes())
	}
	coeffs := make([]uint32, len(p.Coeffs))
	copy(coeffs, p.Coeffs)
	payload := make([]byte, len(p.Payload))
	copy(payload, p.Payload)
	r.coeffs = append(r.coeffs, coeffs)
	r.payload = append(r.payload, payload)
	return nil
}

// Held returns how many packets the relay holds.
func (r *Recoder) Held() int { return len(r.coeffs) }

// Emit produces a fresh random combination of all absorbed packets.
// The emitted packet's coefficient row is the same combination applied
// to the absorbed rows, so downstream decoders treat it like any other
// packet.
func (r *Recoder) Emit() (*CodedPacket, error) {
	if len(r.coeffs) == 0 {
		return nil, fmt.Errorf("%w: recoder holds no packets", ErrBadParams)
	}
	f := r.params.Field
	out := &CodedPacket{
		FileID:  r.fileID,
		Coeffs:  make([]uint32, r.params.K),
		Payload: make([]byte, r.params.ChunkBytes()),
	}
	for i := range r.coeffs {
		c := r.rng.Uint32() & f.Mask()
		if c == 0 {
			continue
		}
		addScaledRow(f, out.Coeffs, r.coeffs[i], c)
		f.AddScaledSlice(out.Payload, r.payload[i], c)
	}
	return out, nil
}
