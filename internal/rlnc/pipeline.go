package rlnc

// Pipeline is the parallel decode engine (DESIGN.md §9). It splits the
// work the sequential Decoder does under one caller into three stages
// with very different costs:
//
//  1. verify   — digest authentication (MD5) and coefficient-row
//                derivation (HMAC-SHA256): embarrassingly parallel,
//                done by the calling producer goroutines themselves,
//                bounded by a fixed set of verifier slots;
//  2. innovate — coefficient-space Gaussian elimination over a K-wide
//                row (a few KiB of uint32 math): serialized under one
//                small mutex, so innovation decisions are strictly
//                ordered and duplicates/dependent rows are settled
//                without ever touching payload bytes;
//  3. eliminate — the recorded row operations replayed over the
//                payload (ChunkBytes() per row, the real cost): handed
//                to a serial job runner that fans each job's payload
//                out to a worker pool in cache-sized segments, using
//                per-factor split product tables (gf.MulTable).
//
// Every buffer on the steady-state path — verifier scratch, coefficient
// rows, payload arena slots, job and step storage, product tables — is
// preallocated at construction and recycled through free lists, so an
// accepted message allocates nothing.
//
// Because stage 2 records the exact factor sequence the sequential
// Decoder would apply and GF arithmetic is exact, the decoded output is
// byte-identical to Decoder's on any input stream.

import (
	"crypto/md5"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"runtime"
	"sync"
	"sync/atomic"

	"asymshare/internal/gf"
)

// ErrPipelineClosed is returned by Add and Decode after Close.
var ErrPipelineClosed = errors.New("rlnc: pipeline closed")

// PipelineConfig tunes the decode engine. The zero value picks
// sensible defaults for the host.
type PipelineConfig struct {
	// Workers is the number of goroutines eliminating payload
	// segments, including the serial job runner itself. 0 means
	// GOMAXPROCS; 1 runs every segment inline on the runner.
	Workers int
	// SegmentBytes is the smallest payload slice fanned out to one
	// worker (8-byte aligned); payloads shorter than 2*SegmentBytes
	// are eliminated in one piece. 0 means 4096.
	SegmentBytes int
	// Verifiers bounds how many producers can authenticate and derive
	// coefficient rows concurrently; further Add calls block, which is
	// the pipeline's back-pressure toward the network. 0 means
	// max(2, Workers).
	Verifiers int
}

// PipelineTelemetry is a snapshot of the engine's counters, exported
// so the client can surface queue depth, worker utilization and decode
// throughput as metrics.
type PipelineTelemetry struct {
	QueueDepth      int    // payload jobs enqueued but not yet finished
	BusyWorkers     int    // workers currently eliminating a segment
	Workers         int    // size of the worker pool (incl. the runner)
	Jobs            uint64 // payload jobs completed
	Segments        uint64 // payload segments eliminated
	EliminatedBytes uint64 // payload bytes processed by row operations
}

// verifier is the per-producer scratch handed out from a free list:
// reusable hashes and buffers so stage 1 never allocates.
type verifier struct {
	rows *RowStream
	md5h hash.Hash
	hdr  [headerBytes]byte
	sum  []byte // cap DigestLen
}

// pipeJob is one row's payload elimination: replay steps (and the
// final pivot normalization scale) over the payload in slot dst.
type pipeJob struct {
	dst   int32
	scale uint32
	steps []elimStep
	wg    sync.WaitGroup // outstanding segments
}

// segTask is one payload slice of a job, claimed by a worker.
type segTask struct {
	job    *pipeJob
	lo, hi int
	scale  *gf.MulTable
}

// Pipeline implements Sink with concurrent producers and parallel
// payload elimination. Construct with NewPipeline, feed it from any
// number of goroutines, then call Decode (or DecodeInto) once Done,
// and Close when finished with it.
type Pipeline struct {
	params  Params
	fileID  uint64
	gen     *CoeffGenerator
	digests map[uint64]Digest
	cb      int // ChunkBytes
	workers int
	segMin  int

	verifiers chan *verifier
	rowFree   chan []uint32
	slotFree  chan []byte

	mu      sync.Mutex
	seen    map[uint64]bool
	echelon [][]uint32
	pivots  []int
	pays    [][]byte // payload slot per echelon row, fixed K entries
	stats   Stats
	closed  bool

	rank atomic.Int64

	decodeMu sync.Mutex
	solved   bool

	jobs   chan *pipeJob
	jobsWG sync.WaitGroup
	segCh  chan segTask
	quit   chan struct{}
	bgWG   sync.WaitGroup
	jobBuf []pipeJob
	tabs   []gf.MulTable // runner-owned: one per step of the current job, +1 for scale

	closeOnce sync.Once

	depth     atomic.Int64
	busy      atomic.Int64
	jobsDone  atomic.Uint64
	segsDone  atomic.Uint64
	elimBytes atomic.Uint64
}

// NewPipeline prepares a parallel decoder for one generation, mirroring
// NewDecoder's contract. digests, if non-nil, enables per-message
// authentication. The returned pipeline owns background goroutines;
// callers must Close it.
func NewPipeline(params Params, fileID uint64, secret []byte, digests map[uint64]Digest, cfg PipelineConfig) (*Pipeline, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	gen, err := NewCoeffGenerator(params.Field, params.K, secret)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	segMin := cfg.SegmentBytes &^ 7
	if segMin <= 0 {
		segMin = 4096
	}
	nver := cfg.Verifiers
	if nver <= 0 {
		nver = max(2, workers)
	}
	k := params.K
	cb := params.ChunkBytes()

	p := &Pipeline{
		params:    params,
		fileID:    fileID,
		gen:       gen,
		digests:   digests,
		cb:        cb,
		workers:   workers,
		segMin:    segMin,
		verifiers: make(chan *verifier, nver),
		rowFree:   make(chan []uint32, k+nver),
		slotFree:  make(chan []byte, k+nver),
		seen:      make(map[uint64]bool, 2*k),
		echelon:   make([][]uint32, 0, k),
		pivots:    make([]int, 0, k),
		pays:      make([][]byte, k),
		jobs:      make(chan *pipeJob, k),
		segCh:     make(chan segTask, workers*2),
		quit:      make(chan struct{}),
		jobBuf:    make([]pipeJob, k),
		tabs:      make([]gf.MulTable, k+1),
	}
	for i := 0; i < nver; i++ {
		p.verifiers <- &verifier{
			rows: gen.Stream(),
			md5h: md5.New(),
			sum:  make([]byte, 0, DigestLen),
		}
	}
	rowArena := make([]uint32, (k+nver)*k)
	for i := 0; i < k+nver; i++ {
		p.rowFree <- rowArena[i*k : (i+1)*k : (i+1)*k]
	}
	payArena := make([]byte, (k+nver)*cb)
	for i := 0; i < k+nver; i++ {
		p.slotFree <- payArena[i*cb : (i+1)*cb : (i+1)*cb]
	}
	stepArena := make([]elimStep, k*k)
	for i := range p.jobBuf {
		p.jobBuf[i].steps = stepArena[i*k : i*k : (i+1)*k]
	}

	p.bgWG.Add(1)
	go p.runner()
	for i := 1; i < workers; i++ {
		p.bgWG.Add(1)
		go p.segWorker()
	}
	return p, nil
}

// Rank implements Sink.
func (p *Pipeline) Rank() int { return int(p.rank.Load()) }

// Done implements Sink.
func (p *Pipeline) Done() bool { return p.Rank() >= p.params.K }

// Stats implements Sink.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Telemetry returns a snapshot of the engine counters.
func (p *Pipeline) Telemetry() PipelineTelemetry {
	return PipelineTelemetry{
		QueueDepth:      int(p.depth.Load()),
		BusyWorkers:     int(p.busy.Load()),
		Workers:         p.workers,
		Jobs:            p.jobsDone.Load(),
		Segments:        p.segsDone.Load(),
		EliminatedBytes: p.elimBytes.Load(),
	}
}

// Add implements Sink. It is safe for any number of concurrent
// producers; verification runs on the caller's goroutine, the
// innovation check under a short lock, and payload elimination
// asynchronously on the worker pool.
func (p *Pipeline) Add(msg *Message) (bool, error) {
	if msg.FileID != p.fileID {
		p.countEarly(func(s *Stats) { s.Rejected++ })
		return false, fmt.Errorf("%w: got file %d, want %d", ErrWrongFile, msg.FileID, p.fileID)
	}
	if len(msg.Payload) != p.cb {
		p.countEarly(func(s *Stats) { s.Rejected++ })
		return false, fmt.Errorf("%w: payload %d bytes, want %d",
			ErrBadParams, len(msg.Payload), p.cb)
	}

	// Stage 1: authenticate and derive the coefficient row on this
	// goroutine. The verifier free list bounds producer concurrency.
	v := <-p.verifiers
	if p.digests != nil {
		want, ok := p.digests[msg.MessageID]
		if ok {
			v.sum = msg.digestInto(v.md5h, &v.hdr, v.sum)
			ok = Digest(v.sum) == want
		}
		if !ok {
			p.verifiers <- v
			p.countEarly(func(s *Stats) { s.Rejected++ })
			return false, fmt.Errorf("%w: message-id %d", ErrBadDigest, msg.MessageID)
		}
	}
	// Acquire both pooled buffers before releasing the verifier slot:
	// the verifier pool is what bounds in-flight buffer demand, which
	// keeps the free lists (sized k + Verifiers) deadlock-free no
	// matter how many producers call Add.
	cand := <-p.rowFree
	slot := <-p.slotFree
	v.rows.RowInto(p.fileID, msg.MessageID, cand)
	copy(slot, msg.Payload)
	p.verifiers <- v
	return p.commit(msg.MessageID, cand, slot)
}

// AddBytes ingests one serialized message (16-byte header + payload)
// straight from a wire frame, without unmarshaling into a Message: the
// identifiers are parsed in place, the digest — defined over exactly
// these bytes — is computed over the frame itself, and the payload is
// copied once, directly into a pooled arena slot. This is the zero-copy
// receive hot path: an accepted frame costs one memcpy and no
// allocations. The caller keeps ownership of data; it may be recycled
// as soon as AddBytes returns.
func (p *Pipeline) AddBytes(data []byte) (bool, error) {
	if len(data) < headerBytes {
		return false, fmt.Errorf("%w: %d bytes", ErrShortMessage, len(data))
	}
	fileID := binary.BigEndian.Uint64(data[0:])
	msgID := binary.BigEndian.Uint64(data[8:])
	if fileID != p.fileID {
		p.countEarly(func(s *Stats) { s.Rejected++ })
		return false, fmt.Errorf("%w: got file %d, want %d", ErrWrongFile, fileID, p.fileID)
	}
	payload := data[headerBytes:]
	if len(payload) != p.cb {
		p.countEarly(func(s *Stats) { s.Rejected++ })
		return false, fmt.Errorf("%w: payload %d bytes, want %d",
			ErrBadParams, len(payload), p.cb)
	}

	v := <-p.verifiers
	if p.digests != nil {
		want, ok := p.digests[msgID]
		if ok {
			v.md5h.Reset()
			v.md5h.Write(data)
			v.sum = v.md5h.Sum(v.sum[:0])
			ok = Digest(v.sum) == want
		}
		if !ok {
			p.verifiers <- v
			p.countEarly(func(s *Stats) { s.Rejected++ })
			return false, fmt.Errorf("%w: message-id %d", ErrBadDigest, msgID)
		}
	}
	cand := <-p.rowFree
	slot := <-p.slotFree
	v.rows.RowInto(p.fileID, msgID, cand)
	copy(slot, payload)
	p.verifiers <- v
	return p.commit(msgID, cand, slot)
}

// commit is stages 2 and 3 shared by Add and AddBytes: settle the
// row's innovation under the lock and, if it survives, hand the
// payload elimination to the job runner. cand and slot are owned by
// the call and returned to the free lists unless the row is accepted.
func (p *Pipeline) commit(msgID uint64, cand []uint32, slot []byte) (bool, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.rowFree <- cand
		p.slotFree <- slot
		return false, ErrPipelineClosed
	}
	p.stats.Received++
	if p.seen[msgID] {
		p.stats.Duplicate++
		p.mu.Unlock()
		p.rowFree <- cand
		p.slotFree <- slot
		return false, nil
	}
	p.seen[msgID] = true
	r := len(p.echelon)
	if r >= p.params.K {
		p.stats.Redundant++
		p.mu.Unlock()
		p.rowFree <- cand
		p.slotFree <- slot
		return false, nil
	}
	job := &p.jobBuf[r]
	steps, scale, innovative := reduceRowCoeffs(p.params.Field, cand, p.echelon, p.pivots, job.steps[:0])
	if !innovative {
		p.stats.Redundant++
		p.mu.Unlock()
		p.rowFree <- cand
		p.slotFree <- slot
		return false, nil
	}
	p.echelon = append(p.echelon, cand)
	p.pivots = append(p.pivots, leadingIndex(cand))
	p.pays[r] = slot
	p.stats.Accepted++
	job.dst = int32(r)
	job.steps = steps
	job.scale = scale
	// Stage 3 handoff: enqueue while still holding the lock so the
	// serial runner sees jobs in acceptance order (job r must never
	// run before the jobs producing its source rows). The channel
	// holds K jobs, so the send cannot block.
	if len(steps) > 0 || scale != 1 {
		p.jobsWG.Add(1)
		p.depth.Add(1)
		p.jobs <- job
	}
	p.rank.Store(int64(r + 1))
	p.mu.Unlock()
	return true, nil
}

// countEarly records an outcome for messages rejected before stage 2.
func (p *Pipeline) countEarly(bump func(*Stats)) {
	p.mu.Lock()
	p.stats.Received++
	bump(&p.stats)
	p.mu.Unlock()
}

// runner serializes payload jobs: builds the per-factor product tables
// once per job, splits the payload into segments, farms them out and
// takes the first segment itself.
func (p *Pipeline) runner() {
	defer p.bgWG.Done()
	for {
		select {
		case job := <-p.jobs:
			p.runJob(job)
		case <-p.quit:
			return
		}
	}
}

func (p *Pipeline) runJob(job *pipeJob) {
	f := p.params.Field
	n := len(job.steps)
	for s := 0; s < n; s++ {
		p.tabs[s].Init(f, job.steps[s].factor)
	}
	var scale *gf.MulTable
	if job.scale != 1 {
		p.tabs[n].Init(f, job.scale)
		scale = &p.tabs[n]
	}

	segs := 1
	if p.workers > 1 && p.cb >= 2*p.segMin {
		segs = min(p.workers, p.cb/p.segMin)
	}
	if segs <= 1 {
		p.busy.Add(1)
		p.applySeg(job, 0, p.cb, scale)
		p.busy.Add(-1)
	} else {
		per := (p.cb / segs) &^ 7
		job.wg.Add(segs - 1)
		lo := per
		for s := 1; s < segs; s++ {
			hi := lo + per
			if s == segs-1 {
				hi = p.cb
			}
			p.segCh <- segTask{job: job, lo: lo, hi: hi, scale: scale}
			lo = hi
		}
		p.busy.Add(1)
		p.applySeg(job, 0, per, scale)
		p.busy.Add(-1)
		job.wg.Wait()
	}
	p.depth.Add(-1)
	p.jobsDone.Add(1)
	p.jobsWG.Done()
}

// segWorker eliminates payload segments until Close.
func (p *Pipeline) segWorker() {
	defer p.bgWG.Done()
	for {
		select {
		case t := <-p.segCh:
			p.busy.Add(1)
			p.applySeg(t.job, t.lo, t.hi, t.scale)
			p.busy.Add(-1)
			t.job.wg.Done()
		case <-p.quit:
			return
		}
	}
}

// applySeg replays a job's recorded row operations over one payload
// slice. Reads of p.pays entries are ordered by the jobs/segCh channel
// sends that happen after the rows were committed under p.mu.
func (p *Pipeline) applySeg(job *pipeJob, lo, hi int, scale *gf.MulTable) {
	dst := p.pays[job.dst][lo:hi]
	for s := range job.steps {
		src := p.pays[job.steps[s].src][lo:hi]
		p.tabs[s].MulAdd(dst, src)
	}
	if scale != nil {
		scale.Mul(dst)
	}
	p.segsDone.Add(1)
	p.elimBytes.Add(uint64((hi - lo) * (len(job.steps) + 1)))
}

// Decode completes the generation and returns the original data,
// trimmed to params.DataLen. It returns ErrNotDecodable if rank < k.
func (p *Pipeline) Decode() ([]byte, error) {
	out := make([]byte, p.params.DataLen)
	if err := p.DecodeInto(out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto is Decode with a caller-supplied buffer of exactly
// DataLen bytes, for allocation-free reuse across generations.
func (p *Pipeline) DecodeInto(out []byte) error {
	if len(out) != p.params.DataLen {
		return fmt.Errorf("%w: output %d bytes, want %d", ErrBadParams, len(out), p.params.DataLen)
	}
	p.decodeMu.Lock()
	defer p.decodeMu.Unlock()

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPipelineClosed
	}
	rank := len(p.echelon)
	p.mu.Unlock()
	k := p.params.K
	if rank < k {
		return fmt.Errorf("%w: rank %d of %d", ErrNotDecodable, rank, k)
	}
	// Drain forward elimination. Rank is full, so no new payload jobs
	// can be enqueued concurrently.
	p.jobsWG.Wait()

	if !p.solved {
		// Back-substitution, row by row from the bottom: row r's
		// remaining cross-references are exactly the pivots of rows
		// inserted after it, whose payloads are already final when the
		// serial runner (processing jobs in enqueue order) reaches row
		// r's job. The factor sequence matches the sequential decoder's
		// Gauss-Jordan sweep exactly.
		f := p.params.Field
		for r := k - 1; r >= 0; r-- {
			job := &p.jobBuf[r]
			job.dst = int32(r)
			job.scale = 1
			job.steps = job.steps[:0]
			for i := k - 1; i > r; i-- {
				factor := p.echelon[r][p.pivots[i]]
				if factor == 0 {
					continue
				}
				addScaledRow(f, p.echelon[r], p.echelon[i], factor)
				job.steps = append(job.steps, elimStep{src: int32(i), factor: factor})
			}
			if len(job.steps) == 0 {
				continue
			}
			p.jobsWG.Add(1)
			p.depth.Add(1)
			p.jobs <- job
		}
		p.jobsWG.Wait()
		p.solved = true
	}

	cb := p.cb
	for i := 0; i < k; i++ {
		off := p.pivots[i] * cb
		if off >= len(out) {
			continue
		}
		copy(out[off:], p.pays[i])
	}
	return nil
}

// Reset returns the pipeline to its initial state so the same engine
// (and all its pooled buffers) can decode another generation with the
// same parameters, fileID, secret and digests. The caller must ensure
// no Add or Decode is in flight.
func (p *Pipeline) Reset() {
	p.decodeMu.Lock()
	defer p.decodeMu.Unlock()
	p.jobsWG.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	clear(p.seen)
	for i, row := range p.echelon {
		p.rowFree <- row
		p.slotFree <- p.pays[i]
		p.pays[i] = nil
		p.echelon[i] = nil
	}
	p.echelon = p.echelon[:0]
	p.pivots = p.pivots[:0]
	p.stats = Stats{}
	p.solved = false
	p.rank.Store(0)
}

// Close stops the worker pool. It drains in-flight payload jobs first;
// subsequent Add and Decode calls fail with ErrPipelineClosed. Close
// is idempotent and safe to call concurrently with producers blocked
// in Add.
func (p *Pipeline) Close() {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		p.jobsWG.Wait()
		close(p.quit)
		p.bgWG.Wait()
	})
}
