package rlnc

// Property-based invariants of the incremental decoder.

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"asymshare/internal/gf"
)

// TestDecoderRankMonotoneAndBounded: rank never decreases, never
// exceeds k, and equals the number of accepted (innovative) messages.
func TestDecoderRankMonotoneAndBounded(t *testing.T) {
	f := gf.MustNew(gf.Bits4) // small field maximizes dependent rows
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 3 + rng.Intn(6)
		p, err := NewParams(f, k, 16, k*gf.VecBytes(f.Bits(), 16))
		if err != nil {
			return false
		}
		data := randomData(rng, p.DataLen)
		enc, err := NewEncoder(p, 1, testSecret(), data)
		if err != nil {
			return false
		}
		dec, err := NewDecoder(p, 1, testSecret(), nil)
		if err != nil {
			return false
		}
		prevRank := 0
		for id := uint64(0); id < uint64(6*k); id++ {
			innovative, err := dec.Add(enc.Message(id))
			if err != nil {
				return false
			}
			rank := dec.Rank()
			if rank < prevRank || rank > k {
				return false
			}
			if innovative && rank != prevRank+1 {
				return false
			}
			if !innovative && rank != prevRank {
				return false
			}
			prevRank = rank
			if st := dec.Stats(); st.Accepted != rank {
				return false
			}
			if dec.Needed() != k-rank {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestDecodeIsIdempotent: calling Decode twice yields the same bytes.
func TestDecodeIsIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	f := gf.MustNew(gf.Bits8)
	k := 7
	p := mustParams(t, f, k, 16, k*16)
	data := randomData(rng, p.DataLen)
	enc, err := NewEncoder(p, 1, testSecret(), data)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(p, 1, testSecret(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); !dec.Done(); id++ {
		if _, err := dec.Add(enc.Message(id)); err != nil {
			t.Fatal(err)
		}
	}
	first, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	second, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("Decode not idempotent")
	}
	if !bytes.Equal(first, data) {
		t.Fatal("Decode wrong")
	}
}

// TestMessagesAfterDoneAreIgnored: extra messages after rank k change
// nothing.
func TestMessagesAfterDoneAreIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	f := gf.MustNew(gf.Bits32)
	k := 5
	p := mustParams(t, f, k, 8, k*32)
	data := randomData(rng, p.DataLen)
	enc, err := NewEncoder(p, 1, testSecret(), data)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(p, 1, testSecret(), nil)
	if err != nil {
		t.Fatal(err)
	}
	id := uint64(0)
	for ; !dec.Done(); id++ {
		if _, err := dec.Add(enc.Message(id)); err != nil {
			t.Fatal(err)
		}
	}
	for extra := uint64(0); extra < 5; extra++ {
		innovative, err := dec.Add(enc.Message(id + extra))
		if err != nil {
			t.Fatal(err)
		}
		if innovative {
			t.Fatal("message counted innovative after rank k")
		}
	}
	got, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decode wrong after extra messages")
	}
}

// TestEncoderLinearity: Y(id) payloads are linear — the message of the
// sum of two files equals the XOR of the messages (same id, same
// secret), since coefficients depend only on (fileID, id).
func TestEncoderLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	f := gf.MustNew(gf.Bits8)
	k := 4
	p := mustParams(t, f, k, 16, k*16)
	a := randomData(rng, p.DataLen)
	b := randomData(rng, p.DataLen)
	sum := make([]byte, len(a))
	for i := range sum {
		sum[i] = a[i] ^ b[i]
	}
	encA, err := NewEncoder(p, 9, testSecret(), a)
	if err != nil {
		t.Fatal(err)
	}
	encB, err := NewEncoder(p, 9, testSecret(), b)
	if err != nil {
		t.Fatal(err)
	}
	encSum, err := NewEncoder(p, 9, testSecret(), sum)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 8; id++ {
		ya := encA.Message(id).Payload
		yb := encB.Message(id).Payload
		ys := encSum.Message(id).Payload
		for i := range ys {
			if ys[i] != ya[i]^yb[i] {
				t.Fatalf("linearity violated at message %d byte %d", id, i)
			}
		}
	}
}

func FuzzMessageUnmarshal(f *testing.F) {
	msg := Message{FileID: 1, MessageID: 2, Payload: []byte{1, 2, 3}}
	seed, err := msg.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := m.UnmarshalBinary(data); err != nil {
			return
		}
		// A successful parse must round-trip.
		out, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip mismatch: %x vs %x", out, data)
		}
	})
}

func FuzzPacketUnmarshal(f *testing.F) {
	field := gf.MustNew(gf.Bits8)
	p := CodedPacket{FileID: 1, Coeffs: []uint32{1, 2, 3}, Payload: []byte{9}}
	seed, err := p.Marshal(field)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic, whatever the bytes.
		_, _ = UnmarshalPacket(field, 3, data)
	})
}
