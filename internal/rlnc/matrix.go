package rlnc

// Dense matrices over GF(2^p). These back the encoder's batch
// invertibility checks, the decoder tests, and the Table II benchmark
// (inverting the k x k coefficient matrix). Elements are uint32 field
// values; matrices are small (k <= a few hundred), so clarity wins over
// cache games here — the payload-size work lives in gf's slice routines.

import (
	"fmt"
	"math/rand"

	"asymshare/internal/gf"
)

// Matrix is a dense rows x cols matrix over a field.
type Matrix struct {
	field gf.Field
	rows  int
	cols  int
	data  []uint32 // row-major
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(field gf.Field, rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("rlnc: negative matrix dimension")
	}
	return &Matrix{field: field, rows: rows, cols: cols, data: make([]uint32, rows*cols)}
}

// Identity returns the n x n identity matrix.
func Identity(field gf.Field, n int) *Matrix {
	m := NewMatrix(field, n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// MatrixFromRows builds a matrix from row slices, which must all have
// equal length. The rows are copied.
func MatrixFromRows(field gf.Field, rows [][]uint32) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(field, 0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(field, len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: ragged rows (%d vs %d)", ErrBadParams, len(r), cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// RandomMatrix fills a rows x cols matrix with uniform field elements
// from rng.
func RandomMatrix(field gf.Field, rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(field, rows, cols)
	for i := range m.data {
		m.data[i] = rng.Uint32() & field.Mask()
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Field returns the field the matrix is defined over.
func (m *Matrix) Field() gf.Field { return m.field }

// At returns element (i, j).
func (m *Matrix) At(i, j int) uint32 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v uint32) { m.data[i*m.cols+j] = v & m.field.Mask() }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []uint32 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.field, m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether the two matrices have identical shape and
// contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		if o.data[i] != v {
			return false
		}
	}
	return true
}

// Mul returns the matrix product m * o.
func (m *Matrix) Mul(o *Matrix) (*Matrix, error) {
	if m.cols != o.rows {
		return nil, fmt.Errorf("%w: %dx%d * %dx%d", ErrBadParams, m.rows, m.cols, o.rows, o.cols)
	}
	f := m.field
	out := NewMatrix(f, m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for t := 0; t < m.cols; t++ {
			a := mi[t]
			if a == 0 {
				continue
			}
			or := o.Row(t)
			for j := 0; j < o.cols; j++ {
				if or[j] != 0 {
					oi[j] ^= f.Mul(a, or[j])
				}
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []uint32) ([]uint32, error) {
	if len(v) != m.cols {
		return nil, fmt.Errorf("%w: vec len %d vs %d cols", ErrBadParams, len(v), m.cols)
	}
	f := m.field
	out := make([]uint32, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var acc uint32
		for j, a := range row {
			if a != 0 && v[j] != 0 {
				acc ^= f.Mul(a, v[j])
			}
		}
		out[i] = acc
	}
	return out, nil
}

// Rank returns the rank of the matrix, computed on a scratch copy by
// Gaussian elimination.
func (m *Matrix) Rank() int {
	work := m.Clone()
	return work.rankInPlace()
}

func (m *Matrix) rankInPlace() int {
	f := m.field
	rank := 0
	for col := 0; col < m.cols && rank < m.rows; col++ {
		// Find a pivot at or below row `rank`.
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if m.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m.swapRows(rank, pivot)
		// Eliminate the column below the pivot.
		pv := m.At(rank, col)
		pinv, err := f.Inv(pv)
		if err != nil {
			panic("rlnc: zero pivot after selection") // unreachable
		}
		for r := rank + 1; r < m.rows; r++ {
			factor := f.Mul(m.At(r, col), pinv)
			if factor == 0 {
				continue
			}
			mr, pr := m.Row(r), m.Row(rank)
			for j := col; j < m.cols; j++ {
				mr[j] ^= f.Mul(factor, pr[j])
			}
		}
		rank++
	}
	return rank
}

// Invertible reports whether the matrix is square with full rank.
func (m *Matrix) Invertible() bool {
	return m.rows == m.cols && m.Rank() == m.rows
}

// Inverse returns the matrix inverse via Gauss-Jordan elimination, or
// ErrSingular if the matrix is not square or not of full rank.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("%w: %dx%d is not square", ErrSingular, m.rows, m.cols)
	}
	f := m.field
	n := m.rows
	work := m.Clone()
	inv := Identity(f, n)
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("%w: rank deficiency at column %d", ErrSingular, col)
		}
		work.swapRows(col, pivot)
		inv.swapRows(col, pivot)
		// Normalize the pivot row.
		pinv, err := f.Inv(work.At(col, col))
		if err != nil {
			return nil, ErrSingular
		}
		scaleRow(f, work.Row(col), pinv)
		scaleRow(f, inv.Row(col), pinv)
		// Eliminate the column everywhere else.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			factor := work.At(r, col)
			if factor == 0 {
				continue
			}
			addScaledRow(f, work.Row(r), work.Row(col), factor)
			addScaledRow(f, inv.Row(r), inv.Row(col), factor)
		}
	}
	return inv, nil
}

func (m *Matrix) swapRows(a, b int) {
	if a == b {
		return
	}
	ra, rb := m.Row(a), m.Row(b)
	for j := range ra {
		ra[j], rb[j] = rb[j], ra[j]
	}
}

func (m *Matrix) String() string {
	return fmt.Sprintf("rlnc.Matrix(%dx%d over GF(2^%d))", m.rows, m.cols, m.field.Bits())
}

// scaleRow multiplies every element of row by c through gf's
// split-table word kernel.
func scaleRow(f gf.Field, row []uint32, c uint32) {
	gf.MulWords(f, row, c)
}

// addScaledRow computes dst += c * src element-wise through gf's
// split-table word kernel.
func addScaledRow(f gf.Field, dst, src []uint32, c uint32) {
	gf.MulAddWords(f, dst, src, c)
}
