package rlnc

// Data modification (Sec. VI-A future work). The paper notes that "in
// the current incarnation, modifications have to be re-encoded and
// re-transmitted to the network". Because the code is linear and the
// coefficient row for a given (fileID, messageID) is fixed by the
// secret, an update can instead ship *delta* messages:
//
//	Y_new(id) = sum_j beta_j (X_j + D_j) = Y_old(id) + Y_delta(id)
//
// where D is the XOR difference of the old and new content. A storage
// peer patches each stored message in place by XOR-ing the delta
// payload with the same message-id — no secret required, and the
// upload cost is one message per stored message rather than a full
// re-dissemination when deltas are sparse (all-zero delta messages can
// be skipped entirely).

import (
	"bytes"
	"fmt"

	"asymshare/internal/gf"
)

// DeltaEncoder mints delta messages between two versions of a
// generation with identical parameters and identifiers.
type DeltaEncoder struct {
	enc *Encoder
}

// NewDeltaEncoder builds the delta generation for oldData -> newData.
// Both must be exactly params.DataLen bytes.
func NewDeltaEncoder(params Params, fileID uint64, secret, oldData, newData []byte) (*DeltaEncoder, error) {
	if len(oldData) != params.DataLen || len(newData) != params.DataLen {
		return nil, fmt.Errorf("%w: version sizes %d/%d, params say %d",
			ErrBadParams, len(oldData), len(newData), params.DataLen)
	}
	delta := make([]byte, len(oldData))
	for i := range delta {
		delta[i] = oldData[i] ^ newData[i]
	}
	enc, err := NewEncoder(params, fileID, secret, delta)
	if err != nil {
		return nil, err
	}
	return &DeltaEncoder{enc: enc}, nil
}

// Unchanged reports whether the two versions are identical (every
// delta message would be zero).
func (d *DeltaEncoder) Unchanged() bool {
	for _, chunk := range d.enc.chunks {
		if !gf.IsZeroSlice(chunk) {
			return false
		}
	}
	return true
}

// Delta returns the delta message for one message-id. Applying it with
// ApplyDelta to the stored old message yields the message of the new
// version.
func (d *DeltaEncoder) Delta(messageID uint64) *Message {
	return d.enc.Message(messageID)
}

// IsNoop reports whether the delta for the given id is all-zero (the
// peer's stored message is already correct and nothing need be sent).
func (d *DeltaEncoder) IsNoop(messageID uint64) bool {
	return gf.IsZeroSlice(d.enc.Message(messageID).Payload)
}

// ApplyDelta patches a stored message in place with a delta message of
// the same identifiers. It returns an error on any identifier or size
// mismatch — applying a delta to the wrong message would silently
// corrupt the store.
func ApplyDelta(stored, delta *Message) error {
	if stored.FileID != delta.FileID || stored.MessageID != delta.MessageID {
		return fmt.Errorf("%w: delta (%d,%d) against stored (%d,%d)",
			ErrBadParams, delta.FileID, delta.MessageID, stored.FileID, stored.MessageID)
	}
	if len(stored.Payload) != len(delta.Payload) {
		return fmt.Errorf("%w: delta payload %d bytes, stored %d",
			ErrBadParams, len(delta.Payload), len(stored.Payload))
	}
	gf.AddSlice(stored.Payload, delta.Payload)
	return nil
}

// Equal reports whether two messages are identical.
func (m *Message) Equal(o *Message) bool {
	return m.FileID == o.FileID && m.MessageID == o.MessageID && bytes.Equal(m.Payload, o.Payload)
}
