package rlnc

// Incremental decoder (Sec. III-B of the paper). A user collects encoded
// messages from many peers in parallel; each arriving message's
// coefficient row is re-derived from its plaintext message-id and the
// file secret, then folded into a reduced row-echelon system. Once rank
// reaches k the original chunks fall out of the eliminated payloads with
// no separate matrix inversion.
//
// The decoder tolerates duplicate and linearly dependent messages (they
// are simply not innovative) and, when given the owner's digest list,
// rejects forged messages before they can poison the system
// (Sec. III-C).

import (
	"errors"
	"fmt"
)

// ErrBadDigest is returned when a message fails digest authentication.
var ErrBadDigest = errors.New("rlnc: message digest mismatch")

// ErrWrongFile is returned when a message belongs to a different file.
var ErrWrongFile = errors.New("rlnc: message for different file")

// Decoder reconstructs one generation from >= k innovative messages.
// It is not safe for concurrent use; callers multiplexing several
// download streams must serialize Add calls (wrap it in SyncSink) or
// use the parallel Pipeline.
type Decoder struct {
	params  Params
	fileID  uint64
	gen     *CoeffGenerator
	digests map[uint64]Digest // optional authentication material

	echelon  [][]uint32 // RREF coefficient rows with unit pivots
	pivots   []int
	payloads [][]byte
	seen     map[uint64]bool

	stats Stats
}

// NewDecoder prepares a decoder for the generation identified by fileID.
// digests, if non-nil, maps message-id to the owner-published MD5 digest
// and enables per-message authentication.
func NewDecoder(params Params, fileID uint64, secret []byte, digests map[uint64]Digest) (*Decoder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	gen, err := NewCoeffGenerator(params.Field, params.K, secret)
	if err != nil {
		return nil, err
	}
	return &Decoder{
		params:  params,
		fileID:  fileID,
		gen:     gen,
		digests: digests,
		seen:    make(map[uint64]bool),
	}, nil
}

// Rank returns the current dimension of the received span.
func (d *Decoder) Rank() int { return len(d.echelon) }

// Done reports whether enough innovative messages have arrived.
func (d *Decoder) Done() bool { return d.Rank() >= d.params.K }

// Needed returns how many more innovative messages are required.
func (d *Decoder) Needed() int { return d.params.K - d.Rank() }

// Stats returns the message accounting so far (see the Stats type for
// the bucket invariant).
func (d *Decoder) Stats() Stats { return d.stats }

// Add folds one message into the system and reports whether it was
// innovative. Messages for other files and authentication failures
// return errors; dependent or duplicate messages return (false, nil).
func (d *Decoder) Add(msg *Message) (bool, error) {
	return d.offer(msg, nil, nil)
}

// AddRaw folds a message whose coefficient row is supplied explicitly
// rather than derived from the secret. This is the classic
// coefficients-in-header network-coding mode, kept for comparison
// benchmarks and for re-encoding experiments.
//
// Deprecated: AddRaw skips digest authentication and duplicate
// tracking; new code should construct Messages and use the Sink
// interface. It remains a thin wrapper over the same elimination path
// as Add.
func (d *Decoder) AddRaw(coeffs []uint32, payload []byte) (bool, error) {
	return d.offer(nil, coeffs, payload)
}

// offer is the single verification/elimination path behind Add and
// AddRaw. Exactly one of msg or (coeffs, payload) is set: with msg the
// coefficient row is re-derived from the secret and the message is
// authenticated and de-duplicated; with explicit coeffs those keyed
// checks do not apply.
func (d *Decoder) offer(msg *Message, coeffs []uint32, payload []byte) (bool, error) {
	d.stats.Received++
	if msg != nil {
		payload = msg.Payload
		if msg.FileID != d.fileID {
			d.stats.Rejected++
			return false, fmt.Errorf("%w: got file %d, want %d", ErrWrongFile, msg.FileID, d.fileID)
		}
	} else if len(coeffs) != d.params.K {
		d.stats.Rejected++
		return false, fmt.Errorf("%w: %d coefficients, want %d", ErrBadParams, len(coeffs), d.params.K)
	}
	if len(payload) != d.params.ChunkBytes() {
		d.stats.Rejected++
		return false, fmt.Errorf("%w: payload %d bytes, want %d",
			ErrBadParams, len(payload), d.params.ChunkBytes())
	}
	if msg != nil {
		if d.digests != nil {
			want, ok := d.digests[msg.MessageID]
			if !ok || msg.Digest() != want {
				d.stats.Rejected++
				return false, fmt.Errorf("%w: message-id %d", ErrBadDigest, msg.MessageID)
			}
		}
		if d.seen[msg.MessageID] {
			d.stats.Duplicate++
			return false, nil
		}
		d.seen[msg.MessageID] = true
	}
	if d.Done() {
		d.stats.Redundant++
		return false, nil
	}

	var row []uint32
	if msg != nil {
		row = d.gen.Row(d.fileID, msg.MessageID)
	} else {
		row = make([]uint32, len(coeffs))
		copy(row, coeffs)
	}
	p := make([]byte, len(payload))
	copy(p, payload)
	return d.addRow(row, p), nil
}

func (d *Decoder) addRow(row []uint32, payload []byte) bool {
	f := d.params.Field
	if !reduceRow(f, row, d.echelon, d.pivots, payload, d.payloads) {
		d.stats.Redundant++
		return false
	}
	d.echelon = append(d.echelon, row)
	d.pivots = append(d.pivots, leadingIndex(row))
	d.payloads = append(d.payloads, payload)
	d.stats.Accepted++
	return true
}

// Decode completes back-substitution and returns the original data,
// trimmed to params.DataLen. It returns ErrNotDecodable if rank < k.
func (d *Decoder) Decode() ([]byte, error) {
	if !d.Done() {
		return nil, fmt.Errorf("%w: rank %d of %d", ErrNotDecodable, d.Rank(), d.params.K)
	}
	f := d.params.Field
	k := d.params.K

	// Forward elimination left unit pivots but the rows above a pivot
	// may still reference its column: clear them (full Gauss-Jordan).
	for i := k - 1; i >= 0; i-- {
		p := d.pivots[i]
		for r := 0; r < k; r++ {
			if r == i {
				continue
			}
			factor := d.echelon[r][p]
			if factor == 0 {
				continue
			}
			addScaledRow(f, d.echelon[r], d.echelon[i], factor)
			f.AddScaledSlice(d.payloads[r], d.payloads[i], factor)
		}
	}

	// Now row i holds exactly chunk pivots[i].
	cb := d.params.ChunkBytes()
	out := make([]byte, k*cb)
	for i := 0; i < k; i++ {
		copy(out[d.pivots[i]*cb:], d.payloads[i])
	}
	return out[:d.params.DataLen], nil
}

// CoefficientMatrix returns the current RREF coefficient rows, mainly
// for tests and diagnostics.
func (d *Decoder) CoefficientMatrix() *Matrix {
	m := NewMatrix(d.params.Field, len(d.echelon), d.params.K)
	for i, r := range d.echelon {
		copy(m.Row(i), r)
	}
	return m
}
