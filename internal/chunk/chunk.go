// Package chunk splits large files into independently-encoded 1 MB
// generations, per Sec. III-D of the paper: "we propose to overcome this
// problem by dividing large files into 1 MB chunks and then encoding
// each chunk as a separate file", which bounds k (and hence decoding
// cost) and lets audio/video content be streamed chunk by chunk. The
// user keeps a Manifest describing how the chunks fit together, together
// with the per-message MD5 digests of Sec. III-C.
package chunk

import (
	"crypto/md5"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"asymshare/internal/gf"
	"asymshare/internal/rlnc"
)

// DefaultChunkSize is the generation size recommended by the paper.
const DefaultChunkSize = 1 << 20

var (
	// ErrBadManifest is returned when a manifest fails validation.
	ErrBadManifest = errors.New("chunk: invalid manifest")

	// ErrChunkMissing is returned when assembling with a gap.
	ErrChunkMissing = errors.New("chunk: missing chunk data")
)

// Plan describes how one file is cut into generations and how each
// generation is coded.
type Plan struct {
	FieldBits uint // symbol width p
	M         int  // symbols per chunk-vector
	ChunkSize int  // bytes per generation (last one may be shorter)
}

// DefaultPlan returns the paper's example configuration: q = 2^32,
// m = 32768, 1 MB generations, giving k = 8.
func DefaultPlan() Plan {
	return Plan{FieldBits: gf.Bits32, M: 1 << 15, ChunkSize: DefaultChunkSize}
}

// Validate checks the plan invariants.
func (p Plan) Validate() error {
	if _, err := gf.New(p.FieldBits); err != nil {
		return fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if p.M <= 0 || p.ChunkSize <= 0 {
		return fmt.Errorf("%w: m=%d chunkSize=%d", ErrBadManifest, p.M, p.ChunkSize)
	}
	if p.M*int(p.FieldBits)%8 != 0 {
		return fmt.Errorf("%w: unaligned chunk vector", ErrBadManifest)
	}
	return nil
}

// Split cuts data into generation-sized pieces. The returned slices
// alias data.
func Split(data []byte, chunkSize int) [][]byte {
	if chunkSize <= 0 {
		return nil
	}
	if len(data) == 0 {
		return [][]byte{{}}
	}
	out := make([][]byte, 0, (len(data)+chunkSize-1)/chunkSize)
	for off := 0; off < len(data); off += chunkSize {
		end := min(off+chunkSize, len(data))
		out = append(out, data[off:end])
	}
	return out
}

// NewFileID draws a random 64-bit file identifier.
func NewFileID() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("chunk: file id: %w", err)
	}
	return binary.BigEndian.Uint64(b[:]), nil
}

// NewSecret draws a fresh coding secret.
func NewSecret() ([]byte, error) {
	s := make([]byte, rlnc.SecretLen)
	if _, err := rand.Read(s); err != nil {
		return nil, fmt.Errorf("chunk: secret: %w", err)
	}
	return s, nil
}

// ChunkInfo records the coding geometry and authentication digests of
// one generation.
type ChunkInfo struct {
	FileID  uint64                 `json:"fileId"`
	DataLen int                    `json:"dataLen"`
	K       int                    `json:"k"`
	Digests map[uint64]rlnc.Digest `json:"digests,omitempty"`
}

// Params returns the rlnc parameters for this chunk under the plan.
func (c ChunkInfo) Params(plan Plan) (rlnc.Params, error) {
	f, err := gf.New(plan.FieldBits)
	if err != nil {
		return rlnc.Params{}, err
	}
	return rlnc.NewParams(f, c.K, plan.M, c.DataLen)
}

// Manifest is the metadata a user carries to reassemble a shared file:
// the plan, the ordered chunk list, and the total size. The coding
// secret is deliberately NOT part of the manifest — the manifest may be
// replicated for robustness, while the secret stays with the owner.
type Manifest struct {
	Name      string      `json:"name"`
	TotalSize int64       `json:"totalSize"`
	Plan      Plan        `json:"plan"`
	Chunks    []ChunkInfo `json:"chunks"`

	// ContentMD5 is the hex MD5 of the whole file, giving the user an
	// end-to-end integrity check on the assembled result (in addition
	// to the per-message digests). Empty disables the check.
	ContentMD5 string `json:"contentMd5,omitempty"`
}

// ContentDigest returns the hex MD5 of a file body.
func ContentDigest(data []byte) string {
	sum := md5.Sum(data)
	return hex.EncodeToString(sum[:])
}

// Validate checks structural consistency of the manifest.
func (m *Manifest) Validate() error {
	if err := m.Plan.Validate(); err != nil {
		return err
	}
	if len(m.Chunks) == 0 {
		return fmt.Errorf("%w: no chunks", ErrBadManifest)
	}
	var total int64
	for i, c := range m.Chunks {
		if c.DataLen < 0 || c.K <= 0 {
			return fmt.Errorf("%w: chunk %d has dataLen=%d k=%d", ErrBadManifest, i, c.DataLen, c.K)
		}
		if i < len(m.Chunks)-1 && c.DataLen != m.Plan.ChunkSize {
			return fmt.Errorf("%w: interior chunk %d is %d bytes, want %d",
				ErrBadManifest, i, c.DataLen, m.Plan.ChunkSize)
		}
		total += int64(c.DataLen)
	}
	if total != m.TotalSize {
		return fmt.Errorf("%w: chunk sizes sum to %d, total says %d", ErrBadManifest, total, m.TotalSize)
	}
	return nil
}

// DigestCount returns the total number of stored message digests, the
// metadata the user must carry when the owner is offline (Sec. III-C).
func (m *Manifest) DigestCount() int {
	n := 0
	for _, c := range m.Chunks {
		n += len(c.Digests)
	}
	return n
}

// Assemble concatenates decoded chunk payloads (in chunk order) into the
// original file and verifies the total size.
func Assemble(m *Manifest, chunks [][]byte) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(chunks) != len(m.Chunks) {
		return nil, fmt.Errorf("%w: have %d of %d chunks", ErrChunkMissing, len(chunks), len(m.Chunks))
	}
	out := make([]byte, 0, m.TotalSize)
	for i, c := range chunks {
		if c == nil {
			return nil, fmt.Errorf("%w: chunk %d", ErrChunkMissing, i)
		}
		if len(c) != m.Chunks[i].DataLen {
			return nil, fmt.Errorf("%w: chunk %d is %d bytes, manifest says %d",
				ErrBadManifest, i, len(c), m.Chunks[i].DataLen)
		}
		out = append(out, c...)
	}
	if m.ContentMD5 != "" && ContentDigest(out) != m.ContentMD5 {
		return nil, fmt.Errorf("%w: assembled content digest mismatch", ErrBadManifest)
	}
	return out, nil
}
