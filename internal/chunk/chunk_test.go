package chunk

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	"asymshare/internal/gf"
	"asymshare/internal/rlnc"
)

func testPlan() Plan {
	// Small generations so tests stay fast.
	return Plan{FieldBits: gf.Bits8, M: 64, ChunkSize: 512}
}

func testSecret() []byte {
	s := make([]byte, rlnc.SecretLen)
	for i := range s {
		s[i] = byte(i)
	}
	return s
}

func TestSplit(t *testing.T) {
	data := make([]byte, 1000)
	pieces := Split(data, 512)
	if len(pieces) != 2 || len(pieces[0]) != 512 || len(pieces[1]) != 488 {
		t.Fatalf("Split lens = %d pieces", len(pieces))
	}
	if got := Split(data, 1000); len(got) != 1 {
		t.Errorf("exact split = %d pieces", len(got))
	}
	if got := Split(data, 2000); len(got) != 1 {
		t.Errorf("oversize chunk split = %d pieces", len(got))
	}
	if got := Split(nil, 512); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("empty data split = %v", got)
	}
	if got := Split(data, 0); got != nil {
		t.Errorf("zero chunk size = %v", got)
	}
}

func TestPlanValidate(t *testing.T) {
	if err := DefaultPlan().Validate(); err != nil {
		t.Errorf("DefaultPlan invalid: %v", err)
	}
	bad := []Plan{
		{FieldBits: 5, M: 8, ChunkSize: 64},
		{FieldBits: gf.Bits8, M: 0, ChunkSize: 64},
		{FieldBits: gf.Bits8, M: 8, ChunkSize: 0},
		{FieldBits: gf.Bits4, M: 3, ChunkSize: 64}, // unaligned
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated unexpectedly", i)
		}
	}
}

func TestDefaultPlanMatchesPaperExample(t *testing.T) {
	// Sec. III-C: k = 8, m = 32768, q = 2^32 for 1 MB chunks.
	p := DefaultPlan()
	f := gf.MustNew(p.FieldBits)
	params, err := rlnc.ParamsForSize(f, DefaultChunkSize, p.M)
	if err != nil {
		t.Fatal(err)
	}
	if params.K != 8 {
		t.Errorf("default plan k = %d, want 8", params.K)
	}
}

func TestBuildShareAndAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 1300) // 3 generations of 512/512/276
	rng.Read(data)
	share, err := BuildShare("video.mpg", data, testPlan(), 100, testSecret())
	if err != nil {
		t.Fatal(err)
	}
	if share.NumChunks() != 3 {
		t.Fatalf("NumChunks = %d", share.NumChunks())
	}
	if err := share.Manifest.Validate(); err != nil {
		t.Fatal(err)
	}
	if share.Manifest.Chunks[2].DataLen != 276 {
		t.Errorf("tail chunk len = %d", share.Manifest.Chunks[2].DataLen)
	}

	// Decode each generation from a single peer batch and reassemble.
	decoded := make([][]byte, share.NumChunks())
	batches, err := share.BatchForPeer(0, 1024) // n > k caps at k
	if err != nil {
		t.Fatal(err)
	}
	for i, batch := range batches {
		info := share.Manifest.Chunks[i]
		params, err := info.Params(share.Manifest.Plan)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := rlnc.NewDecoder(params, info.FileID, share.Secret, info.Digests)
		if err != nil {
			t.Fatal(err)
		}
		for _, msg := range batch {
			if _, err := dec.Add(msg); err != nil {
				t.Fatal(err)
			}
		}
		decoded[i], err = dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := Assemble(&share.Manifest, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("assembled data mismatch")
	}
}

func TestBatchForPeerDeterministicDigests(t *testing.T) {
	data := make([]byte, 600)
	share1, err := BuildShare("a", data, testPlan(), 7, testSecret())
	if err != nil {
		t.Fatal(err)
	}
	share2, err := BuildShare("a", data, testPlan(), 7, testSecret())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := share1.BatchForPeer(3, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := share2.BatchForPeer(3, 4); err != nil {
		t.Fatal(err)
	}
	d1 := share1.Manifest.Chunks[0].Digests
	d2 := share2.Manifest.Chunks[0].Digests
	if len(d1) == 0 || len(d1) != len(d2) {
		t.Fatalf("digest counts %d vs %d", len(d1), len(d2))
	}
	for id, d := range d1 {
		if d2[id] != d {
			t.Fatalf("digest for id %d differs", id)
		}
	}
}

func TestManifestValidateErrors(t *testing.T) {
	m := &Manifest{Plan: testPlan()}
	if err := m.Validate(); !errors.Is(err, ErrBadManifest) {
		t.Errorf("no-chunk manifest error = %v", err)
	}
	m.Chunks = []ChunkInfo{{FileID: 1, DataLen: 100, K: 2}, {FileID: 2, DataLen: 100, K: 2}}
	m.TotalSize = 200
	if err := m.Validate(); !errors.Is(err, ErrBadManifest) {
		t.Errorf("short interior chunk error = %v", err)
	}
	m.Chunks[0].DataLen = 512
	m.TotalSize = 612
	if err := m.Validate(); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
	m.TotalSize = 999
	if err := m.Validate(); !errors.Is(err, ErrBadManifest) {
		t.Errorf("total mismatch error = %v", err)
	}
}

func TestAssembleErrors(t *testing.T) {
	data := make([]byte, 700)
	share, err := BuildShare("x", data, testPlan(), 1, testSecret())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Assemble(&share.Manifest, [][]byte{make([]byte, 512)}); !errors.Is(err, ErrChunkMissing) {
		t.Errorf("missing chunk error = %v", err)
	}
	if _, err := Assemble(&share.Manifest, [][]byte{make([]byte, 512), nil}); !errors.Is(err, ErrChunkMissing) {
		t.Errorf("nil chunk error = %v", err)
	}
	if _, err := Assemble(&share.Manifest, [][]byte{make([]byte, 512), make([]byte, 10)}); !errors.Is(err, ErrBadManifest) {
		t.Errorf("wrong-size chunk error = %v", err)
	}
}

func TestManifestJSONRoundTrip(t *testing.T) {
	data := make([]byte, 600)
	share, err := BuildShare("doc.pdf", data, testPlan(), 50, testSecret())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := share.BatchForPeer(0, 2); err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(share.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.Name != "doc.pdf" || got.TotalSize != 600 || len(got.Chunks) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.DigestCount() != share.Manifest.DigestCount() {
		t.Errorf("digest count %d vs %d", got.DigestCount(), share.Manifest.DigestCount())
	}
}

func TestNewFileIDAndSecret(t *testing.T) {
	a, err := NewFileID()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFileID()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("two random file ids collided (astronomically unlikely)")
	}
	s, err := NewSecret()
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != rlnc.SecretLen {
		t.Errorf("secret len = %d", len(s))
	}
}

func TestBuildShareValidation(t *testing.T) {
	if _, err := BuildShare("x", nil, testPlan(), 1, testSecret()); err == nil {
		t.Error("empty data accepted")
	}
	badPlan := Plan{FieldBits: 9, M: 8, ChunkSize: 64}
	if _, err := BuildShare("x", make([]byte, 10), badPlan, 1, testSecret()); err == nil {
		t.Error("bad plan accepted")
	}
	if _, err := BuildShare("x", make([]byte, 10), testPlan(), 1, nil); err == nil {
		t.Error("empty secret accepted")
	}
}

func TestAssembleVerifiesContentDigest(t *testing.T) {
	data := []byte("hello chunked world, this is some content")
	share, err := BuildShare("c.txt", data, Plan{FieldBits: gf.Bits8, M: 8, ChunkSize: 64}, 1, testSecret())
	if err != nil {
		t.Fatal(err)
	}
	if share.Manifest.ContentMD5 != ContentDigest(data) {
		t.Fatal("BuildShare did not record the content digest")
	}
	good, err := Assemble(&share.Manifest, [][]byte{data})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(good, data) {
		t.Fatal("assemble mismatch")
	}
	// A corrupted chunk of the right size must be caught by the digest.
	bad := bytes.Clone(data)
	bad[3] ^= 1
	if _, err := Assemble(&share.Manifest, [][]byte{bad}); !errors.Is(err, ErrBadManifest) {
		t.Errorf("corrupted assembly error = %v", err)
	}
	// An empty digest disables the check (legacy manifests).
	share.Manifest.ContentMD5 = ""
	if _, err := Assemble(&share.Manifest, [][]byte{bad}); err != nil {
		t.Errorf("digest-free assembly error = %v", err)
	}
}

func TestShareEncoderAccessor(t *testing.T) {
	share, err := BuildShare("x", make([]byte, 600), testPlan(), 9, testSecret())
	if err != nil {
		t.Fatal(err)
	}
	if share.Encoder(0) == nil || share.Encoder(1) == nil {
		t.Fatal("Encoder returned nil")
	}
	if share.Encoder(0).FileID() != share.Manifest.Chunks[0].FileID {
		t.Error("Encoder file-id mismatch")
	}
}

func TestChunkInfoParamsError(t *testing.T) {
	info := ChunkInfo{FileID: 1, DataLen: 10, K: 0}
	if _, err := info.Params(testPlan()); err == nil {
		t.Error("k=0 params accepted")
	}
	badPlan := Plan{FieldBits: 9, M: 8, ChunkSize: 64}
	info.K = 1
	if _, err := info.Params(badPlan); err == nil {
		t.Error("bad field params accepted")
	}
}

func TestChangedChunksInPackage(t *testing.T) {
	oldData := make([]byte, 1200)
	newData := bytes.Clone(oldData)
	newData[600] ^= 1
	got, err := ChangedChunks(oldData, newData, 512)
	if err != nil || len(got) != 1 || got[0] != 1 {
		t.Errorf("ChangedChunks = %v, %v", got, err)
	}
}
