package chunk

// Share building: the initialization phase of Sec. III-A applied to a
// whole file. Each 1 MB generation is encoded independently; for every
// storage peer a batch of up to k messages per generation is produced
// (with the batch coefficient matrix guaranteed invertible, see
// rlnc.Encoder.BatchForPeer) and the MD5 digest of every produced
// message is recorded in the manifest for later authentication.

import (
	"fmt"

	"asymshare/internal/gf"
	"asymshare/internal/rlnc"
)

// Share holds everything the owner produces when sharing one file: the
// public manifest, the private secret, and the per-generation encoders
// which can mint message batches for any peer on demand.
type Share struct {
	Manifest Manifest
	Secret   []byte

	encoders []*rlnc.Encoder
}

// BuildShare encodes data under the plan with a fresh file-id per chunk
// derived from baseFileID (chunk i uses baseFileID + i). The secret must
// be non-empty; use NewSecret for a random one.
func BuildShare(name string, data []byte, plan Plan, baseFileID uint64, secret []byte) (*Share, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty data", ErrBadManifest)
	}
	field, err := gf.New(plan.FieldBits)
	if err != nil {
		return nil, err
	}
	pieces := Split(data, plan.ChunkSize)
	share := &Share{
		Manifest: Manifest{
			Name:       name,
			TotalSize:  int64(len(data)),
			Plan:       plan,
			Chunks:     make([]ChunkInfo, 0, len(pieces)),
			ContentMD5: ContentDigest(data),
		},
		Secret:   secret,
		encoders: make([]*rlnc.Encoder, 0, len(pieces)),
	}
	for i, piece := range pieces {
		params, err := rlnc.ParamsForSize(field, len(piece), plan.M)
		if err != nil {
			return nil, fmt.Errorf("chunk %d: %w", i, err)
		}
		fileID := baseFileID + uint64(i)
		enc, err := rlnc.NewEncoder(params, fileID, secret, piece)
		if err != nil {
			return nil, fmt.Errorf("chunk %d: %w", i, err)
		}
		share.encoders = append(share.encoders, enc)
		share.Manifest.Chunks = append(share.Manifest.Chunks, ChunkInfo{
			FileID:  fileID,
			DataLen: len(piece),
			K:       params.K,
			Digests: make(map[uint64]rlnc.Digest),
		})
	}
	return share, nil
}

// NumChunks returns the number of generations in the share.
func (s *Share) NumChunks() int { return len(s.encoders) }

// Encoder returns the encoder for generation i.
func (s *Share) Encoder(i int) *rlnc.Encoder { return s.encoders[i] }

// BatchForPeer mints the message batch (n messages per generation) for
// the given peer index and records the digests of every minted message
// in the manifest. The same (peer, n) always produces the same batch.
func (s *Share) BatchForPeer(peer, n int) ([][]*rlnc.Message, error) {
	out := make([][]*rlnc.Message, s.NumChunks())
	for i, enc := range s.encoders {
		count := min(n, enc.Params().K)
		batch, err := enc.BatchForPeer(peer, count)
		if err != nil {
			return nil, fmt.Errorf("chunk %d peer %d: %w", i, peer, err)
		}
		for _, msg := range batch {
			s.Manifest.Chunks[i].Digests[msg.MessageID] = msg.Digest()
		}
		out[i] = batch
	}
	return out, nil
}
