package chunk

// Version diffing for the data-modification path (Sec. VI-A). In-place
// edits are pushed as per-chunk deltas; only the generations that
// actually changed need any network traffic.

import "fmt"

// ErrSizeChanged is returned when two versions differ in length; delta
// updates only cover in-place edits, so a resize needs a fresh share.
var ErrSizeChanged = fmt.Errorf("chunk: version sizes differ: %w", ErrBadManifest)

// ChangedChunks compares two equal-length versions and returns the
// indexes of the chunks (under the given chunk size) whose bytes
// differ.
func ChangedChunks(oldData, newData []byte, chunkSize int) ([]int, error) {
	if len(oldData) != len(newData) {
		return nil, ErrSizeChanged
	}
	if chunkSize <= 0 {
		return nil, fmt.Errorf("%w: chunk size %d", ErrBadManifest, chunkSize)
	}
	var changed []int
	oldChunks := Split(oldData, chunkSize)
	newChunks := Split(newData, chunkSize)
	for i := range oldChunks {
		if !bytesEqual(oldChunks[i], newChunks[i]) {
			changed = append(changed, i)
		}
	}
	return changed, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
