module asymshare

go 1.22
