// Command benchalloc measures the allocation subsystem end to end and
// emits BENCH_alloc.json (see EXPERIMENTS.md).
//
// Two experiments:
//
//  1. Policy grid — a sim swarm of honest contributors plus always-on
//     free riders runs under each allocation policy (eq2, eq3, equal,
//     bci, classes). For each policy the report records the Jain
//     fairness index across honest users, the free riders' download
//     relative to an honest user (the incentive metric: low means
//     freeloading does not pay), and the slot at which an honest
//     user's smoothed download settles. The same grid repeats with
//     every peer on a bounded ShardedLedger small enough to force
//     evictions, pinning how much fidelity the bounded tail costs.
//
//  2. Ledger tick — a realloc tick (one PairwiseProportional.Allocate
//     over an active requester set) against ledgers that have seen up
//     to 10^5 distinct requesters. The sharded ledger's tracked
//     entries stay at its bound while tick time scales with the
//     active set, not the distinct population — the bounded-memory,
//     O(active) claim, measured rather than asserted.
//
// Usage:
//
//	benchalloc [-slots 600] [-seed 7] [-bound 16] [-json FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"asymshare/internal/fairshare"
	"asymshare/internal/sim"
	"asymshare/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchalloc:", err)
		os.Exit(1)
	}
}

const (
	honestPeers = 60
	freeRiders  = 12
	uploadKbps  = 1000
	demandGamma = 0.6
)

// policyReport is one policy row of BENCH_alloc.json. The *Bounded
// fields are the same run with eviction-forcing ShardedLedgers.
type policyReport struct {
	Policy                string  `json:"policy"`
	Jain                  float64 `json:"jain"`
	FreeRiderShare        float64 `json:"freerider_share"`
	ConvergenceSlot       int     `json:"convergence_slot"`
	JainBounded           float64 `json:"jain_bounded"`
	FreeRiderShareBounded float64 `json:"freerider_share_bounded"`
}

// tickReport is one ledger-tick row: one Allocate call over `Active`
// requesters against a ledger holding `Distinct` counterparts.
type tickReport struct {
	Ledger       string  `json:"ledger"`
	Distinct     int     `json:"distinct"`
	Active       int     `json:"active"`
	NsPerTick    float64 `json:"ns_per_tick"`
	AllocsPerRun float64 `json:"allocs_per_tick"`
	Entries      int     `json:"entries"`
	TailN        uint64  `json:"tail_n"`
}

type report struct {
	Seed        int64          `json:"seed"`
	Slots       int            `json:"slots"`
	HonestPeers int            `json:"honest_peers"`
	FreeRiders  int            `json:"free_riders"`
	LedgerBound int            `json:"ledger_bound"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	Policies    []policyReport `json:"policies"`
	LedgerTicks []tickReport   `json:"ledger_ticks"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchalloc", flag.ContinueOnError)
	slots := fs.Int("slots", 600, "simulated 1-second slots per policy run")
	seed := fs.Int64("seed", 7, "demand-process determinism seed")
	bound := fs.Int("bound", 64, "ShardedLedger bound for the bounded grid (force evictions: < peer count)")
	jsonPath := fs.String("json", "", "also write the JSON report here")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep := report{
		Seed:        *seed,
		Slots:       *slots,
		HonestPeers: honestPeers,
		FreeRiders:  freeRiders,
		LedgerBound: *bound,
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
	}

	fmt.Fprintf(out, "policy grid: %d honest + %d free riders, %d slots, bounded grid at bound %d\n",
		honestPeers, freeRiders, *slots, *bound)
	fmt.Fprintf(out, "%-8s %8s %10s %12s %14s %10s\n",
		"policy", "jain", "freerider", "convergence", "jain(bounded)", "fr(bnd)")
	for _, name := range []string{"eq2", "eq3", "equal", "bci", "classes"} {
		exact, err := runGrid(name, *slots, *seed, 0)
		if err != nil {
			return err
		}
		bounded, err := runGrid(name, *slots, *seed, *bound)
		if err != nil {
			return err
		}
		row := policyReport{
			Policy:                name,
			Jain:                  exact.jain,
			FreeRiderShare:        exact.freeRiderShare,
			ConvergenceSlot:       exact.convergence,
			JainBounded:           bounded.jain,
			FreeRiderShareBounded: bounded.freeRiderShare,
		}
		rep.Policies = append(rep.Policies, row)
		fmt.Fprintf(out, "%-8s %8.4f %10.4f %12d %14.4f %10.4f\n",
			name, row.Jain, row.FreeRiderShare, row.ConvergenceSlot,
			row.JainBounded, row.FreeRiderShareBounded)
	}

	fmt.Fprintf(out, "\nledger tick: PairwiseProportional.Allocate over the active set\n")
	fmt.Fprintf(out, "%-8s %9s %7s %12s %11s %8s %7s\n",
		"ledger", "distinct", "active", "ns/tick", "allocs/tick", "entries", "tail")
	for _, distinct := range []int{10_000, 100_000} {
		for _, active := range []int{64, 256, 1024} {
			for _, kind := range []string{"exact", "sharded"} {
				row := benchTick(kind, distinct, active)
				rep.LedgerTicks = append(rep.LedgerTicks, row)
				fmt.Fprintf(out, "%-8s %9d %7d %12.0f %11.1f %8d %7d\n",
					row.Ledger, row.Distinct, row.Active, row.NsPerTick,
					row.AllocsPerRun, row.Entries, row.TailN)
			}
		}
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %s\n", *jsonPath)
	}
	return nil
}

// gridResult is one sim run's summary.
type gridResult struct {
	jain           float64
	freeRiderShare float64
	convergence    int
}

// honestPolicy builds the policy the honest peers run under the given
// grid name. declared covers every peer name (eq3's declarations).
func honestPolicy(name string, declared map[fairshare.ID]float64) (fairshare.Allocator, error) {
	switch name {
	case "eq2":
		return fairshare.PairwiseProportional{}, nil
	case "eq3":
		return fairshare.GlobalProportional{DeclaredUpload: declared}, nil
	case "equal":
		return fairshare.EqualSplit{}, nil
	case "bci":
		return fairshare.BiasedContribution{}, nil
	case "classes":
		return fairshare.Classes{Weights: map[fairshare.ServiceClass]float64{1: 2}}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

// runGrid simulates one policy: honest contributors under the policy,
// free riders that request every slot and serve nothing. ledgerBound
// 0 runs exact pairwise ledgers.
func runGrid(name string, slots int, seed int64, ledgerBound int) (gridResult, error) {
	declared := make(map[fairshare.ID]float64, honestPeers+freeRiders)
	cfg := sim.Config{Slots: slots, LedgerBound: ledgerBound}
	for i := 0; i < honestPeers; i++ {
		pname := fmt.Sprintf("honest%02d", i)
		declared[fairshare.ID(pname)] = uploadKbps
		policy, err := honestPolicy(name, declared)
		if err != nil {
			return gridResult{}, err
		}
		cfg.Peers = append(cfg.Peers, sim.PeerConfig{
			Name:   pname,
			Upload: trace.Const(uploadKbps),
			Demand: trace.NewBernoulli(demandGamma, seed+int64(i)),
			Policy: policy,
			// Half the honest users ride the premium class so the
			// classes grid has both tiers; other policies ignore it.
			Class: fairshare.ServiceClass(i % 2),
		})
	}
	for i := 0; i < freeRiders; i++ {
		pname := fmt.Sprintf("rider%02d", i)
		// Free riders declare capacity (eq3 believes them) but withhold.
		declared[fairshare.ID(pname)] = uploadKbps
		cfg.Peers = append(cfg.Peers, sim.PeerConfig{
			Name:   pname,
			Upload: trace.Const(uploadKbps),
			Demand: trace.Always{},
			Policy: fairshare.Withhold{},
		})
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return gridResult{}, err
	}

	// Steady-state window: the second half of the run.
	from, to := slots/2, slots
	honest := make([]float64, honestPeers)
	for i := range honest {
		honest[i] = res.MeanDownloadWhileRequesting(i, from, to)
	}
	var riders float64
	for i := 0; i < freeRiders; i++ {
		riders += res.MeanDownloadWhileRequesting(honestPeers+i, from, to)
	}
	riders /= freeRiders
	honestMean := 0.0
	for _, v := range honest {
		honestMean += v
	}
	honestMean /= float64(len(honest))

	g := gridResult{jain: sim.JainIndex(honest), convergence: -1}
	if honestMean > 0 {
		g.freeRiderShare = riders / honestMean
	}
	// The raw series zeroes on non-requesting slots, so a fixed-window
	// moving average keeps wandering outside any tight tolerance and the
	// settle slot degenerates to the end of the run. The cumulative
	// average (window = series length) is monotone by the law of large
	// numbers, so its settle slot cleanly separates policies that
	// bootstrap slowly (ledger warm-up) from ones that are fair from
	// slot one.
	if target := res.MeanDownload(0, from, to); target > 0 {
		g.convergence = sim.ConvergenceSlot(res.Download[0], target, 0.1, len(res.Download[0]))
	}
	return g, nil
}

// benchTick measures one realloc tick against a ledger that has seen
// `distinct` counterparts, with `active` of them requesting.
func benchTick(kind string, distinct, active int) tickReport {
	var book fairshare.Book
	var sharded *fairshare.ShardedLedger
	if kind == "sharded" {
		sharded = fairshare.NewShardedLedger(fairshare.DefaultInitialCredit, fairshare.DefaultLedgerBound)
		book = sharded
	} else {
		book = fairshare.NewLedger(fairshare.DefaultInitialCredit)
	}
	ids := make([]fairshare.ID, distinct)
	for i := range ids {
		ids[i] = fairshare.ID(fmt.Sprintf("peer-%06d", i))
		book.Credit(ids[i], float64(i%97+1))
	}
	reqs := make([]fairshare.Requester, active)
	for i := range reqs {
		reqs[i] = fairshare.Requester{ID: ids[i*(distinct/active)]}
	}
	p := fairshare.PairwiseProportional{}
	req := fairshare.AllocRequest{
		Capacity:   1e6,
		Requesters: reqs,
		Ledger:     book,
		Scratch:    make(fairshare.Grants, 0, active),
	}
	tick := func() { req.Scratch = p.Allocate(req)[:0] }
	tick() // warm the scratch before measuring

	allocs := testing.AllocsPerRun(100, tick)
	const rounds = 2000
	start := time.Now()
	for i := 0; i < rounds; i++ {
		tick()
	}
	elapsed := time.Since(start)

	row := tickReport{
		Ledger:       kind,
		Distinct:     distinct,
		Active:       active,
		NsPerTick:    float64(elapsed.Nanoseconds()) / rounds,
		AllocsPerRun: allocs,
	}
	if sharded != nil {
		row.Entries = sharded.Entries()
		_, row.TailN = sharded.Tail()
	} else {
		row.Entries = distinct
	}
	return row
}
