// Command benchswarm measures trackerless-scale behavior on a netsim
// fabric: for each swarm size it boots N DHT+gossip nodes, gossips one
// generation from a seeder until ~99% of the swarm holds it in full,
// then samples iterative lookups from random members against the
// announced key. The report shows dissemination staying logarithmic in
// rounds and median lookup hops growing sub-linearly with N — the
// scaling argument for demoting the tracker to a bootstrap seed.
//
// Usage:
//
//	benchswarm [-sizes 64,256,1024] [-seed n] [-samples n]
//	           [-fanout n] [-tablecap n] [-json FILE]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"asymshare/internal/chunk"
	"asymshare/internal/dht"
	"asymshare/internal/gf"
	"asymshare/internal/gossip"
	"asymshare/internal/netsim"
	"asymshare/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchswarm:", err)
		os.Exit(1)
	}
}

// sizeReport is one row of the emitted BENCH_swarm.json.
type sizeReport struct {
	N             int     `json:"n"`
	JoinMS        float64 `json:"join_ms"`
	GossipRounds  int     `json:"gossip_rounds"`
	GossipMS      float64 `json:"gossip_ms"`
	Coverage      int     `json:"coverage"`
	LookupSamples int     `json:"lookup_samples"`
	HopsMedian    float64 `json:"hops_median"`
	HopsP90       float64 `json:"hops_p90"`
	HopsMax       int     `json:"hops_max"`
}

type report struct {
	Seed     int64        `json:"seed"`
	Fanout   int          `json:"fanout"`
	TableCap int          `json:"table_cap"`
	K        int          `json:"k"`
	GOOS     string       `json:"goos"`
	GOARCH   string       `json:"goarch"`
	Sizes    []sizeReport `json:"sizes"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchswarm", flag.ContinueOnError)
	sizesFlag := fs.String("sizes", "64,256,1024", "comma-separated swarm sizes")
	seed := fs.Int64("seed", 4242, "fabric + gossip determinism seed")
	samples := fs.Int("samples", 32, "lookup samples per size")
	fanout := fs.Int("fanout", 3, "gossip fanout")
	tableCap := fs.Int("tablecap", 32, "DHT routing-table capacity (small keeps hop growth visible)")
	jsonPath := fs.String("json", "", "also write the JSON report here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		return err
	}
	if *samples <= 0 || *fanout <= 0 || *tableCap <= 0 {
		return fmt.Errorf("samples, fanout, and tablecap must be positive")
	}

	rep := report{
		Seed:     *seed,
		Fanout:   *fanout,
		TableCap: *tableCap,
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
	}
	fmt.Fprintf(out, "# trackerless swarm scaling (fanout=%d, tablecap=%d, seed=%d)\n",
		*fanout, *tableCap, *seed)
	fmt.Fprintf(out, "%-8s %10s %8s %10s %10s %10s %8s %8s\n",
		"n", "join(ms)", "rounds", "gossip(ms)", "coverage", "hops(med)", "p90", "max")
	for _, n := range sizes {
		row, k, err := measure(n, *seed, *samples, *fanout, *tableCap)
		if err != nil {
			return fmt.Errorf("size %d: %w", n, err)
		}
		rep.K = k
		rep.Sizes = append(rep.Sizes, row)
		fmt.Fprintf(out, "%-8d %10.1f %8d %10.1f %7d/%-3d %10.1f %8.1f %8d\n",
			n, row.JoinMS, row.GossipRounds, row.GossipMS, row.Coverage, n,
			row.HopsMedian, row.HopsP90, row.HopsMax)
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *jsonPath)
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}

// member is one swarm node: a DHT node and a gossip engine over a
// shared in-memory store.
type member struct {
	node   *dht.Node
	engine *gossip.Engine
	store  *store.Memory
}

func (m *member) close() {
	if m.engine != nil {
		m.engine.Close()
	}
	if m.node != nil {
		m.node.Close()
	}
}

// bootMember starts the DHT node and gossip engine for one fabric
// host. The gossip listener binds first so its address rides in the
// node's contact records.
func bootMember(f *netsim.Fabric, host string, tableCap, fanout int, seed int64) (*member, error) {
	tr := f.Host(host)
	gossipLn, err := tr.Listen(":0")
	if err != nil {
		return nil, err
	}
	dhtLn, err := tr.Listen(":0")
	if err != nil {
		gossipLn.Close()
		return nil, err
	}
	node, err := dht.New(dht.Config{
		Advertise:  dhtLn.Addr().String(),
		Transport:  tr,
		GossipAddr: gossipLn.Addr().String(),
		TableCap:   tableCap,
		RPCTimeout: 2 * time.Second,
	})
	if err != nil {
		gossipLn.Close()
		dhtLn.Close()
		return nil, err
	}
	if err := node.StartListener(dhtLn); err != nil {
		node.Close()
		gossipLn.Close()
		return nil, err
	}
	m := &member{node: node, store: store.NewMemory()}
	m.engine, err = gossip.New(gossip.Config{
		Advertise: gossipLn.Addr().String(),
		Transport: tr,
		Store:     m.store,
		Fanout:    fanout,
		Seed:      seed,
		Contacts: func(want int) []string {
			cs := node.RandomContacts(want)
			out := make([]string, 0, len(cs))
			for _, c := range cs {
				if c.Gossip != "" {
					out = append(out, c.Gossip)
				}
			}
			return out
		},
	})
	if err != nil {
		node.Close()
		gossipLn.Close()
		return nil, err
	}
	if err := m.engine.StartListener(gossipLn); err != nil {
		m.close()
		return nil, err
	}
	return m, nil
}

// measure boots one swarm of n members, gossips a generation to >= 99%
// coverage, announces the key from the seeder, and samples lookups.
func measure(n int, seed int64, samples, fanout, tableCap int) (sizeReport, int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	f := netsim.NewFabric(seed)
	f.SetDefaultPolicy(netsim.LinkPolicy{Latency: 100 * time.Microsecond})

	members := make([]*member, n)
	defer func() {
		for _, m := range members {
			if m != nil {
				m.close()
			}
		}
	}()
	for i := range members {
		m, err := bootMember(f, "b"+strconv.Itoa(i), tableCap, fanout, seed+int64(i))
		if err != nil {
			return sizeReport{}, 0, err
		}
		members[i] = m
	}

	joinStart := time.Now()
	if err := joinAll(ctx, members); err != nil {
		return sizeReport{}, 0, err
	}
	// One bucket-refresh wave: every table converges on the live swarm
	// instead of its join-time snapshot, as the background refreshLoop
	// would do over time in a real deployment.
	refreshAll(ctx, members)
	joinMS := float64(time.Since(joinStart).Microseconds()) / 1000

	// Seed one generation (k = 8 over GF(2^8)) into member 0 and drive
	// lockstep rounds until >= 99% of the swarm holds it in full.
	fileID, k, err := seedGeneration(members[0].engine, seed)
	if err != nil {
		return sizeReport{}, 0, err
	}
	target := n - n/100
	maxRounds := 200
	gossipStart := time.Now()
	rounds := 0
	coverage := 0
	for ; rounds < maxRounds; rounds++ {
		if coverage = countCoverage(members, fileID, k); coverage >= target {
			break
		}
		runRound(ctx, members)
	}
	coverage = countCoverage(members, fileID, k)
	gossipMS := float64(time.Since(gossipStart).Microseconds()) / 1000
	if coverage < target {
		return sizeReport{}, 0, fmt.Errorf("coverage stalled at %d/%d after %d rounds", coverage, n, rounds)
	}

	// The seeder announces; random members resolve, counting hops.
	key := dht.KeyFromFileID(fileID)
	if err := members[0].node.Announce(ctx, key, members[0].node.Addr(), 10*time.Minute); err != nil {
		return sizeReport{}, 0, err
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1e))
	hops := make([]int, 0, samples)
	for len(hops) < samples {
		m := members[1+rng.Intn(n-1)]
		res, err := m.node.LookupStats(ctx, key)
		if err != nil {
			return sizeReport{}, 0, fmt.Errorf("sample lookup: %w", err)
		}
		hops = append(hops, res.Hops)
	}
	sort.Ints(hops)
	row := sizeReport{
		N:             n,
		JoinMS:        joinMS,
		GossipRounds:  rounds,
		GossipMS:      gossipMS,
		Coverage:      coverage,
		LookupSamples: samples,
		HopsMedian:    quantile(hops, 0.5),
		HopsP90:       quantile(hops, 0.9),
		HopsMax:       hops[len(hops)-1],
	}
	return row, k, nil
}

func joinAll(ctx context.Context, members []*member) error {
	bootstrap := members[0].node.Addr()
	sem := make(chan struct{}, 64)
	var wg sync.WaitGroup
	errs := make(chan error, len(members))
	for _, m := range members[1:] {
		wg.Add(1)
		sem <- struct{}{}
		go func(m *member) {
			defer wg.Done()
			defer func() { <-sem }()
			var lastErr error
			for attempt := 0; attempt < 4; attempt++ {
				if lastErr = m.node.Join(ctx, bootstrap); lastErr == nil {
					return
				}
				select {
				case <-ctx.Done():
					errs <- lastErr
					return
				case <-time.After(time.Duration(100<<attempt) * time.Millisecond):
				}
			}
			errs <- lastErr
		}(m)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	return nil
}

// seedGeneration mints one full-rank generation and seeds it into the
// engine, returning its file id and rank.
func seedGeneration(eng *gossip.Engine, seed int64) (uint64, int, error) {
	plan := chunk.Plan{FieldBits: gf.Bits8, M: 64, ChunkSize: 512}
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, 500)
	rng.Read(data)
	secret, err := chunk.NewSecret()
	if err != nil {
		return 0, 0, err
	}
	baseID, err := chunk.NewFileID()
	if err != nil {
		return 0, 0, err
	}
	share, err := chunk.BuildShare("bench.bin", data, plan, baseID, secret)
	if err != nil {
		return 0, 0, err
	}
	batches, err := share.BatchForPeer(0, 1<<31-1)
	if err != nil {
		return 0, 0, err
	}
	info := share.Manifest.Chunks[0]
	batch := batches[0]
	payloadLen := 0
	if len(batch) > 0 {
		payloadLen = len(batch[0].Payload)
	}
	if err := eng.Seed(info.FileID, info.K, payloadLen, batch); err != nil {
		return 0, 0, err
	}
	return info.FileID, info.K, nil
}

func refreshAll(ctx context.Context, members []*member) {
	sem := make(chan struct{}, 64)
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		sem <- struct{}{}
		go func(m *member) {
			defer wg.Done()
			defer func() { <-sem }()
			m.node.Refresh(ctx)
		}(m)
	}
	wg.Wait()
}

func runRound(ctx context.Context, members []*member) {
	sem := make(chan struct{}, 64)
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		sem <- struct{}{}
		go func(e *gossip.Engine) {
			defer wg.Done()
			defer func() { <-sem }()
			_, _ = e.Round(ctx)
		}(m.engine)
	}
	wg.Wait()
}

func countCoverage(members []*member, fileID uint64, k int) int {
	full := 0
	for _, m := range members {
		if m.store.Count(fileID) >= k {
			full++
		}
	}
	return full
}

func quantile(sorted []int, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return float64(sorted[len(sorted)-1])
	}
	frac := pos - float64(lo)
	return float64(sorted[lo])*(1-frac) + float64(sorted[lo+1])*frac
}
