// Command benchrlc measures random-linear-coding performance across
// the (field, message-length) grid of Tables I/II and reports both the
// raw decode seconds and the implied real-time decoding throughput —
// the numbers behind the paper's conclusion that larger fields (fewer
// messages k) decode faster even though each field operation costs
// more (Sec. V-B).
//
// Usage:
//
//	benchrlc [-size bytes] [-seed n] [-repeat n]
//	benchrlc -codec [-size bytes] [-reps n] [-json FILE]
//
// The second form benchmarks the codec engines instead — encode,
// sequential decode, and the parallel pipeline decode — across
// p in {8,16} and k in {32,64,128}, optionally emitting the
// BENCH_rlnc.json report (see codec.go).
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"asymshare/internal/figures"
	"asymshare/internal/gf"
	"asymshare/internal/rlnc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchrlc:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchrlc", flag.ContinueOnError)
	size := fs.Int("size", figures.TableDataBytes, "generation size in bytes")
	seed := fs.Int64("seed", 1, "payload seed")
	repeat := fs.Int("repeat", 1, "measurements per cell (best is reported)")
	codec := fs.Bool("codec", false, "benchmark the codec engines (encode, both decoders) instead of the Table I/II grid")
	reps := fs.Int("reps", 5, "codec mode: timed runs per cell after one warmup")
	jsonPath := fs.String("json", "", "codec mode: also write the JSON report here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *size <= 0 || *repeat <= 0 || *reps <= 0 {
		return fmt.Errorf("size, repeat, and reps must be positive")
	}
	if *codec {
		return runCodec(*size, *reps, *seed, *jsonPath, out)
	}

	rng := rand.New(rand.NewSource(*seed))
	data := make([]byte, *size)
	rng.Read(data)
	secret := make([]byte, rlnc.SecretLen)
	rng.Read(secret)

	fmt.Fprintf(out, "# RLNC decode timing for %d bytes (best of %d)\n", *size, *repeat)
	fmt.Fprintf(out, "%-10s %-8s %6s %12s %14s\n", "field", "m", "k", "decode(s)", "thrpt(MB/s)")
	for _, bits := range figures.TableFieldBits {
		field := gf.MustNew(bits)
		for _, m := range figures.TableMessageLens {
			params, err := rlnc.ParamsForSize(field, *size, m)
			if err != nil {
				return err
			}
			best := 0.0
			for r := 0; r < *repeat; r++ {
				secs, err := figures.MeasureDecode(field, m, data, secret)
				if err != nil {
					return err
				}
				if best == 0 || secs < best {
					best = secs
				}
			}
			mbps := float64(*size) / (1 << 20) / best
			fmt.Fprintf(out, "GF(2^%-3d)  2^%-6d %6d %12.4f %14.2f\n",
				bits, log2(m), params.K, best, mbps)
		}
	}
	return nil
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}
