package main

// Codec mode (-codec): benchmarks the encode path and both decode
// engines — the sequential reference Decoder and the parallel Pipeline
// — over the (p, k) grid from DESIGN.md §9, and optionally writes the
// machine-readable report consumed by EXPERIMENTS.md as
// BENCH_rlnc.json. The default table mode above is unchanged.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"asymshare/internal/gf"
	"asymshare/internal/rlnc"
)

var (
	codecFieldBits = []uint{gf.Bits8, gf.Bits16}
	codecKs        = []int{32, 64, 128}
)

// codecCell is one benchmark measurement: op x field x k at the
// configured generation size.
type codecCell struct {
	Op          string  `json:"op"` // encode | decode-sequential | decode-pipeline
	FieldBits   uint    `json:"p"`
	K           int     `json:"k"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// codecReport is the BENCH_rlnc.json schema.
type codecReport struct {
	SizeBytes int         `json:"size_bytes"`
	Reps      int         `json:"reps"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	Cells     []codecCell `json:"cells"`
}

// measure times fn over reps runs after one untimed warmup, reporting
// mean ns/op and per-op heap traffic across every goroutine.
func measure(reps int, fn func()) (nsPerOp float64, bytesPerOp, allocsPerOp int64) {
	fn() // warm caches, lazy hash state, pool buffers
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for r := 0; r < reps; r++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	nsPerOp = float64(elapsed.Nanoseconds()) / float64(reps)
	bytesPerOp = int64(after.TotalAlloc-before.TotalAlloc) / int64(reps)
	allocsPerOp = int64(after.Mallocs-before.Mallocs) / int64(reps)
	return nsPerOp, bytesPerOp, allocsPerOp
}

// codecParams builds the generation geometry for one grid cell.
func codecParams(bits uint, k, size int) (rlnc.Params, error) {
	if size%k != 0 {
		return rlnc.Params{}, fmt.Errorf("size %d not divisible by k=%d", size, k)
	}
	chunkBytes := size / k
	bytesPerSym := int(bits+7) / 8
	if chunkBytes%bytesPerSym != 0 {
		return rlnc.Params{}, fmt.Errorf("chunk %dB not whole GF(2^%d) symbols", chunkBytes, bits)
	}
	return rlnc.NewParams(gf.MustNew(bits), k, chunkBytes/bytesPerSym, size)
}

// runCodec executes the codec benchmark grid, prints a table, and
// writes jsonPath (when non-empty).
func runCodec(size, reps int, seed int64, jsonPath string, out io.Writer) error {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, size)
	rng.Read(data)
	secret := make([]byte, rlnc.SecretLen)
	rng.Read(secret)

	report := codecReport{
		SizeBytes: size,
		Reps:      reps,
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	fmt.Fprintf(out, "# RLNC codec engine benchmarks, %d-byte generations (mean of %d)\n", size, reps)
	fmt.Fprintf(out, "%-18s %4s %5s %14s %12s %14s %12s\n",
		"op", "p", "k", "ns/op", "MB/s", "B/op", "allocs/op")
	mb := float64(size) / (1 << 20)
	for _, bits := range codecFieldBits {
		for _, k := range codecKs {
			params, err := codecParams(bits, k, size)
			if err != nil {
				return err
			}
			enc, err := rlnc.NewEncoder(params, 1, secret, data)
			if err != nil {
				return err
			}
			// Enough prefabricated messages to reach rank k even if a
			// few derived rows happen to be dependent.
			msgs := make([]*rlnc.Message, k+4)
			for i := range msgs {
				msgs[i] = enc.Message(uint64(i))
			}
			type bench struct {
				op string
				fn func()
			}
			benches := []bench{
				{op: "encode", fn: func() {
					for i := 0; i < k; i++ {
						enc.Message(uint64(i))
					}
				}},
				{op: "decode-sequential", fn: func() {
					dec, err := rlnc.NewDecoder(params, 1, secret, nil)
					if err != nil {
						panic(err)
					}
					for _, msg := range msgs {
						if dec.Done() {
							break
						}
						if _, err := dec.Add(msg); err != nil {
							panic(err)
						}
					}
					if _, err := dec.Decode(); err != nil {
						panic(err)
					}
				}},
			}
			pipe, err := rlnc.NewPipeline(params, 1, secret, nil, rlnc.PipelineConfig{})
			if err != nil {
				return err
			}
			pipeOut := make([]byte, params.DataLen)
			benches = append(benches, bench{op: "decode-pipeline", fn: func() {
				for _, msg := range msgs {
					if pipe.Done() {
						break
					}
					if _, err := pipe.Add(msg); err != nil {
						panic(err)
					}
				}
				if err := pipe.DecodeInto(pipeOut); err != nil {
					panic(err)
				}
				pipe.Reset()
			}})
			for _, b := range benches {
				ns, bytesOp, allocsOp := measure(reps, b.fn)
				cell := codecCell{
					Op:          b.op,
					FieldBits:   bits,
					K:           k,
					NsPerOp:     ns,
					MBPerSec:    mb / (ns / 1e9),
					BytesPerOp:  bytesOp,
					AllocsPerOp: allocsOp,
				}
				report.Cells = append(report.Cells, cell)
				fmt.Fprintf(out, "%-18s %4d %5d %14.0f %12.2f %14d %12d\n",
					cell.Op, cell.FieldBits, cell.K, cell.NsPerOp, cell.MBPerSec,
					cell.BytesPerOp, cell.AllocsPerOp)
			}
			pipe.Close()
		}
	}
	if jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "# wrote %s\n", jsonPath)
	}
	return nil
}
