package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmallGrid(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-size", "65536", "-repeat", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"GF(2^4", "GF(2^32", "thrpt(MB/s)"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// 4 fields x 6 message lengths + 2 header lines.
	if got := len(strings.Split(strings.TrimSpace(s), "\n")); got != 26 {
		t.Errorf("output lines = %d, want 26", got)
	}
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-size", "0"}, &out); err == nil {
		t.Error("zero size accepted")
	}
	if err := run([]string{"-repeat", "0"}, &out); err == nil {
		t.Error("zero repeat accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 8: 3, 1 << 15: 15}
	for n, want := range cases {
		if got := log2(n); got != want {
			t.Errorf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRunCodecMode(t *testing.T) {
	var out bytes.Buffer
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-codec", "-size", "32768", "-reps", "1", "-json", jsonPath}, &out); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var report codecReport
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	// 3 ops x 2 fields x 3 ks.
	if len(report.Cells) != 18 {
		t.Fatalf("report has %d cells, want 18", len(report.Cells))
	}
	ops := map[string]bool{}
	for _, c := range report.Cells {
		ops[c.Op] = true
		if c.MBPerSec <= 0 || c.NsPerOp <= 0 {
			t.Errorf("cell %+v has non-positive rates", c)
		}
	}
	for _, op := range []string{"encode", "decode-sequential", "decode-pipeline"} {
		if !ops[op] {
			t.Errorf("report missing op %q", op)
		}
	}
	if !strings.Contains(out.String(), "decode-pipeline") {
		t.Error("table output missing decode-pipeline rows")
	}
}

func TestRunCodecModeBadGeometry(t *testing.T) {
	var out bytes.Buffer
	// 1000 bytes is not divisible by k=32 chunks of whole symbols.
	if err := run([]string{"-codec", "-size", "1000", "-reps", "1"}, &out); err == nil {
		t.Error("indivisible size accepted")
	}
}
