package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmallGrid(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-size", "65536", "-repeat", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"GF(2^4", "GF(2^32", "thrpt(MB/s)"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// 4 fields x 6 message lengths + 2 header lines.
	if got := len(strings.Split(strings.TrimSpace(s), "\n")); got != 26 {
		t.Errorf("output lines = %d, want 26", got)
	}
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-size", "0"}, &out); err == nil {
		t.Error("zero size accepted")
	}
	if err := run([]string{"-repeat", "0"}, &out); err == nil {
		t.Error("zero repeat accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 8: 3, 1 << 15: 15}
	for n, want := range cases {
		if got := log2(n); got != want {
			t.Errorf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}
