package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-peers", "1", "-leeches", "0"}, &out); err == nil {
		t.Error("single participant accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunSmallUnshaped(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-peers", "2", "-leeches", "0", "-upload", "0",
		"-data", "8192", "-rounds", "1",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "honest0") || !strings.Contains(s, "round") {
		t.Errorf("output: %q", s)
	}
}

func TestRunWithLeechSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("shaped multi-round experiment")
	}
	var out bytes.Buffer
	err := run([]string{
		"-peers", "2", "-leeches", "1", "-upload", "262144",
		"-data", "131072", "-rounds", "2", "-burst", "16384",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "post-bootstrap means") {
		t.Errorf("missing summary: %q", out.String())
	}
}
