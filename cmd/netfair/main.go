// Command netfair runs the fairness experiment over the real TCP stack
// (the paper's future-work "dynamic real-time environment"): n
// user/peer pairs with shaped uplinks concurrently fetch their own
// generations from each other, feeding receipts back into the Eq. (2)
// allocator, optionally with freeloading peers mixed in.
//
// Usage:
//
//	netfair [-peers 4] [-leeches 1] [-upload 262144] [-data 262144]
//	        [-rounds 3] [-burst 16384] [-csv grants.csv]
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"asymshare/internal/netbench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netfair:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("netfair", flag.ContinueOnError)
	peers := fs.Int("peers", 4, "number of honest user/peer pairs")
	leeches := fs.Int("leeches", 1, "number of withholding (freeloading) pairs")
	upload := fs.Float64("upload", 256<<10, "upload shaping per peer, bytes/s")
	data := fs.Int("data", 256<<10, "generation size each pair shares, bytes")
	rounds := fs.Int("rounds", 3, "concurrent fetch rounds")
	burst := fs.Float64("burst", 16<<10, "per-stream token-bucket burst, bytes")
	seed := fs.Int64("seed", 1, "payload seed")
	timeout := fs.Duration("timeout", 5*time.Minute, "experiment deadline")
	csvPath := fs.String("csv", "", "write per-round allocator grant samples (round,peer,requester,granted_bytes_per_sec) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *peers < 1 || *peers+*leeches < 2 {
		return fmt.Errorf("need at least 2 participants (peers=%d leeches=%d)", *peers, *leeches)
	}

	cfg := netbench.Config{
		DataBytes:      *data,
		Rounds:         *rounds,
		StreamBurst:    *burst,
		Seed:           *seed,
		CollectMetrics: *csvPath != "",
	}
	for i := 0; i < *peers; i++ {
		cfg.Peers = append(cfg.Peers, netbench.PeerSpec{
			Name:              fmt.Sprintf("honest%d", i),
			UploadBytesPerSec: *upload,
		})
	}
	for i := 0; i < *leeches; i++ {
		cfg.Peers = append(cfg.Peers, netbench.PeerSpec{
			Name:              fmt.Sprintf("leech%d", i),
			UploadBytesPerSec: *upload,
			Withhold:          true,
		})
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	fmt.Fprintf(out, "running %d honest + %d leeching pairs, %d KiB generations, %d rounds, %.0f KiB/s uplinks\n",
		*peers, *leeches, *data>>10, *rounds, *upload/1024)
	res, err := netbench.Run(ctx, cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "\n%-10s", "round")
	for _, name := range res.Names {
		fmt.Fprintf(out, " %12s", name)
	}
	fmt.Fprintln(out)
	for r := 0; r < *rounds; r++ {
		fmt.Fprintf(out, "%-10d", r)
		for i := range res.Names {
			fmt.Fprintf(out, " %9.0f KB/s", res.RateBytesPerSec[i][r]/1024)
		}
		fmt.Fprintln(out)
	}
	if *rounds > 1 && *leeches > 0 {
		honest := 0.0
		for i := 0; i < *peers; i++ {
			honest += res.MeanRate(i, 1, *rounds)
		}
		honest /= float64(*peers)
		leech := 0.0
		for i := *peers; i < *peers+*leeches; i++ {
			leech += res.MeanRate(i, 1, *rounds)
		}
		leech /= float64(*leeches)
		fmt.Fprintf(out, "\npost-bootstrap means: honest %.0f KB/s vs leech %.0f KB/s (%.2fx)\n",
			honest/1024, leech/1024, honest/leech)
	}
	if *csvPath != "" {
		if err := writeGrantCSV(*csvPath, res.GrantSamples); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %d grant samples to %s\n", len(res.GrantSamples), *csvPath)
	}
	return nil
}

// writeGrantCSV dumps the per-round allocator grants — peer i's
// mu_ij(t) toward each requester j — as a flat CSV for plotting the
// convergence behaviour of Fig. 6/7 from a live run.
func writeGrantCSV(path string, samples []netbench.GrantSample) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"round", "peer", "requester", "granted_bytes_per_sec"}); err != nil {
		f.Close()
		return err
	}
	for _, s := range samples {
		rec := []string{
			strconv.Itoa(s.Round),
			s.Peer,
			s.Requester,
			strconv.FormatFloat(s.BytesPerSec, 'f', 1, 64),
		}
		if err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
