package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunRequiresTarget(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("no target accepted")
	}
	if err := run([]string{"fig5a", "extra"}, &out); err == nil {
		t.Error("two targets accepted")
	}
	if err := run([]string{"nope"}, &out); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestFig1Target(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"fig1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"fig1", "dialup-upload@28kbps", "cable-download@3Mbps", "headline"} {
		if !strings.Contains(s, want) {
			t.Errorf("fig1 output missing %q", want)
		}
	}
}

func TestTable1Target(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"table1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "GF(2^32)\t32\t16\t8\t4\t2\t1") {
		t.Errorf("table1 row wrong:\n%s", out.String())
	}
}

func TestQuickSimTargets(t *testing.T) {
	for _, target := range []string{"fig5a", "fig5b", "fig6", "fig7", "fig8a", "fig8b"} {
		var out bytes.Buffer
		if err := run([]string{"-quick", target}, &out); err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		if !strings.Contains(out.String(), target) {
			t.Errorf("%s output missing id header", target)
		}
		if len(strings.Split(out.String(), "\n")) < 10 {
			t.Errorf("%s output suspiciously short", target)
		}
	}
}

func TestQuickTable2(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "table2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "decode time") {
		t.Errorf("table2 output: %q", out.String())
	}
}

func TestAllTargetQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every generator")
	}
	var out bytes.Buffer
	if err := run([]string{"-quick", "all"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig1", "table1", "table2", "fig5a", "fig5b", "fig6", "fig7", "fig8a", "fig8b"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("'all' output missing %s", id)
		}
	}
}
