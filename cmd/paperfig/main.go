// Command paperfig regenerates every table and figure of the paper's
// evaluation as TSV on stdout.
//
// Usage:
//
//	paperfig [flags] <fig1|table1|table2|fig5a|fig5b|fig6|fig7|fig8a|fig8b|all>
//
// Flags:
//
//	-slots N        override simulated seconds for fig5a/fig5b/fig8a/fig8b
//	-slots-per-hour N  time resolution for fig6/fig7 (default 3600)
//	-seed N         RNG seed for the duty-cycle experiments
//	-quick          shrink every experiment for a fast smoke run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"asymshare/internal/figures"
	"asymshare/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paperfig:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("paperfig", flag.ContinueOnError)
	slots := fs.Int("slots", 0, "simulated seconds (0 = paper default)")
	slotsPerHour := fs.Int("slots-per-hour", 3600, "slots per hour for fig6/fig7")
	seed := fs.Int64("seed", 2006, "seed for randomized workloads")
	quick := fs.Bool("quick", false, "shrink experiments for a fast run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one target, got %d (try 'all')", fs.NArg())
	}
	target := fs.Arg(0)
	if *quick {
		if *slots == 0 {
			*slots = 1200
		}
		*slotsPerHour = 300
	}

	targets := []string{target}
	switch target {
	case "all":
		targets = []string{"fig1", "table1", "table2", "fig5a", "fig5b", "fig6", "fig7", "fig8a", "fig8b"}
	case "ablations":
		targets = []string{"ablation-liar", "ablation-tft", "ablation-decay", "robustness", "churn", "quantization"}
	}
	for i, tg := range targets {
		if i > 0 {
			fmt.Fprintln(out)
		}
		if err := emit(out, tg, *slots, *slotsPerHour, *seed, *quick); err != nil {
			return fmt.Errorf("%s: %w", tg, err)
		}
	}
	return nil
}

func emit(out io.Writer, target string, slots, slotsPerHour int, seed int64, quick bool) error {
	switch target {
	case "fig1":
		up, down := figures.Fig1Headline()
		fig := figures.Fig1()
		if err := fig.WriteTSV(out); err != nil {
			return err
		}
		_, err := fmt.Fprintf(out, "# headline: 1h mpeg2 home video (~1GB): upload %.1f h vs download %.0f min\n",
			up, down*60)
		return err
	case "table1":
		return figures.Table1().Write(out)
	case "table2":
		opts := figures.Table2Options{Seed: seed}
		if quick {
			opts.DataBytes = 256 << 10
		}
		tbl, err := figures.Table2(opts)
		if err != nil {
			return err
		}
		return tbl.Write(out)
	case "fig5a":
		fig, res, err := figures.Fig5a(slots)
		if err != nil {
			return err
		}
		if err := fig.WriteTSV(out); err != nil {
			return err
		}
		return summarizeFinal(out, res)
	case "fig5b":
		fig, res, err := figures.Fig5b(slots)
		if err != nil {
			return err
		}
		if err := fig.WriteTSV(out); err != nil {
			return err
		}
		return summarizeFinal(out, res)
	case "fig6", "fig7":
		opts := figures.HomeVideoOptions{SlotsPerHour: slotsPerHour, Seed: seed}
		if target == "fig7" {
			opts.Peer1StartHour = 3
		}
		fig, _, gains, err := figures.HomeVideo(opts)
		if err != nil {
			return err
		}
		if err := fig.WriteTSV(out); err != nil {
			return err
		}
		for i, g := range gains {
			if _, err := fmt.Fprintf(out, "# peer%d mean gain over isolation while requesting: %+.1f kbps\n", i, g); err != nil {
				return err
			}
		}
		return nil
	case "fig8a":
		fig, res, err := figures.Fig8a(slots)
		if err != nil {
			return err
		}
		if err := fig.WriteTSV(out); err != nil {
			return err
		}
		saver := res.MeanDownload(0, 1000, 1300)
		late := res.MeanDownload(1, 1000, 1300)
		_, err = fmt.Fprintf(out, "# post-join window: early contributor %.0f kbps vs late joiner %.0f kbps\n", saver, late)
		return err
	case "fig8b":
		fig, res, err := figures.Fig8b(figures.Fig8bOptions{Slots: slots})
		if err != nil {
			return err
		}
		if err := fig.WriteTSV(out); err != nil {
			return err
		}
		_, err = fmt.Fprintf(out, "# peer0 rate: before %.0f / during drop %.0f / after recovery %.0f kbps\n",
			res.MeanDownload(0, 800, 1000),
			res.MeanDownload(0, 2700, 3000),
			res.MeanDownload(0, res.Slots()-300, res.Slots()))
		return err
	case "quantization":
		sizes := []float64{64, 256, 1024, 4096, 16384}
		if quick {
			sizes = []float64{64, 4096}
		}
		tbl, err := figures.Quantization(float64(slots), sizes, seed)
		if err != nil {
			return err
		}
		return tbl.Write(out)
	case "churn":
		sessions := []float64{100, 400, 1600, 6400}
		if quick {
			sessions = []float64{100, 1600}
		}
		tbl, err := figures.ChurnSweep(slots, 8, sessions, seed)
		if err != nil {
			return err
		}
		return tbl.Write(out)
	case "robustness":
		tbl, err := figures.Robustness(figures.RobustnessOptions{Seed: seed})
		if err != nil {
			return err
		}
		return tbl.Write(out)
	case "ablation-liar":
		res, err := figures.LiarAblation(slots)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(out, "# ablation-liar: free-rider declaring 1e6 kbps\n"+
			"liar under Eq.3 (declared):  %8.1f kbps\n"+
			"liar under Eq.2 (measured):  %8.1f kbps\n"+
			"honest under Eq.2:           %8.1f kbps\n",
			res.LiarRateEq3, res.LiarRateEq2, res.HonestRateEq2)
		return err
	case "ablation-tft":
		res, err := figures.TitForTatAblation(slots)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(out, "# ablation-tft: Eq.2 vs top-2 tit-for-tat, saturated 100/300/600/1000 kbps\n"+
			"Jain(download/upload) Eq.2: %.4f\n"+
			"Jain(download/upload) TFT:  %.4f\n", res.JainEq2, res.JainTFT); err != nil {
			return err
		}
		for i, u := range res.Uploads {
			if _, err := fmt.Fprintf(out, "TFT peer%d: upload %.0f -> download %.0f kbps\n",
				i, u, res.DownloadsTFT[i]); err != nil {
				return err
			}
		}
		return nil
	case "ablation-decay":
		res, err := figures.DecayAblation(slots, 0)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(out, "# ablation-decay: post-drop rate of the degraded peer\n"+
			"cumulative ledger: %8.1f kbps\n"+
			"decaying  ledger (%.3f/slot): %8.1f kbps (faster adaptation)\n",
			res.RateCumulative, res.Decay, res.RateDecayed)
		return err
	default:
		return fmt.Errorf("unknown target %q", target)
	}
}

func summarizeFinal(out io.Writer, res *sim.Result) error {
	n := res.Slots()
	window := n / 10
	if window < 1 {
		window = 1
	}
	for i, name := range res.Names {
		if _, err := fmt.Fprintf(out, "# %s steady-state download: %.1f kbps\n",
			name, res.MeanDownload(i, n-window, n)); err != nil {
			return err
		}
	}
	return nil
}
