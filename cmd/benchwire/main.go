// Command benchwire measures the zero-copy wire hot path end to end:
// a real peer.Node serving generations over loopback TCP to the
// multiplexed client session, decoded by the parallel rlnc pipeline.
// For every (generation size x concurrent streams x pipeline workers)
// cell it reports three numbers: the decode-pipeline ceiling (AddBytes
// fed straight from memory, no network), the transport-only throughput
// (the same muxed fetch into a counting sink: framing, syscalls,
// demux, pool traffic, no decode), and the full loopback wire fetch.
// The fetch is scored against the achievable composite — on a
// multi-core machine transport and decode overlap, so the slower of
// the two bounds it (the "within 10% of the decode ceiling" claim of
// DESIGN.md §13); on one core their costs add. -gate turns that score
// into an exit code: below the threshold the run fails, which is how
// `make bench-wire` pins the claim.
//
// Usage:
//
//	benchwire [-sizes n,n] [-streams n,n] [-workers n,n] [-k n]
//	          [-reps n] [-json FILE] [-gate ratio]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/client"
	"asymshare/internal/gf"
	"asymshare/internal/peer"
	"asymshare/internal/rlnc"
	"asymshare/internal/store"
)

// wireCell is one benchmark measurement.
type wireCell struct {
	Op          string  `json:"op"` // decode-ceiling | transport-only | wire-fetch
	SizeBytes   int     `json:"size_bytes"`
	Streams     int     `json:"streams"`
	Workers     int     `json:"workers"`
	K           int     `json:"k"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Ratio       float64 `json:"ratio,omitempty"`      // wire-fetch: vs decode ceiling
	Achievable  float64 `json:"achievable,omitempty"` // wire-fetch: vs composite (gated)
}

// countSink is a ByteSink that verifies nothing and decodes nothing —
// it just counts, so a fetch through it measures the pure transport
// path: framing, syscalls, demux, pool traffic.
type countSink struct {
	mu    sync.Mutex
	bytes int64
	k     int
	seen  int
}

func (c *countSink) Add(msg *rlnc.Message) (bool, error) { return c.addN(len(msg.Payload)) }
func (c *countSink) AddBytes(data []byte) (bool, error)  { return c.addN(len(data)) }
func (c *countSink) addN(n int) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bytes += int64(n)
	c.seen++
	return true, nil
}
func (c *countSink) Rank() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seen
}
func (c *countSink) Done() bool        { return false } // drain the whole stream
func (c *countSink) Stats() rlnc.Stats { return rlnc.Stats{} }

// wireReport is the BENCH_wire.json schema, sibling to BENCH_rlnc.json.
type wireReport struct {
	Reps   int        `json:"reps"`
	GOOS   string     `json:"goos"`
	GOARCH string     `json:"goarch"`
	Cells  []wireCell `json:"cells"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchwire:", err)
		os.Exit(1)
	}
}

// intList parses a comma-separated list of positive integers.
func intList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad list entry %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

// measure times fn over reps runs after one untimed warmup, reporting
// mean ns/op and per-op heap traffic across every goroutine.
func measure(reps int, fn func() error) (nsPerOp float64, bytesPerOp, allocsPerOp int64, err error) {
	if err = fn(); err != nil { // warm caches, pools, hash state
		return
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for r := 0; r < reps; r++ {
		if err = fn(); err != nil {
			return
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	nsPerOp = float64(elapsed.Nanoseconds()) / float64(reps)
	bytesPerOp = int64(after.TotalAlloc-before.TotalAlloc) / int64(reps)
	allocsPerOp = int64(after.Mallocs-before.Mallocs) / int64(reps)
	return
}

// generation is one seeded file on the bench peer.
type generation struct {
	fileID  uint64
	params  rlnc.Params
	data    []byte
	digests map[uint64]rlnc.Digest
	frames  [][]byte // pre-marshaled messages, for the ceiling run
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchwire", flag.ContinueOnError)
	sizesFlag := fs.String("sizes", "1048576", "comma-separated generation sizes in bytes")
	streamsFlag := fs.String("streams", "1,4", "comma-separated concurrent stream counts per connection")
	workersFlag := fs.String("workers", "0", "comma-separated pipeline worker counts (0 = auto)")
	k := fs.Int("k", 64, "messages per generation")
	reps := fs.Int("reps", 3, "timed runs per cell after one warmup")
	jsonPath := fs.String("json", "", "also write the JSON report here")
	gate := fs.Float64("gate", 0, "fail unless every wire-fetch cell reaches this fraction of the achievable composite throughput (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes, err := intList(*sizesFlag)
	if err != nil {
		return fmt.Errorf("-sizes: %w", err)
	}
	streamsList, err := intList(*streamsFlag)
	if err != nil {
		return fmt.Errorf("-streams: %w", err)
	}
	workersList, err := intList(*workersFlag)
	if err != nil {
		return fmt.Errorf("-workers: %w", err)
	}
	if *k <= 0 || *reps <= 0 {
		return fmt.Errorf("k and reps must be positive")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// One peer node over real loopback TCP serves every cell.
	peerID, err := auth.IdentityFromSeed(bytes.Repeat([]byte{2}, 32))
	if err != nil {
		return err
	}
	node, err := peer.New(peer.Config{Identity: peerID, Store: store.NewMemory()})
	if err != nil {
		return err
	}
	if err := node.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer node.Close()

	userID, err := auth.IdentityFromSeed(bytes.Repeat([]byte{3}, 32))
	if err != nil {
		return err
	}
	cl, err := client.New(userID, nil)
	if err != nil {
		return err
	}
	secret := bytes.Repeat([]byte{9}, rlnc.SecretLen)

	report := wireReport{Reps: *reps, GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	fmt.Fprintf(out, "# Wire hot-path benchmarks: loopback muxed fetch vs decode ceiling (mean of %d)\n", *reps)
	fmt.Fprintf(out, "%-16s %9s %8s %8s %12s %10s %7s\n",
		"op", "size", "streams", "workers", "ns/op", "MB/s", "ratio")

	var nextFile uint64 = 100
	gateFailed := false
	for _, size := range sizes {
		for _, nStreams := range streamsList {
			// Seed nStreams fresh generations on the peer.
			gens := make([]*generation, nStreams)
			for i := range gens {
				g, err := seedGeneration(ctx, cl, node.Addr().String(), nextFile, *k, size, secret)
				if err != nil {
					return err
				}
				nextFile++
				gens[i] = g
			}
			// Transport-only: the same muxed fetch through a sink that
			// counts instead of decoding — the pure wire cost of moving
			// the bytes (independent of the workers axis).
			session, err := cl.NewPeerSession(ctx, node.Addr().String())
			if err != nil {
				return err
			}
			transNs, transB, transA, err := measure(*reps, func() error {
				return transportOnly(ctx, session, gens)
			})
			session.Close()
			if err != nil {
				return fmt.Errorf("transport size=%d streams=%d: %w", size, nStreams, err)
			}
			totalMB := float64(size*nStreams) / (1 << 20)
			transMBs := totalMB / (transNs / 1e9)
			report.Cells = append(report.Cells, wireCell{
				Op: "transport-only", SizeBytes: size, Streams: nStreams,
				K: *k, NsPerOp: transNs, MBPerSec: transMBs,
				BytesPerOp: transB, AllocsPerOp: transA,
			})
			fmt.Fprintf(out, "%-16s %9d %8d %8s %12.0f %10.1f %7s\n",
				"transport-only", size, nStreams, "-", transNs, transMBs, "-")

			for _, workers := range workersList {
				cfg := rlnc.PipelineConfig{Workers: workers}

				ceilNs, ceilB, ceilA, err := measure(*reps, func() error {
					return decodeCeiling(gens, secret, cfg)
				})
				if err != nil {
					return fmt.Errorf("ceiling size=%d streams=%d: %w", size, nStreams, err)
				}
				ceilMBs := totalMB / (ceilNs / 1e9)
				report.Cells = append(report.Cells, wireCell{
					Op: "decode-ceiling", SizeBytes: size, Streams: nStreams,
					Workers: workers, K: *k, NsPerOp: ceilNs, MBPerSec: ceilMBs,
					BytesPerOp: ceilB, AllocsPerOp: ceilA,
				})
				fmt.Fprintf(out, "%-16s %9d %8d %8d %12.0f %10.1f %7s\n",
					"decode-ceiling", size, nStreams, workers, ceilNs, ceilMBs, "-")

				session, err := cl.NewPeerSession(ctx, node.Addr().String())
				if err != nil {
					return err
				}
				wireNs, wireB, wireA, err := measure(*reps, func() error {
					return wireFetch(ctx, session, gens, secret, cfg)
				})
				session.Close()
				if err != nil {
					return fmt.Errorf("wire fetch size=%d streams=%d: %w", size, nStreams, err)
				}
				wireMBs := totalMB / (wireNs / 1e9)
				ratio := wireMBs / ceilMBs
				// The achievable composite: on one core the serve/transport
				// work and the decode share the CPU, so their costs add; with
				// spare cores they overlap and the slower one is the bound.
				expectNs := ceilNs
				if transNs > expectNs {
					expectNs = transNs
				}
				if runtime.GOMAXPROCS(0) == 1 {
					expectNs = ceilNs + transNs
				}
				achievable := expectNs / wireNs
				report.Cells = append(report.Cells, wireCell{
					Op: "wire-fetch", SizeBytes: size, Streams: nStreams,
					Workers: workers, K: *k, NsPerOp: wireNs, MBPerSec: wireMBs,
					BytesPerOp: wireB, AllocsPerOp: wireA,
					Ratio: ratio, Achievable: achievable,
				})
				fmt.Fprintf(out, "%-16s %9d %8d %8d %12.0f %10.1f %7.2f (%.2f of achievable)\n",
					"wire-fetch", size, nStreams, workers, wireNs, wireMBs, ratio, achievable)
				if *gate > 0 && achievable < *gate {
					gateFailed = true
					fmt.Fprintf(out, "GATE FAIL: size=%d streams=%d workers=%d %.2f of achievable < %.2f\n",
						size, nStreams, workers, achievable, *gate)
				}
			}
		}
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *jsonPath)
	}
	if gateFailed {
		return fmt.Errorf("throughput gate %.2f not met", *gate)
	}
	return nil
}

// seedGeneration encodes size bytes into one generation, disseminates
// k+8 messages to the peer, and pre-marshals frames for the ceiling run.
func seedGeneration(ctx context.Context, cl *client.Client, addr string, fileID uint64, k, size int, secret []byte) (*generation, error) {
	params, err := rlnc.NewParams(gf.MustNew(gf.Bits8), k, size/k, size)
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	rand.New(rand.NewSource(int64(fileID))).Read(data)
	enc, err := rlnc.NewEncoder(params, fileID, secret, data)
	if err != nil {
		return nil, err
	}
	g := &generation{
		fileID:  fileID,
		params:  params,
		data:    data,
		digests: make(map[uint64]rlnc.Digest),
	}
	msgs := make([]*rlnc.Message, k+8)
	for i := range msgs {
		msgs[i] = enc.Message(uint64(i))
		g.digests[uint64(i)] = msgs[i].Digest()
		frame, err := msgs[i].MarshalBinary()
		if err != nil {
			return nil, err
		}
		g.frames = append(g.frames, frame)
	}
	if err := cl.Disseminate(ctx, addr, msgs); err != nil {
		return nil, fmt.Errorf("disseminate %d: %w", fileID, err)
	}
	return g, nil
}

// decodeCeiling runs the pure pipeline decode for every generation:
// pre-marshaled frames fed through AddBytes, no network.
func decodeCeiling(gens []*generation, secret []byte, cfg rlnc.PipelineConfig) error {
	var wg sync.WaitGroup
	errs := make([]error, len(gens))
	for i, g := range gens {
		wg.Add(1)
		go func(i int, g *generation) {
			defer wg.Done()
			errs[i] = func() error {
				pipe, err := rlnc.NewPipeline(g.params, g.fileID, secret, g.digests, cfg)
				if err != nil {
					return err
				}
				defer pipe.Close()
				for _, frame := range g.frames {
					if _, err := pipe.AddBytes(frame); err != nil {
						return err
					}
					if pipe.Done() {
						break
					}
				}
				got, err := pipe.Decode()
				if err != nil {
					return err
				}
				if !bytes.Equal(got, g.data) {
					return fmt.Errorf("file %d: ceiling decode diverges", g.fileID)
				}
				return nil
			}()
		}(i, g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// transportOnly pulls every generation concurrently over one muxed
// session into counting sinks — no verification, no decode — and
// checks that every byte arrived.
func transportOnly(ctx context.Context, s *client.PeerSession, gens []*generation) error {
	var wg sync.WaitGroup
	errs := make([]error, len(gens))
	for i, g := range gens {
		wg.Add(1)
		go func(i int, g *generation) {
			defer wg.Done()
			sink := &countSink{k: g.params.K}
			fetchCtx, cancel := context.WithCancel(ctx)
			defer cancel()
			if err := s.Fetch(fetchCtx, g.fileID, sink, nil); err != nil {
				errs[i] = err
				return
			}
			var want int64
			for _, f := range g.frames {
				want += int64(len(f))
			}
			if sink.bytes != want {
				errs[i] = fmt.Errorf("file %d: transported %d bytes, want %d", g.fileID, sink.bytes, want)
			}
		}(i, g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// wireFetch pulls every generation concurrently over one multiplexed
// session and verifies the decoded bytes.
func wireFetch(ctx context.Context, s *client.PeerSession, gens []*generation, secret []byte, cfg rlnc.PipelineConfig) error {
	var wg sync.WaitGroup
	errs := make([]error, len(gens))
	for i, g := range gens {
		wg.Add(1)
		go func(i int, g *generation) {
			defer wg.Done()
			errs[i] = func() error {
				pipe, err := rlnc.NewPipeline(g.params, g.fileID, secret, g.digests, cfg)
				if err != nil {
					return err
				}
				defer pipe.Close()
				fetchCtx, cancel := context.WithCancel(ctx)
				defer cancel()
				if err := s.Fetch(fetchCtx, g.fileID, pipe, nil); err != nil {
					return err
				}
				got, err := pipe.Decode()
				if err != nil {
					return err
				}
				if !bytes.Equal(got, g.data) {
					return fmt.Errorf("file %d: wire decode diverges", g.fileID)
				}
				return nil
			}()
		}(i, g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
