// Command dhtnode runs one node of the Kademlia-style content-location
// DHT — the decentralized alternative to cmd/tracker. Nodes joined into
// the same network replicate announcements on the K nodes closest to
// each key, so any node resolves any announced file-id.
//
// Usage:
//
//	dhtnode -listen 10.0.0.5:7500 [-join 10.0.0.1:7500] [-ttl 10m]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"asymshare/internal/dht"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dhtnode:", err)
		os.Exit(1)
	}
}

// run starts the node; if ready is non-nil the bound address is sent on
// it once serving (used by tests).
func run(args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("dhtnode", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7500", "listen address (also advertised)")
	join := fs.String("join", "", "bootstrap node address to join through")
	ttl := fs.Duration("ttl", dht.DefaultTTL, "maximum announcement lifetime")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("dhtnode: listen: %w", err)
	}
	node, err := dht.NewNode(ln.Addr().String(), *ttl)
	if err != nil {
		ln.Close()
		return err
	}
	if err := node.StartListener(ln); err != nil {
		ln.Close()
		return err
	}
	fmt.Fprintf(out, "dht node %s listening on %s\n", node.ID().String()[:16], node.Addr())
	if *join != "" {
		joinCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := node.Join(joinCtx, *join)
		cancel()
		if err != nil {
			node.Close()
			return err
		}
		fmt.Fprintf(out, "joined via %s; table holds %d contacts\n", *join, node.TableSize())
	}
	if ready != nil {
		ready <- node.Addr()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(out, "shutting down")
	return node.Close()
}
