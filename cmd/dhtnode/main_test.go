package main

import (
	"bytes"
	"context"
	"strings"
	"syscall"
	"testing"
	"time"

	"asymshare/internal/dht"
)

func TestRunTwoNodeNetwork(t *testing.T) {
	var out1, out2 bytes.Buffer
	ready1 := make(chan string, 1)
	done1 := make(chan error, 1)
	go func() { done1 <- run([]string{"-listen", "127.0.0.1:0"}, &out1, ready1) }()
	var addr1 string
	select {
	case addr1 = <-ready1:
	case <-time.After(5 * time.Second):
		t.Fatal("first node did not start")
	}

	ready2 := make(chan string, 1)
	done2 := make(chan error, 1)
	go func() {
		done2 <- run([]string{"-listen", "127.0.0.1:0", "-join", addr1}, &out2, ready2)
	}()
	var addr2 string
	select {
	case addr2 = <-ready2:
	case <-time.After(5 * time.Second):
		t.Fatal("second node did not start")
	}

	// Announce through a third, client-only node joined to the network.
	client, err := dht.NewNode("127.0.0.1:1", 0) // advertise unused; no listener
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := client.Join(ctx, addr2); err != nil {
		t.Fatal(err)
	}
	key := dht.KeyFromFileID(31337)
	if err := client.Announce(ctx, key, "peer:9", 0); err != nil {
		t.Fatal(err)
	}
	got, err := client.Lookup(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "peer:9" {
		t.Fatalf("Lookup = %v", got)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for _, done := range []chan error{done1, done2} {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("node did not shut down")
		}
	}
	if !strings.Contains(out2.String(), "joined via") {
		t.Errorf("join output: %q", out2.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-listen", "256.256.256.256:1"}, &out, nil); err == nil {
		t.Error("bad listen accepted")
	}
	if err := run([]string{"-listen", "127.0.0.1:0", "-join", "127.0.0.1:1"}, &out, nil); err == nil {
		t.Error("dead bootstrap join succeeded")
	}
	if err := run([]string{"-bogus"}, &out, nil); err == nil {
		t.Error("unknown flag accepted")
	}
}
