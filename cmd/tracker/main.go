// Command tracker runs the content-location service: peers announce
// which file-ids they hold, users look them up before fetching. It is
// discovery-only and never sees payloads, digests or secrets.
//
// Usage:
//
//	tracker [-listen 127.0.0.1:7000] [-ttl 10m] [-metrics 127.0.0.1:9091]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"asymshare/internal/metrics"
	"asymshare/internal/tracker"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "tracker:", err)
		os.Exit(1)
	}
}

// run starts the tracker; if ready is non-nil the bound address is sent
// on it once listening (used by tests).
func run(args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("tracker", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7000", "listen address")
	ttl := fs.Duration("ttl", tracker.DefaultTTL, "maximum announcement lifetime")
	metricsAddr := fs.String("metrics", "", "serve Prometheus metrics on this address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := tracker.NewServer(*ttl)
	if *metricsAddr != "" {
		reg := metrics.NewRegistry()
		srv.Instrument(reg)
		msrv, err := metrics.Serve(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer msrv.Close()
		fmt.Fprintf(out, "metrics on http://%s/metrics\n", msrv.Addr())
	}
	if err := srv.Start(*listen); err != nil {
		return err
	}
	fmt.Fprintf(out, "tracker listening on %s (max ttl %v)\n", srv.Addr(), *ttl)
	if ready != nil {
		ready <- srv.Addr().String()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(out, "shutting down")
	return srv.Close()
}
