package main

import (
	"bytes"
	"context"
	"strings"
	"syscall"
	"testing"
	"time"

	"asymshare/internal/tracker"
)

func TestRunServesUntilSignal(t *testing.T) {
	var out bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-ttl", "1m"}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("tracker did not start")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tracker.Announce(ctx, addr, 5, "p:1", 0); err != nil {
		t.Fatal(err)
	}
	got, err := tracker.Lookup(ctx, addr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "p:1" {
		t.Fatalf("Lookup = %v", got)
	}

	// Signal the process to shut down.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tracker did not shut down on SIGTERM")
	}
	if !strings.Contains(out.String(), "tracker listening") {
		t.Errorf("output: %q", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-listen", "256.256.256.256:1"}, &out, nil); err == nil {
		t.Error("bad listen address accepted")
	}
	if err := run([]string{"-bogus"}, &out, nil); err == nil {
		t.Error("unknown flag accepted")
	}
}
