// Command asymshare is the end-user tool: generate an identity, run a
// storage peer, share a file to a set of peers, and fetch it back from
// anywhere — the full workflow of the paper.
//
// Usage:
//
//	asymshare keygen  -out user.key
//	asymshare serve   -key peer.key -listen :7070 -store ./data -upload 262144
//	asymshare serve   -key peer.key -store ./data -policy eq2 -estimate ewma -ledger-bound 4096   # adaptive allocation
//	asymshare share   -key user.key -file video.mpg -peers a:7070,b:7070 -out video.handle
//	asymshare fetch   -key user.key -handle video.handle -secret <hex> -out video.mpg
//
// Trackerless mode (DHT discovery + rumor gossip; no tracker anywhere):
//
//	asymshare serve   -key peer.key -store ./data -dht-listen :7272 -gossip-listen :7373          # bootstrap
//	asymshare serve   -key peer2.key -store ./data2 -dht boot:7272 -gossip-listen :7374           # joins swarm
//	asymshare share   -key user.key -file video.mpg -gossip -dht boot:7272
//	asymshare fetch   -key user.key -handle video.mpg.handle -secret <hex> -dht boot:7272 -out video.mpg
//
// Other commands:
//
//	asymshare update  -key user.key -handle video.handle -secret <hex> -old v1.mpg -new v2.mpg
//	asymshare list    -key user.key -peer host:7070
//	asymshare audit   -key user.key -handle video.handle
//	asymshare spotcheck -key user.key -handle video.handle -secret <hex> [-sample 8] [-feedback host:7070]
//	asymshare auditdemo [-honest 2] [-size 4096] [-sample 8]
//	asymshare repair  -key user.key -handle video.handle -secret <hex> -file video.mpg
//	asymshare contracts -key user.key -peer host:7070
//	asymshare stats   -addr 127.0.0.1:9090 [-filter peer_]
//
// Storage peers advertise a contract capacity with `serve -capacity`
// (bytes; 0 = unlimited) and journal accepted obligations across
// restarts with `serve -contracts <path>`.
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/client"
	"asymshare/internal/core"
	"asymshare/internal/dht"
	"asymshare/internal/estimate"
	"asymshare/internal/fairshare"
	"asymshare/internal/fsx"
	"asymshare/internal/gossip"
	"asymshare/internal/metrics"
	"asymshare/internal/peer"
	"asymshare/internal/ring"
	"asymshare/internal/store"
	"asymshare/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "asymshare:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: asymshare <keygen|serve|share|fetch> [flags]")
	}
	switch args[0] {
	case "keygen":
		return cmdKeygen(args[1:], out)
	case "serve":
		return cmdServe(args[1:], out)
	case "share":
		return cmdShare(args[1:], out)
	case "fetch":
		return cmdFetch(args[1:], out)
	case "update":
		return cmdUpdate(args[1:], out)
	case "list":
		return cmdList(args[1:], out)
	case "audit":
		return cmdAudit(args[1:], out)
	case "spotcheck":
		return cmdSpotCheck(args[1:], out)
	case "auditdemo":
		return cmdAuditDemo(args[1:], out)
	case "repair":
		return cmdRepair(args[1:], out)
	case "contracts":
		return cmdContracts(args[1:], out)
	case "stats":
		return cmdStats(args[1:], out)
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// loadIdentity reads a 32-byte hex seed from a key file.
func loadIdentity(path string) (*auth.Identity, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	seed, err := hex.DecodeString(strings.TrimSpace(string(blob)))
	if err != nil {
		return nil, fmt.Errorf("key file %s: %w", path, err)
	}
	return auth.IdentityFromSeed(seed)
}

func cmdKeygen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("keygen", flag.ContinueOnError)
	outPath := fs.String("out", "", "file to write the key seed to (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return errors.New("keygen: -out is required")
	}
	seed := make([]byte, 32)
	if _, err := rand.Read(seed); err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, []byte(hex.EncodeToString(seed)+"\n"), 0o600); err != nil {
		return err
	}
	id, err := auth.IdentityFromSeed(seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\npublic key: %x\nfingerprint: %s\n", *outPath, id.Public(), id.Fingerprint())
	return nil
}

// parsePolicy maps the -policy flag to an allocator. weights is the
// -class-weights spec ("1:2,2:4"), meaningful only for classes.
func parsePolicy(name, weights string) (fairshare.Allocator, error) {
	if weights != "" && name != "classes" {
		return nil, fmt.Errorf("-class-weights requires -policy classes (got %q)", name)
	}
	switch name {
	case "eq2":
		return fairshare.PairwiseProportional{}, nil
	case "eq3":
		// The CLI carries no declaration channel yet, so every requester
		// declares zero and the policy equal-splits; the flag exists so
		// the baseline is runnable end to end.
		return fairshare.GlobalProportional{}, nil
	case "equal":
		return fairshare.EqualSplit{}, nil
	case "bci":
		return fairshare.BiasedContribution{}, nil
	case "classes":
		w, err := parseClassWeights(weights)
		if err != nil {
			return nil, err
		}
		return fairshare.Classes{Weights: w}, nil
	default:
		return nil, fmt.Errorf("unknown -policy %q (want eq2, eq3, equal, bci, or classes)", name)
	}
}

// parseClassWeights parses "class:weight,class:weight" pairs.
func parseClassWeights(spec string) (map[fairshare.ServiceClass]float64, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[fairshare.ServiceClass]float64)
	for _, pair := range strings.Split(spec, ",") {
		c, w, ok := strings.Cut(pair, ":")
		if !ok {
			return nil, fmt.Errorf("malformed -class-weights entry %q (want class:weight)", pair)
		}
		class, err := strconv.ParseUint(strings.TrimSpace(c), 10, 8)
		if err != nil {
			return nil, fmt.Errorf("class in %q: %w", pair, err)
		}
		weight, err := strconv.ParseFloat(strings.TrimSpace(w), 64)
		if err != nil {
			return nil, fmt.Errorf("weight in %q: %w", pair, err)
		}
		out[fairshare.ServiceClass(class)] = weight
	}
	return out, nil
}

// parseEstimator maps the -estimate flag to a capacity estimator (nil
// for off: the node divides the configured -upload constant).
func parseEstimator(name string) (estimate.Estimator, error) {
	switch name {
	case "off", "":
		return nil, nil
	case "ewma":
		return estimate.NewHistory(0, 0), nil
	case "probe":
		return estimate.NewProbe(0, 0), nil
	default:
		return nil, fmt.Errorf("unknown -estimate %q (want off, ewma, or probe)", name)
	}
}

func cmdServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	keyPath := fs.String("key", "", "peer key file (required)")
	listen := fs.String("listen", "127.0.0.1:7070", "listen address")
	storeDir := fs.String("store", "", "message store directory (required)")
	upload := fs.Float64("upload", 0, "upload capacity in bytes/s (0 = unshaped; with -estimate, a ceiling on the estimate)")
	maxStreams := fs.Int("max-streams", 0, "admission cap on concurrently served download streams; excess requests are shed BUSY with a retry-after hint (0 = unlimited)")
	policyName := fs.String("policy", "eq2", "allocation policy: eq2 (pairwise proportional), eq3 (declared upload; degrades to equal without declarations), bci (biased contribution index), classes (class-weighted), equal")
	classWeights := fs.String("class-weights", "", "service-class weights for -policy classes, e.g. 1:2,2:4 (unlisted classes weigh 1)")
	estName := fs.String("estimate", "off", "online upload-capacity estimation: off, ewma (percentile-of-history), probe (packet-train max)")
	ledgerBound := fs.Int("ledger-bound", 0, "track at most this many counterpart standings exactly, folding the rest into an aggregate tail (0 = exact pairwise ledger)")
	ownerHex := fs.String("owner", "", "owner public key (hex) allowed to send feedback")
	ledgerPath := fs.String("ledger", "", "receipt-ledger checkpoint file persisted across restarts (and crashes)")
	ckptEvery := fs.Duration("checkpoint", fairshare.DefaultCheckpointInterval, "ledger checkpoint interval")
	metricsAddr := fs.String("metrics", "", "serve Prometheus metrics and expvar on this address (e.g. 127.0.0.1:9090)")
	capacity := fs.Int64("capacity", 0, "advertised storage-contract capacity in bytes (0 = unlimited)")
	contractPath := fs.String("contracts", "", "contract-book journal file persisted across restarts (and crashes)")
	dhtBootstrap := fs.String("dht", "", "join the DHT through this bootstrap node (trackerless mode)")
	dhtListen := fs.String("dht-listen", "", "serve DHT RPCs on this address (default 127.0.0.1:0 when -dht or -gossip-listen is set)")
	gossipListen := fs.String("gossip-listen", "", "run a gossip engine over the peer's store on this address (requires the DHT node)")
	gossipEvery := fs.Duration("gossip-interval", 2*time.Second, "background gossip round interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *keyPath == "" || *storeDir == "" {
		return errors.New("serve: -key and -store are required")
	}
	id, err := loadIdentity(*keyPath)
	if err != nil {
		return err
	}
	st, err := store.OpenDisk(*storeDir)
	if err != nil {
		return err
	}
	if rec := st.Recovery(); rec.TruncatedTails > 0 || rec.QuarantinedFiles > 0 || rec.MigratedLegacy > 0 {
		fmt.Fprintf(out, "store recovery: %d torn tails truncated, %d files quarantined, %d legacy files migrated\n",
			rec.TruncatedTails, rec.QuarantinedFiles, rec.MigratedLegacy)
	}
	policy, err := parsePolicy(*policyName, *classWeights)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	est, err := parseEstimator(*estName)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if *ledgerBound < 0 {
		return errors.New("serve: -ledger-bound must be >= 0")
	}
	if *maxStreams < 0 {
		return errors.New("serve: -max-streams must be >= 0")
	}
	cfg := peer.Config{
		Identity:           id,
		Store:              st,
		UploadBytesPerSec:  *upload,
		MaxStreams:         *maxStreams,
		Allocator:          policy,
		Estimator:          est,
		LedgerBound:        *ledgerBound,
		LedgerPath:         *ledgerPath,
		CheckpointInterval: *ckptEvery,
		CapacityBytes:      *capacity,
		ContractPath:       *contractPath,
		Logger:             slog.New(slog.NewTextHandler(os.Stderr, nil)),
	}
	var msrv *metrics.Server
	if *metricsAddr != "" {
		reg := metrics.NewRegistry()
		cfg.Metrics = reg
		wire.Instrument(reg)
		reg.PublishExpvar("asymshare")
		srv, err := metrics.Serve(*metricsAddr, reg)
		if err != nil {
			return err
		}
		msrv = srv
		defer msrv.Close()
	}
	if *ownerHex != "" {
		owner, err := hex.DecodeString(*ownerHex)
		if err != nil || len(owner) != 32 {
			return fmt.Errorf("serve: invalid -owner key")
		}
		cfg.Owner = owner
	}
	node, err := peer.New(cfg)
	if err != nil {
		return err
	}
	if *ledgerPath != "" {
		rec := node.LedgerRecovery()
		switch {
		case rec.Loaded:
			fmt.Fprintf(out, "ledger recovered from %s (generation %d)\n", *ledgerPath, rec.Gen)
		case rec.CorruptSlots > 0:
			fmt.Fprintf(out, "ledger slots at %s unreadable (%d corrupt); starting fresh\n", *ledgerPath, rec.CorruptSlots)
		default:
			fmt.Fprintf(out, "no ledger at %s; starting fresh\n", *ledgerPath)
		}
	}
	if *contractPath != "" {
		rec := node.ContractRecovery()
		switch {
		case rec.Active > 0 || rec.Records > 0:
			fmt.Fprintf(out, "contract book recovered from %s (%d active obligations", *contractPath, rec.Active)
			if rec.Truncated {
				fmt.Fprint(out, ", torn tail truncated")
			}
			fmt.Fprintln(out, ")")
		default:
			fmt.Fprintf(out, "no contract book at %s; starting fresh\n", *contractPath)
		}
	}
	if err := node.Start(*listen); err != nil {
		return err
	}
	fmt.Fprintf(out, "peer %s serving on %s (store %s)\n", id.Fingerprint(), node.Addr(), *storeDir)
	ledgerKind := "exact pairwise ledger"
	if *ledgerBound > 0 {
		ledgerKind = fmt.Sprintf("bounded ledger (%d tracked)", *ledgerBound)
	}
	fmt.Fprintf(out, "allocation: policy %s, estimator %s, %s\n", *policyName, *estName, ledgerKind)
	if msrv != nil {
		fmt.Fprintf(out, "metrics on http://%s/metrics (expvar at /debug/vars)\n", msrv.Addr())
	}

	// Trackerless mode: a serving DHT node makes this peer discoverable
	// (and a routing/replica host for others), and a gossip engine over
	// the same store spreads rumored generations — announcing this
	// peer's serve address for each one it completes.
	if *gossipListen != "" && *dhtListen == "" && *dhtBootstrap == "" {
		return errors.New("serve: -gossip-listen requires a DHT node (-dht or -dht-listen)")
	}
	if *dhtListen != "" || *dhtBootstrap != "" {
		laddr := *dhtListen
		if laddr == "" {
			laddr = "127.0.0.1:0"
		}
		dln, err := net.Listen("tcp", laddr)
		if err != nil {
			return err
		}
		var gln net.Listener
		gossipAddr := ""
		if *gossipListen != "" {
			// Bind before dht.New so the address rides in contact records.
			if gln, err = net.Listen("tcp", *gossipListen); err != nil {
				dln.Close()
				return err
			}
			gossipAddr = gln.Addr().String()
		}
		dnode, err := dht.New(dht.Config{
			Advertise:  dln.Addr().String(),
			ServeAddr:  node.Addr().String(),
			GossipAddr: gossipAddr,
			Metrics:    cfg.Metrics,
		})
		if err != nil {
			dln.Close()
			return err
		}
		if err := dnode.StartListener(dln); err != nil {
			dln.Close()
			return err
		}
		defer dnode.Close()
		if *dhtBootstrap != "" {
			jctx, jcancel := context.WithTimeout(context.Background(), 30*time.Second)
			err := dnode.Join(jctx, *dhtBootstrap)
			jcancel()
			if err != nil {
				return fmt.Errorf("serve: dht join: %w", err)
			}
			fmt.Fprintf(out, "dht node %s joined via %s (%d contacts)\n", dnode.Addr(), *dhtBootstrap, dnode.TableSize())
		} else {
			fmt.Fprintf(out, "dht bootstrap node on %s\n", dnode.Addr())
		}
		if gln != nil {
			eng, err := gossip.New(gossip.Config{
				Advertise:     gossipAddr,
				Store:         st,
				RoundInterval: *gossipEvery,
				Metrics:       cfg.Metrics,
				Contacts: func(n int) []string {
					cs := dnode.RandomContacts(n)
					addrs := make([]string, 0, len(cs))
					for _, c := range cs {
						if c.Gossip != "" {
							addrs = append(addrs, c.Gossip)
						}
					}
					return addrs
				},
				Announce: func(fileID uint64) {
					go func() {
						actx, acancel := context.WithTimeout(context.Background(), 30*time.Second)
						defer acancel()
						_ = dnode.Announce(actx, dht.KeyFromFileID(fileID), node.Addr().String(), 0)
					}()
				},
			})
			if err != nil {
				gln.Close()
				return err
			}
			if err := eng.StartListener(gln); err != nil {
				gln.Close()
				return err
			}
			defer eng.Close()
			fmt.Fprintf(out, "gossip engine on %s (round every %s)\n", gossipAddr, *gossipEvery)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(out, "shutting down")
	// Close cancels the checkpointer's context, which writes the final
	// ledger checkpoint before Close returns — no save call needed here,
	// and a crash instead of an orderly shutdown costs at most one
	// checkpoint interval.
	if err := node.Close(); err != nil {
		return err
	}
	if *ledgerPath != "" {
		fmt.Fprintf(out, "ledger checkpointed to %s (generation %d)\n", *ledgerPath, node.CheckpointGen())
	}
	return nil
}

func cmdShare(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("share", flag.ContinueOnError)
	keyPath := fs.String("key", "", "user key file (required)")
	filePath := fs.String("file", "", "file to share (required)")
	peers := fs.String("peers", "", "comma-separated peer addresses (required)")
	outPath := fs.String("out", "", "handle output path (default <file>.handle)")
	trackerAddr := fs.String("tracker", "", "tracker to announce the share to")
	dhtAddr := fs.String("dht", "", "DHT bootstrap node to announce the share through")
	replicas := fs.Int("replicas", 0, "ring placement: store each chunk on N peers (0 = every peer)")
	gossipMode := fs.Bool("gossip", false, "disseminate by rumor gossip through the DHT swarm instead of direct pushes (requires -dht; -peers unused)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *keyPath == "" || *filePath == "" {
		return errors.New("share: -key and -file are required")
	}
	if *gossipMode && *dhtAddr == "" {
		return errors.New("share: -gossip requires -dht")
	}
	if !*gossipMode && *peers == "" {
		return errors.New("share: -peers is required (or use -gossip)")
	}
	id, err := loadIdentity(*keyPath)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*filePath)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(id, nil)
	if err != nil {
		return err
	}
	if *gossipMode {
		return shareGossip(sys, *filePath, data, *dhtAddr, *outPath, out)
	}
	addrs := strings.Split(*peers, ",")
	var res *core.ShareResult
	if *replicas > 0 {
		r, err := ring.New(addrs, 0)
		if err != nil {
			return err
		}
		res, err = sys.ShareFilePlaced(context.Background(), *filePath, data, r, *replicas)
		if err != nil {
			return err
		}
	} else {
		var err error
		res, err = sys.ShareFile(context.Background(), *filePath, data, addrs)
		if err != nil {
			return err
		}
	}
	handlePath := *outPath
	if handlePath == "" {
		handlePath = *filePath + ".handle"
	}
	// The handle is the only way back to the file; write it durably.
	if err := core.SaveHandleFile(handlePath, &res.Handle); err != nil {
		return err
	}
	fmt.Fprintf(out, "shared %d bytes as %d messages to %d peers\nhandle: %s\nsecret (keep private!): %s\n",
		len(data), res.MessagesSent, len(addrs), handlePath, hex.EncodeToString(res.Secret))
	if *trackerAddr != "" {
		if err := sys.AnnounceHandle(context.Background(), *trackerAddr, &res.Handle, 0); err != nil {
			return err
		}
		fmt.Fprintf(out, "announced %d chunks to tracker %s\n", len(res.Handle.Manifest.Chunks), *trackerAddr)
	}
	if *dhtAddr != "" {
		node, err := joinDHT(*dhtAddr)
		if err != nil {
			return err
		}
		defer node.Close()
		if err := sys.AnnounceHandleDHT(context.Background(), node, &res.Handle, 0); err != nil {
			return err
		}
		fmt.Fprintf(out, "announced %d chunks via DHT bootstrap %s\n", len(res.Handle.Manifest.Chunks), *dhtAddr)
	}
	return nil
}

// shareGossip seeds the encoded file into a transient local gossip
// engine and rumors it into the DHT swarm: each round pushes to random
// gossip-capable contacts from the routing table, receiving peers
// announce themselves as they complete generations, and the engine
// exits once every rumor has gone cold. The handle carries no peer
// list — fetchers resolve holders through the DHT (fetch -dht).
func shareGossip(sys *core.System, filePath string, data []byte, dhtAddr, outPath string, out io.Writer) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	node, err := joinDHT(dhtAddr)
	if err != nil {
		return err
	}
	defer node.Close()
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	eng, err := gossip.New(gossip.Config{
		Advertise: gln.Addr().String(),
		Store:     store.NewMemory(),
		Contacts: func(n int) []string {
			cs := node.RandomContacts(n)
			addrs := make([]string, 0, len(cs))
			for _, c := range cs {
				if c.Gossip != "" {
					addrs = append(addrs, c.Gossip)
				}
			}
			return addrs
		},
	})
	if err != nil {
		gln.Close()
		return err
	}
	if err := eng.StartListener(gln); err != nil {
		gln.Close()
		return err
	}
	defer eng.Close()

	res, err := sys.ShareFileGossip(ctx, filePath, data, eng, "")
	if err != nil {
		return err
	}
	rounds, moved := 0, 0
	for len(eng.HotRumors()) > 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("share: gossip dissemination timed out after %d rounds: %w", rounds, err)
		}
		n, err := eng.Round(ctx)
		if err != nil {
			return err
		}
		rounds++
		moved += n
	}
	if moved == 0 {
		return errors.New("share: no gossip-capable peers reachable through the DHT — are peers running serve -gossip-listen?")
	}
	handlePath := outPath
	if handlePath == "" {
		handlePath = filePath + ".handle"
	}
	if err := core.SaveHandleFile(handlePath, &res.Handle); err != nil {
		return err
	}
	fmt.Fprintf(out, "gossiped %d bytes as %d seed messages; %d messages moved in %d rounds\nhandle: %s\nsecret (keep private!): %s\nfetch with: asymshare fetch -dht %s ...\n",
		len(data), res.MessagesSent, moved, rounds, handlePath, hex.EncodeToString(res.Secret), dhtAddr)
	return nil
}

// joinDHT joins the DHT as a client-only node through a bootstrap.
func joinDHT(bootstrap string) (*dht.Node, error) {
	node, err := dht.NewNode("client/"+bootstrap, 0)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := node.Join(ctx, bootstrap); err != nil {
		node.Close()
		return nil, err
	}
	return node, nil
}

func cmdFetch(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fetch", flag.ContinueOnError)
	keyPath := fs.String("key", "", "user key file (required)")
	handlePath := fs.String("handle", "", "handle file from 'share' (required)")
	secretHex := fs.String("secret", "", "hex coding secret from 'share' (required)")
	outPath := fs.String("out", "", "output path (required)")
	feedback := fs.String("feedback", "", "own peer address to report receipts to")
	trackerAddr := fs.String("tracker", "", "resolve peers through this tracker instead of the handle's list")
	dhtAddr := fs.String("dht", "", "resolve peers through the DHT via this bootstrap node")
	hedge := fs.Bool("hedge", false, "resilient chunk scheduling: start each chunk on the healthiest peer, re-issue stalled streams on the next, quarantine repeat offenders behind circuit breakers")
	deadline := fs.Duration("deadline", 0, "abandon the fetch after this long; propagated to peers so they drop work that can no longer arrive in time (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *keyPath == "" || *handlePath == "" || *secretHex == "" || *outPath == "" {
		return errors.New("fetch: -key, -handle, -secret and -out are required")
	}
	id, err := loadIdentity(*keyPath)
	if err != nil {
		return err
	}
	secret, err := hex.DecodeString(strings.TrimSpace(*secretHex))
	if err != nil {
		return fmt.Errorf("fetch: bad secret: %w", err)
	}
	handle, err := core.LoadHandleFile(*handlePath)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(id, nil, core.WithClientOptions(client.Options{Hedge: *hedge}))
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	var (
		data  []byte
		stats client.FetchStats
	)
	switch {
	case *dhtAddr != "":
		var node *dht.Node
		node, err = joinDHT(*dhtAddr)
		if err != nil {
			return err
		}
		defer node.Close()
		data, stats, err = sys.FetchFileViaDHT(ctx, node, &handle.Manifest, secret)
	case *trackerAddr != "":
		data, stats, err = sys.FetchFileViaTracker(ctx, *trackerAddr, &handle.Manifest, secret)
	default:
		data, stats, err = sys.FetchFile(ctx, handle, secret)
	}
	if err != nil {
		return err
	}
	// Atomic so an interrupted fetch never leaves a truncated output
	// file that looks complete.
	if err := fsx.WriteFileAtomic(fsx.OS, *outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "fetched %d bytes in %v (%.0f B/s) from %d peers; %d msgs (%d innovative, %d rejected)\n",
		len(data), stats.Elapsed.Round(1e6), stats.EffectiveRate(len(data)),
		len(stats.BytesFrom), stats.Messages, stats.Innovative, stats.Rejected)
	if *feedback != "" {
		if err := sys.ReportFeedback(ctx, *feedback, stats); err != nil {
			return fmt.Errorf("fetch: feedback: %w", err)
		}
		fmt.Fprintln(out, "reported receipts to own peer")
	}
	return nil
}

func cmdUpdate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("update", flag.ContinueOnError)
	keyPath := fs.String("key", "", "user key file (required)")
	handlePath := fs.String("handle", "", "handle file from 'share' (required)")
	secretHex := fs.String("secret", "", "hex coding secret (required)")
	oldPath := fs.String("old", "", "previous file version (required)")
	newPath := fs.String("new", "", "new file version (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *keyPath == "" || *handlePath == "" || *secretHex == "" || *oldPath == "" || *newPath == "" {
		return errors.New("update: -key, -handle, -secret, -old and -new are required")
	}
	id, err := loadIdentity(*keyPath)
	if err != nil {
		return err
	}
	secret, err := hex.DecodeString(strings.TrimSpace(*secretHex))
	if err != nil {
		return fmt.Errorf("update: bad secret: %w", err)
	}
	handle, err := core.LoadHandleFile(*handlePath)
	if err != nil {
		return err
	}
	oldData, err := os.ReadFile(*oldPath)
	if err != nil {
		return err
	}
	newData, err := os.ReadFile(*newPath)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(id, nil)
	if err != nil {
		return err
	}
	res, err := sys.UpdateFile(context.Background(), handle, secret, oldData, newData)
	if err != nil {
		return err
	}
	// The manifest digests changed: rewrite the handle. Atomic, so a
	// crash here cannot leave a torn handle pointing at nothing.
	if err := core.SaveHandleFile(*handlePath, handle); err != nil {
		return err
	}
	fmt.Fprintf(out, "patched %d chunks (%d delta messages, %d bytes) and refreshed %s\n",
		len(res.ChangedChunks), res.MessagesPatched, res.BytesSent, *handlePath)
	return nil
}

func cmdList(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	keyPath := fs.String("key", "", "user key file (required)")
	peerAddr := fs.String("peer", "", "peer address (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *keyPath == "" || *peerAddr == "" {
		return errors.New("list: -key and -peer are required")
	}
	id, err := loadIdentity(*keyPath)
	if err != nil {
		return err
	}
	c, err := client.New(id, nil)
	if err != nil {
		return err
	}
	files, err := c.ListFiles(context.Background(), *peerAddr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d stored generations on %s\n", len(files), *peerAddr)
	for _, f := range files {
		fmt.Fprintf(out, "  file %016x: %d messages\n", f.FileID, f.Messages)
	}
	return nil
}

// loadHandle reads a handle file.
func loadHandle(path string) (*core.Handle, error) {
	return core.LoadHandleFile(path)
}

func cmdAudit(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	keyPath := fs.String("key", "", "user key file (required)")
	handlePath := fs.String("handle", "", "handle file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *keyPath == "" || *handlePath == "" {
		return errors.New("audit: -key and -handle are required")
	}
	id, err := loadIdentity(*keyPath)
	if err != nil {
		return err
	}
	handle, err := loadHandle(*handlePath)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(id, nil)
	if err != nil {
		return err
	}
	report, err := sys.Audit(context.Background(), handle)
	if err != nil {
		return err
	}
	for _, addr := range handle.Peers {
		status := "OK"
		if n := report.MissingByPeer[addr]; n > 0 {
			status = fmt.Sprintf("%d incomplete batches", n)
		}
		fmt.Fprintf(out, "%s: %s\n", addr, status)
	}
	if report.Healthy() {
		fmt.Fprintln(out, "replication healthy")
	} else {
		fmt.Fprintln(out, "replication DEGRADED - run 'asymshare repair'")
	}
	return nil
}

// cmdContracts lists the caller's storage contracts on one peer: the
// book's aggregate capacity/used counters plus each obligation with
// its remaining term. Peers only reveal the requesting owner's own
// contracts, so the listing is exactly what this key placed there.
func cmdContracts(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("contracts", flag.ContinueOnError)
	keyPath := fs.String("key", "", "user key file (required)")
	peerAddr := fs.String("peer", "", "peer address (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *keyPath == "" || *peerAddr == "" {
		return errors.New("contracts: -key and -peer are required")
	}
	id, err := loadIdentity(*keyPath)
	if err != nil {
		return err
	}
	c, err := client.New(id, nil)
	if err != nil {
		return err
	}
	info, err := c.ListContracts(context.Background(), *peerAddr)
	if err != nil {
		return err
	}
	capStr := "unlimited"
	if info.CapacityBytes > 0 {
		capStr = fmt.Sprintf("%d bytes", info.CapacityBytes)
	}
	fmt.Fprintf(out, "peer %s: %d bytes obligated, capacity %s\n", *peerAddr, info.UsedBytes, capStr)
	fmt.Fprintf(out, "%d contracts held by this key\n", len(info.Contracts))
	now := time.Now()
	for _, e := range info.Contracts {
		left := time.Unix(e.ExpiresUnix, 0).Sub(now).Round(time.Second)
		fmt.Fprintf(out, "  contract %016x: file %016x, %d messages, %d bytes, expires in %s\n",
			e.ContractID, e.FileID, e.Messages, e.Bytes, left)
	}
	return nil
}

func cmdRepair(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("repair", flag.ContinueOnError)
	keyPath := fs.String("key", "", "user key file (required)")
	handlePath := fs.String("handle", "", "handle file (required)")
	secretHex := fs.String("secret", "", "hex coding secret (required)")
	filePath := fs.String("file", "", "original file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *keyPath == "" || *handlePath == "" || *secretHex == "" || *filePath == "" {
		return errors.New("repair: -key, -handle, -secret and -file are required")
	}
	id, err := loadIdentity(*keyPath)
	if err != nil {
		return err
	}
	secret, err := hex.DecodeString(strings.TrimSpace(*secretHex))
	if err != nil {
		return fmt.Errorf("repair: bad secret: %w", err)
	}
	handle, err := loadHandle(*handlePath)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*filePath)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(id, nil)
	if err != nil {
		return err
	}
	n, err := sys.Repair(context.Background(), handle, secret, data)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "re-uploaded %d messages\n", n)
	return nil
}
