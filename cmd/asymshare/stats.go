package main

// `asymshare stats` scrapes a node's metrics endpoint (started with
// `serve -metrics`) and renders the exposition as a grouped,
// human-readable table. The parser handles exactly what
// internal/metrics emits: HELP/TYPE comment lines and
// `name{labels} value` samples in Prometheus text format 0.0.4.

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// statsSample is one parsed sample line.
type statsSample struct {
	name   string // full sample name, e.g. peer_served_bytes_total
	labels string // raw {...} content, "" when unlabelled
	value  float64
}

// statsFamily groups samples under one HELP/TYPE header.
type statsFamily struct {
	name    string
	help    string
	typ     string
	samples []statsSample
}

func cmdStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "metrics address of a running node")
	filter := fs.String("filter", "", "only show families whose name contains this substring")
	raw := fs.Bool("raw", false, "dump the exposition verbatim instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	url := "http://" + *addr + "/metrics"
	clientHTTP := &http.Client{Timeout: 10 * time.Second}
	resp, err := clientHTTP.Get(url)
	if err != nil {
		return fmt.Errorf("stats: scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stats: scrape %s: %s", url, resp.Status)
	}
	if *raw {
		_, err := io.Copy(out, resp.Body)
		return err
	}
	families, err := parseExposition(resp.Body)
	if err != nil {
		return err
	}
	printStats(out, families, *filter)
	return nil
}

// parseExposition reads Prometheus text format into ordered families.
// Samples whose base name (sans _bucket/_sum/_count suffix) matches a
// declared family attach to it; stray samples get an anonymous family.
func parseExposition(r io.Reader) ([]*statsFamily, error) {
	var (
		order []*statsFamily
		byFam = make(map[string]*statsFamily)
	)
	family := func(name string) *statsFamily {
		if f, ok := byFam[name]; ok {
			return f
		}
		f := &statsFamily{name: name}
		byFam[name] = f
		order = append(order, f)
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 {
				continue
			}
			f := family(parts[2])
			if parts[1] == "HELP" && len(parts) == 4 {
				f.help = parts[3]
			} else if parts[1] == "TYPE" && len(parts) == 4 {
				f.typ = parts[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sample, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("stats: %w", err)
		}
		base := sample.name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(sample.name, suffix); trimmed != sample.name {
				if _, ok := byFam[trimmed]; ok {
					base = trimmed
					break
				}
			}
		}
		f := family(base)
		f.samples = append(f.samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return order, nil
}

// parseSampleLine splits `name{labels} value` (labels optional). Label
// values may contain escaped quotes and spaces, so the split scans for
// the closing brace rather than whitespace.
func parseSampleLine(line string) (statsSample, error) {
	var s statsSample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.name = rest[:i]
		rest = rest[i+1:]
		end := -1
		inQuote := false
		for j := 0; j < len(rest); j++ {
			switch rest[j] {
			case '\\':
				if inQuote {
					j++ // skip escaped char
				}
			case '"':
				inQuote = !inQuote
			case '}':
				if !inQuote {
					end = j
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, errors.New("unterminated label set: " + line)
		}
		s.labels = rest[:end]
		rest = rest[end+1:]
	} else if i := strings.IndexByte(rest, ' '); i >= 0 {
		s.name = rest[:i]
		rest = rest[i:]
	} else {
		return s, errors.New("malformed sample: " + line)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("malformed value in %q: %w", line, err)
	}
	s.value = v
	return s, nil
}

// statsSections titles the known subsystem prefixes, in the order
// DESIGN.md §7 documents them. Families with an unlisted prefix fall
// under their raw prefix so nothing is hidden.
var statsSections = map[string]string{
	"wire":      "wire protocol",
	"peer":      "peer node",
	"client":    "client fetch path",
	"fairshare": "fairness ledger & allocator",
	"audit":     "retention audits",
	"store":     "message store",
	"ratelimit": "upload shaping",
	"tracker":   "tracker discovery",
	"dht":       "DHT discovery",
	"gossip":    "rumor gossip",
	"contract":  "storage contracts (peer book)",
	"repair":    "proactive repair (owner daemon)",
}

// statsSubSections splits large subsystems on a two-segment prefix —
// longest prefix wins, so fairshare_estimate_* gets its own heading
// while the remaining fairshare_* families stay together.
var statsSubSections = map[string]string{
	"fairshare_estimate": "capacity estimation",
	"fairshare_policy":   "allocation policy",
	"fairshare_ledger":   "bounded ledger",
}

// statsSection maps a family name to its section heading.
func statsSection(name string) string {
	prefix := name
	if i := strings.IndexByte(name, '_'); i > 0 {
		prefix = name[:i]
		if j := strings.IndexByte(name[i+1:], '_'); j > 0 {
			if title, ok := statsSubSections[name[:i+1+j]]; ok {
				return title
			}
		}
	}
	if title, ok := statsSections[prefix]; ok {
		return title
	}
	return prefix
}

// printStats renders families grouped by subsystem prefix.
func printStats(out io.Writer, families []*statsFamily, filter string) {
	shown := 0
	section := ""
	for _, f := range families {
		if filter != "" && !strings.Contains(f.name, filter) {
			continue
		}
		if s := statsSection(f.name); s != section {
			if shown > 0 {
				fmt.Fprintln(out)
			}
			fmt.Fprintf(out, "== %s ==\n", s)
			section = s
		}
		shown++
		typ := f.typ
		if typ == "" {
			typ = "untyped"
		}
		fmt.Fprintf(out, "%s (%s)", f.name, typ)
		if f.help != "" {
			fmt.Fprintf(out, " — %s", f.help)
		}
		fmt.Fprintln(out)
		if f.typ == "histogram" {
			printHistogram(out, f)
			continue
		}
		for _, s := range f.samples {
			label := s.labels
			if label == "" {
				label = "-"
			}
			fmt.Fprintf(out, "  %-40s %s\n", label, formatValue(s.value))
		}
	}
	if shown == 0 {
		fmt.Fprintln(out, "no matching metric families")
	}
}

// printHistogram condenses one histogram family to count / sum / mean
// per label set, skipping the bucket lines.
func printHistogram(out io.Writer, f *statsFamily) {
	type agg struct{ count, sum float64 }
	aggs := make(map[string]*agg)
	var order []string
	stripLe := func(labels string) string {
		var kept []string
		for _, part := range strings.Split(labels, ",") {
			if part == "" || strings.HasPrefix(part, "le=") {
				continue
			}
			kept = append(kept, part)
		}
		return strings.Join(kept, ",")
	}
	for _, s := range f.samples {
		key := stripLe(s.labels)
		a, ok := aggs[key]
		if !ok {
			a = &agg{}
			aggs[key] = a
			order = append(order, key)
		}
		switch {
		case strings.HasSuffix(s.name, "_count"):
			a.count = s.value
		case strings.HasSuffix(s.name, "_sum"):
			a.sum = s.value
		}
	}
	sort.Strings(order)
	for _, key := range order {
		a := aggs[key]
		label := key
		if label == "" {
			label = "-"
		}
		mean := 0.0
		if a.count > 0 {
			mean = a.sum / a.count
		}
		fmt.Fprintf(out, "  %-40s count=%s sum=%s mean=%s\n",
			label, formatValue(a.count), formatValue(a.sum), formatValue(mean))
	}
}

// formatValue trims floats to a compact form.
func formatValue(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}
