package main

import (
	"strings"
	"testing"

	"asymshare/internal/metrics"
)

func TestStatsScrapeAndRender(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("peer_served_bytes_total", "Message bytes served to downloaders.").Add(4096)
	reg.Gauge("peer_granted_rate_bytes_per_second", "Granted rate.",
		metrics.L("requester", "ab\"cd")).Set(1234.5)
	h := reg.Histogram("store_op_duration_seconds", "Store operation latency.", metrics.UnitSeconds,
		metrics.L("backend", "memory"), metrics.L("op", "put"))
	h.Observe(1500) // 1.5 us
	h.Observe(3000)

	srv, err := metrics.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var out strings.Builder
	if err := run([]string{"stats", "-addr", srv.Addr().String()}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"peer_served_bytes_total (counter)",
		"Message bytes served to downloaders.",
		"4096",
		"peer_granted_rate_bytes_per_second (gauge)",
		`requester="ab\"cd"`, // escaped label survives the round trip
		"1234.5",
		"store_op_duration_seconds (histogram)",
		"count=2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("stats output missing %q\n---\n%s", want, text)
		}
	}

	// Filtering hides non-matching families.
	out.Reset()
	if err := run([]string{"stats", "-addr", srv.Addr().String(), "-filter", "store_"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "peer_served_bytes_total") {
		t.Error("filter did not exclude peer families")
	}
	if !strings.Contains(out.String(), "store_op_duration_seconds") {
		t.Error("filter excluded the store family")
	}

	// Raw mode passes the exposition through untouched.
	out.Reset()
	if err := run([]string{"stats", "-addr", srv.Addr().String(), "-raw"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# TYPE peer_served_bytes_total counter") {
		t.Errorf("raw output missing TYPE line:\n%s", out.String())
	}
}

func TestParseSampleLine(t *testing.T) {
	cases := []struct {
		line       string
		name       string
		labels     string
		value      float64
		shouldFail bool
	}{
		{line: "foo_total 42", name: "foo_total", value: 42},
		{line: `foo_total{a="b"} 1.5`, name: "foo_total", labels: `a="b"`, value: 1.5},
		{line: `foo{a="x y",b="q\"}"} 2`, name: "foo", labels: `a="x y",b="q\"}"`, value: 2},
		{line: "garbage", shouldFail: true},
		{line: `foo{a="b" 3`, shouldFail: true},
	}
	for _, c := range cases {
		s, err := parseSampleLine(c.line)
		if c.shouldFail {
			if err == nil {
				t.Errorf("parseSampleLine(%q) succeeded, want error", c.line)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseSampleLine(%q): %v", c.line, err)
			continue
		}
		if s.name != c.name || s.labels != c.labels || s.value != c.value {
			t.Errorf("parseSampleLine(%q) = %+v, want name=%q labels=%q value=%g",
				c.line, s, c.name, c.labels, c.value)
		}
	}
}

func TestStatsSection(t *testing.T) {
	cases := []struct{ name, want string }{
		{"peer_served_bytes_total", "peer node"},
		{"fairshare_credit_events_total", "fairness ledger & allocator"},
		{"fairshare_estimate_bytes_per_second", "capacity estimation"},
		{"fairshare_policy_eq2_allocs_total", "allocation policy"},
		{"fairshare_ledger_entries", "bounded ledger"},
		{"mystery_thing_total", "mystery"},
		{"bare", "bare"},
	}
	for _, c := range cases {
		if got := statsSection(c.name); got != c.want {
			t.Errorf("statsSection(%q) = %q, want %q", c.name, got, c.want)
		}
	}
}
