package main

// Keyed spot-check commands: `spotcheck` audits a real share handle's
// peers cryptographically, and `auditdemo` boots an in-process network
// (honest peers plus one silent dropper) to show the audit counters
// and the resulting allocation split without any external setup.

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"

	"asymshare/internal/auth"
	"asymshare/internal/core"
	"asymshare/internal/fairshare"
	"asymshare/internal/peer"
	"asymshare/internal/store"
)

func cmdSpotCheck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("spotcheck", flag.ContinueOnError)
	keyPath := fs.String("key", "", "user key file (required)")
	handlePath := fs.String("handle", "", "handle file (required)")
	secretHex := fs.String("secret", "", "hex coding secret (required)")
	sample := fs.Int("sample", 0, "messages probed per peer and chunk (0 = default)")
	penalty := fs.Float64("penalty", 0, "ledger debit per failed message (0 = message size in bytes)")
	feedback := fs.String("feedback", "", "own peer address to report audit debits to")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *keyPath == "" || *handlePath == "" || *secretHex == "" {
		return errors.New("spotcheck: -key, -handle and -secret are required")
	}
	id, err := loadIdentity(*keyPath)
	if err != nil {
		return err
	}
	secret, err := hex.DecodeString(strings.TrimSpace(*secretHex))
	if err != nil {
		return fmt.Errorf("spotcheck: bad secret: %w", err)
	}
	handle, err := loadHandle(*handlePath)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(id, nil)
	if err != nil {
		return err
	}
	ctx := context.Background()
	report, err := sys.SpotCheck(ctx, handle, secret, core.SpotCheckOptions{
		Sample:            *sample,
		PenaltyPerMessage: *penalty,
	})
	if err != nil {
		return err
	}
	printSpotCheck(out, report)
	if *feedback != "" && len(report.Debits) > 0 {
		if err := sys.ReportSpotCheck(ctx, *feedback, report); err != nil {
			return fmt.Errorf("spotcheck: feedback: %w", err)
		}
		fmt.Fprintln(out, "reported audit debits to own peer")
	}
	if report.AllPassed() {
		fmt.Fprintln(out, "all retention audits passed")
	} else {
		fmt.Fprintln(out, "retention DEGRADED - run 'asymshare repair' (or re-share) for the failed chunks")
	}
	return nil
}

func printSpotCheck(out io.Writer, report *core.SpotCheckReport) {
	for _, v := range report.Verdicts {
		fmt.Fprintf(out, "%s file %016x: %s (%d/%d proven", v.Addr, v.FileID,
			strings.ToUpper(v.Outcome.String()), v.Tally.Proven, v.Tally.Sampled)
		if v.Tally.Forged > 0 {
			fmt.Fprintf(out, ", %d forged", v.Tally.Forged)
		}
		fmt.Fprintf(out, ", %d attempt", v.Attempts)
		if v.Attempts != 1 {
			fmt.Fprint(out, "s")
		}
		if v.Penalty > 0 {
			fmt.Fprintf(out, ", penalty %.0f", v.Penalty)
		}
		fmt.Fprintln(out, ")")
	}
	s := report.Stats
	fmt.Fprintf(out, "audits: %d passed, %d failed, %d timed out; %d/%d messages proven (%d bytes)\n",
		s.Passed, s.Failed, s.Timeouts, s.MessagesProven, s.MessagesProbed, s.BytesProven)
	if len(report.Debits) > 0 {
		fps := make([]string, 0, len(report.Debits))
		for fp := range report.Debits {
			fps = append(fps, fp)
		}
		sort.Strings(fps)
		for _, fp := range fps {
			fmt.Fprintf(out, "debit %s: %d\n", fp, report.Debits[fp])
		}
	}
}

func cmdAuditDemo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("auditdemo", flag.ContinueOnError)
	honest := fs.Int("honest", 2, "number of honest storage peers")
	size := fs.Int("size", 4096, "shared file size in bytes")
	sample := fs.Int("sample", 8, "messages probed per peer and chunk")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *honest < 1 {
		return errors.New("auditdemo: need at least one honest peer")
	}
	ctx := context.Background()

	owner, err := auth.NewIdentity()
	if err != nil {
		return err
	}
	// The owner's own peer holds the ledger that audit debits target.
	home, err := peer.New(peer.Config{
		Identity: mustIdentity(),
		Store:    store.NewMemory(),
		Owner:    owner.Public(),
		Ledger:   fairshare.NewLedger(0),
	})
	if err != nil {
		return err
	}
	if err := home.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer home.Close()

	n := *honest + 1
	stores := make([]*store.Memory, n)
	fps := make([]string, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		stores[i] = store.NewMemory()
		id := mustIdentity()
		fps[i] = id.Fingerprint()
		node, err := peer.New(peer.Config{Identity: id, Store: stores[i]})
		if err != nil {
			return err
		}
		if err := node.Start("127.0.0.1:0"); err != nil {
			return err
		}
		defer node.Close()
		addrs[i] = node.Addr().String()
	}
	dropperIdx := n - 1

	sys, err := core.NewSystem(owner, nil)
	if err != nil {
		return err
	}
	data := make([]byte, *size)
	for i := range data {
		data[i] = byte(i)
	}
	res, err := sys.ShareFile(ctx, "demo.dat", data, addrs)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "shared %d bytes as %d messages to %d peers (last one will defect)\n",
		len(data), res.MessagesSent, n)

	// Everyone earned the same credit so far.
	credits := make(map[string]uint64, n)
	for _, fp := range fps {
		credits[fp] = 100000
	}
	if err := sys.Client().SendFeedback(ctx, home.Addr().String(), credits); err != nil {
		return err
	}

	// The last peer silently drops everything it stored.
	for _, fileID := range stores[dropperIdx].Files() {
		if err := stores[dropperIdx].Drop(fileID); err != nil {
			return err
		}
	}

	report, err := sys.SpotCheck(ctx, &res.Handle, res.Secret, core.SpotCheckOptions{Sample: *sample})
	if err != nil {
		return err
	}
	printSpotCheck(out, report)
	if err := sys.ReportSpotCheck(ctx, home.Addr().String(), report); err != nil {
		return err
	}

	// Show what the debits do to the pairwise-proportional split.
	requesters := make([]fairshare.ID, n)
	for i, fp := range fps {
		requesters[i] = fp
	}
	shares := fairshare.PairwiseProportional{}.Allocate(fairshare.NewRequest(100, requesters, home.Ledger()))
	fmt.Fprintln(out, "allocation of the owner's peer upload after audits:")
	for i, fp := range fps {
		role := "honest"
		if i == dropperIdx {
			role = "DROPPER"
		}
		fmt.Fprintf(out, "  %s (%s): %.1f%%\n", fp, role, shares[i].Rate)
	}
	return nil
}

// mustIdentity generates a throwaway random identity for demo nodes.
func mustIdentity() *auth.Identity {
	id, err := auth.NewIdentity()
	if err != nil {
		panic(err)
	}
	return id
}
