package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"asymshare/internal/auth"
	"asymshare/internal/peer"
	"asymshare/internal/store"
)

// TestSpotCheckEndToEnd shares through the CLI, drops one peer's
// store, and verifies `spotcheck` reports the failure and the debit.
func TestSpotCheckEndToEnd(t *testing.T) {
	dir := t.TempDir()
	keyPath := filepath.Join(dir, "user.key")
	var discard bytes.Buffer
	if err := run([]string{"keygen", "-out", keyPath}, &discard); err != nil {
		t.Fatal(err)
	}

	stores := make([]*store.Memory, 2)
	var addrs []string
	for i := range stores {
		stores[i] = store.NewMemory()
		id, err := auth.NewIdentity()
		if err != nil {
			t.Fatal(err)
		}
		node, err := peer.New(peer.Config{Identity: id, Store: stores[i]})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		addrs = append(addrs, node.Addr().String())
	}

	filePath := filepath.Join(dir, "notes.bin")
	data := make([]byte, 8<<10)
	rand.New(rand.NewSource(7)).Read(data)
	if err := os.WriteFile(filePath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	handlePath := filepath.Join(dir, "notes.handle")
	var shareOut bytes.Buffer
	err := run([]string{
		"share", "-key", keyPath, "-file", filePath,
		"-peers", strings.Join(addrs, ","), "-out", handlePath,
	}, &shareOut)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`secret \(keep private!\): ([0-9a-f]+)`).FindStringSubmatch(shareOut.String())
	if m == nil {
		t.Fatalf("no secret in share output: %q", shareOut.String())
	}
	secret := m[1]

	// A fresh share passes.
	var okOut bytes.Buffer
	err = run([]string{
		"spotcheck", "-key", keyPath, "-handle", handlePath, "-secret", secret, "-sample", "4",
	}, &okOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(okOut.String(), "all retention audits passed") {
		t.Errorf("spotcheck output: %q", okOut.String())
	}

	// Peer 1 drops everything; the spot-check must say so.
	for _, fileID := range stores[1].Files() {
		if err := stores[1].Drop(fileID); err != nil {
			t.Fatal(err)
		}
	}
	var badOut bytes.Buffer
	err = run([]string{
		"spotcheck", "-key", keyPath, "-handle", handlePath, "-secret", secret, "-sample", "4",
	}, &badOut)
	if err != nil {
		t.Fatal(err)
	}
	got := badOut.String()
	if !strings.Contains(got, "retention DEGRADED") {
		t.Errorf("degraded share not reported: %q", got)
	}
	if !strings.Contains(got, "FAIL") || !strings.Contains(got, "debit ") {
		t.Errorf("failure/debit details missing: %q", got)
	}
}

func TestSpotCheckMissingFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"spotcheck", "-key", "k"}, &out); err == nil {
		t.Error("spotcheck without -handle/-secret accepted")
	}
}

// TestAuditDemo runs the self-contained demo network and checks the
// dropper is caught, debited, and allocated less than honest peers.
func TestAuditDemo(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"auditdemo", "-honest", "2", "-size", "2048", "-sample", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"last one will defect", "FAIL", "debit ", "DROPPER"} {
		if !strings.Contains(got, want) {
			t.Errorf("auditdemo output missing %q:\n%s", want, got)
		}
	}
	// The dropper's share must be strictly below the honest shares.
	shares := regexp.MustCompile(`\((honest|DROPPER)\): ([0-9.]+)%`).FindAllStringSubmatch(got, -1)
	if len(shares) != 3 {
		t.Fatalf("expected 3 allocation lines, got %d in:\n%s", len(shares), got)
	}
	var honest, dropper []string
	for _, s := range shares {
		if s[1] == "DROPPER" {
			dropper = append(dropper, s[2])
		} else {
			honest = append(honest, s[2])
		}
	}
	if len(dropper) != 1 || len(honest) != 2 {
		t.Fatalf("roles = %v", shares)
	}
	var d, h float64
	if _, err := fmt.Sscan(dropper[0], &d); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscan(honest[0], &h); err != nil {
		t.Fatal(err)
	}
	if d >= h {
		t.Errorf("dropper share %.1f%% not below honest %.1f%%", d, h)
	}
}

func TestAuditDemoRejectsZeroHonest(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"auditdemo", "-honest", "0"}, &out); err == nil {
		t.Error("auditdemo with no honest peers accepted")
	}
}
