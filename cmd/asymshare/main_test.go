package main

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/fairshare"
	"asymshare/internal/peer"
	"asymshare/internal/store"
)

func TestRunUsage(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Error("unknown command accepted")
	}
}

func TestKeygenAndLoadIdentity(t *testing.T) {
	dir := t.TempDir()
	keyPath := filepath.Join(dir, "user.key")
	var out bytes.Buffer
	if err := run([]string{"keygen", "-out", keyPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fingerprint:") {
		t.Errorf("keygen output: %q", out.String())
	}
	id, err := loadIdentity(keyPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), id.Fingerprint()) {
		t.Error("printed fingerprint does not match loaded identity")
	}
	// The key file must be private.
	info, err := os.Stat(keyPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Errorf("key file mode = %v, want 0600", info.Mode().Perm())
	}
}

func TestKeygenMissingOut(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"keygen"}, &out); err == nil {
		t.Error("missing -out accepted")
	}
}

func TestLoadIdentityErrors(t *testing.T) {
	if _, err := loadIdentity("/nonexistent/key"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.key")
	if err := os.WriteFile(bad, []byte("not hex!"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := loadIdentity(bad); err == nil {
		t.Error("non-hex key accepted")
	}
}

// TestShareFetchEndToEnd drives the share and fetch subcommands against
// live peers started in-process.
func TestShareFetchEndToEnd(t *testing.T) {
	dir := t.TempDir()

	// User key.
	keyPath := filepath.Join(dir, "user.key")
	var discard bytes.Buffer
	if err := run([]string{"keygen", "-out", keyPath}, &discard); err != nil {
		t.Fatal(err)
	}

	// Two peers.
	var addrs []string
	for i := 0; i < 2; i++ {
		id, err := auth.NewIdentity()
		if err != nil {
			t.Fatal(err)
		}
		node, err := peer.New(peer.Config{Identity: id, Store: store.NewMemory()})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		addrs = append(addrs, node.Addr().String())
	}

	// A file to share. Keep it small; the default plan (1MB chunks,
	// GF(2^32)) still applies, giving a single generation.
	filePath := filepath.Join(dir, "notes.bin")
	data := make([]byte, 40<<10)
	rand.New(rand.NewSource(time.Now().UnixNano())).Read(data)
	if err := os.WriteFile(filePath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	handlePath := filepath.Join(dir, "notes.handle")
	var shareOut bytes.Buffer
	err := run([]string{
		"share", "-key", keyPath, "-file", filePath,
		"-peers", strings.Join(addrs, ","), "-out", handlePath,
	}, &shareOut)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`secret \(keep private!\): ([0-9a-f]+)`).FindStringSubmatch(shareOut.String())
	if m == nil {
		t.Fatalf("no secret in share output: %q", shareOut.String())
	}
	secret := m[1]
	if _, err := hex.DecodeString(secret); err != nil {
		t.Fatalf("secret not hex: %v", err)
	}

	outPath := filepath.Join(dir, "notes.out")
	var fetchOut bytes.Buffer
	err = run([]string{
		"fetch", "-key", keyPath, "-handle", handlePath,
		"-secret", secret, "-out", outPath,
	}, &fetchOut)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetched file differs from original")
	}
	if !strings.Contains(fetchOut.String(), "fetched 40960 bytes") {
		t.Errorf("fetch output: %q", fetchOut.String())
	}
}

func TestShareMissingFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"share", "-key", "k"}, &out); err == nil {
		t.Error("share without -file/-peers accepted")
	}
	if err := run([]string{"fetch", "-key", "k"}, &out); err == nil {
		t.Error("fetch without required flags accepted")
	}
	if err := run([]string{"serve"}, &out); err == nil {
		t.Error("serve without flags accepted")
	}
}

func TestFetchBadSecretOrHandle(t *testing.T) {
	dir := t.TempDir()
	keyPath := filepath.Join(dir, "u.key")
	var discard bytes.Buffer
	if err := run([]string{"keygen", "-out", keyPath}, &discard); err != nil {
		t.Fatal(err)
	}
	handlePath := filepath.Join(dir, "h.json")
	if err := os.WriteFile(handlePath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"fetch", "-key", keyPath, "-handle", handlePath,
		"-secret", "abcd", "-out", filepath.Join(dir, "o"),
	}, &discard)
	if err == nil {
		t.Error("corrupt handle accepted")
	}
	err = run([]string{
		"fetch", "-key", keyPath, "-handle", handlePath,
		"-secret", "zz-not-hex", "-out", filepath.Join(dir, "o"),
	}, &discard)
	if err == nil {
		t.Error("non-hex secret accepted")
	}
}

func TestParsePolicyAndEstimator(t *testing.T) {
	for name, want := range map[string]fairshare.Allocator{
		"eq2":     fairshare.PairwiseProportional{},
		"eq3":     fairshare.GlobalProportional{},
		"equal":   fairshare.EqualSplit{},
		"bci":     fairshare.BiasedContribution{},
		"classes": fairshare.Classes{},
	} {
		got, err := parsePolicy(name, "")
		if err != nil {
			t.Errorf("parsePolicy(%q) error: %v", name, err)
			continue
		}
		if fairshare.PolicyName(got) != fairshare.PolicyName(want) {
			t.Errorf("parsePolicy(%q) = %T, want %T", name, got, want)
		}
	}
	if _, err := parsePolicy("nope", ""); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := parsePolicy("eq2", "1:2"); err == nil {
		t.Error("-class-weights accepted without -policy classes")
	}

	p, err := parsePolicy("classes", "1:2, 3:0.5")
	if err != nil {
		t.Fatalf("class weights: %v", err)
	}
	cl := p.(fairshare.Classes)
	if cl.Weights[1] != 2 || cl.Weights[3] != 0.5 {
		t.Errorf("weights = %v", cl.Weights)
	}
	for _, bad := range []string{"1", "x:2", "1:y", "999:2"} {
		if _, err := parsePolicy("classes", bad); err == nil {
			t.Errorf("malformed -class-weights %q accepted", bad)
		}
	}

	if est, err := parseEstimator("off"); err != nil || est != nil {
		t.Errorf("off = (%v, %v), want nil estimator", est, err)
	}
	if est, err := parseEstimator("ewma"); err != nil || est == nil {
		t.Errorf("ewma = (%v, %v)", est, err)
	}
	if est, err := parseEstimator("probe"); err != nil || est == nil {
		t.Errorf("probe = (%v, %v)", est, err)
	}
	if _, err := parseEstimator("nope"); err == nil {
		t.Error("unknown estimator accepted")
	}
}
