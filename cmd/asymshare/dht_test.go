package main

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"asymshare/internal/auth"
	"asymshare/internal/dht"
	"asymshare/internal/peer"
	"asymshare/internal/store"
)

func startDHT(t *testing.T) *dht.Node {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n, err := dht.NewNode(ln.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.StartListener(ln); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// TestShareFetchViaDHT drives the -dht flag end to end.
func TestShareFetchViaDHT(t *testing.T) {
	dir := t.TempDir()
	keyPath := filepath.Join(dir, "user.key")
	var discard bytes.Buffer
	if err := run([]string{"keygen", "-out", keyPath}, &discard); err != nil {
		t.Fatal(err)
	}

	boot := startDHT(t)
	second := startDHT(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := second.Join(ctx, boot.Addr()); err != nil {
		t.Fatal(err)
	}

	var addrs []string
	for i := 0; i < 2; i++ {
		id, err := auth.NewIdentity()
		if err != nil {
			t.Fatal(err)
		}
		node, err := peer.New(peer.Config{Identity: id, Store: store.NewMemory()})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		addrs = append(addrs, node.Addr().String())
	}

	filePath := filepath.Join(dir, "d.bin")
	data := make([]byte, 20<<10)
	rand.New(rand.NewSource(4)).Read(data)
	if err := os.WriteFile(filePath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	handlePath := filepath.Join(dir, "d.handle")
	var shareOut bytes.Buffer
	err := run([]string{"share", "-key", keyPath, "-file", filePath,
		"-peers", strings.Join(addrs, ","), "-out", handlePath,
		"-dht", boot.Addr()}, &shareOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(shareOut.String(), "announced") {
		t.Errorf("share output: %q", shareOut.String())
	}
	m := regexp.MustCompile(`secret \(keep private!\): ([0-9a-f]+)`).FindStringSubmatch(shareOut.String())
	if m == nil {
		t.Fatal("no secret printed")
	}
	outPath := filepath.Join(dir, "d.out")
	err = run([]string{"fetch", "-key", keyPath, "-handle", handlePath,
		"-secret", m[1], "-out", outPath, "-dht", second.Addr()}, &discard)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("DHT-resolved CLI fetch mismatch")
	}
}
