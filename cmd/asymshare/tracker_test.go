package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"asymshare/internal/auth"
	"asymshare/internal/peer"
	"asymshare/internal/store"
	"asymshare/internal/tracker"
)

// TestShareFetchViaTracker drives the -tracker path: share announces,
// fetch resolves peers through the tracker instead of the handle list.
func TestShareFetchViaTracker(t *testing.T) {
	dir := t.TempDir()
	keyPath := filepath.Join(dir, "user.key")
	var discard bytes.Buffer
	if err := run([]string{"keygen", "-out", keyPath}, &discard); err != nil {
		t.Fatal(err)
	}

	trk := tracker.NewServer(0)
	if err := trk.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { trk.Close() })

	var addrs []string
	for i := 0; i < 2; i++ {
		id, err := auth.NewIdentity()
		if err != nil {
			t.Fatal(err)
		}
		node, err := peer.New(peer.Config{Identity: id, Store: store.NewMemory()})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		addrs = append(addrs, node.Addr().String())
	}

	filePath := filepath.Join(dir, "payload.bin")
	data := make([]byte, 30<<10)
	rand.New(rand.NewSource(8)).Read(data)
	if err := os.WriteFile(filePath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	handlePath := filepath.Join(dir, "payload.handle")
	var shareOut bytes.Buffer
	err := run([]string{
		"share", "-key", keyPath, "-file", filePath,
		"-peers", strings.Join(addrs, ","),
		"-out", handlePath, "-tracker", trk.Addr().String(),
	}, &shareOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(shareOut.String(), "announced") {
		t.Errorf("share output missing announce: %q", shareOut.String())
	}
	m := regexp.MustCompile(`secret \(keep private!\): ([0-9a-f]+)`).FindStringSubmatch(shareOut.String())
	if m == nil {
		t.Fatal("no secret printed")
	}

	outPath := filepath.Join(dir, "payload.out")
	var fetchOut bytes.Buffer
	err = run([]string{
		"fetch", "-key", keyPath, "-handle", handlePath,
		"-secret", m[1], "-out", outPath, "-tracker", trk.Addr().String(),
	}, &fetchOut)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("tracker-resolved fetch differs from original")
	}
}
