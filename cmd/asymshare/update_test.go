package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"asymshare/internal/auth"
	"asymshare/internal/peer"
	"asymshare/internal/store"
)

// TestUpdateAndListSubcommands drives share -> update -> fetch -> list
// end to end through the CLI.
func TestUpdateAndListSubcommands(t *testing.T) {
	dir := t.TempDir()
	keyPath := filepath.Join(dir, "user.key")
	var discard bytes.Buffer
	if err := run([]string{"keygen", "-out", keyPath}, &discard); err != nil {
		t.Fatal(err)
	}

	id, err := auth.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	node, err := peer.New(peer.Config{Identity: id, Store: store.NewMemory()})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	addr := node.Addr().String()

	oldPath := filepath.Join(dir, "v1.bin")
	oldData := make([]byte, 20<<10)
	rand.New(rand.NewSource(1)).Read(oldData)
	if err := os.WriteFile(oldPath, oldData, 0o644); err != nil {
		t.Fatal(err)
	}

	handlePath := filepath.Join(dir, "v.handle")
	var shareOut bytes.Buffer
	if err := run([]string{"share", "-key", keyPath, "-file", oldPath, "-peers", addr, "-out", handlePath}, &shareOut); err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`secret \(keep private!\): ([0-9a-f]+)`).FindStringSubmatch(shareOut.String())
	if m == nil {
		t.Fatal("no secret printed")
	}
	secret := m[1]

	// Edit the file in place and push the delta.
	newData := bytes.Clone(oldData)
	copy(newData[5000:5100], bytes.Repeat([]byte{0x42}, 100))
	newPath := filepath.Join(dir, "v2.bin")
	if err := os.WriteFile(newPath, newData, 0o644); err != nil {
		t.Fatal(err)
	}
	var updOut bytes.Buffer
	err = run([]string{"update", "-key", keyPath, "-handle", handlePath,
		"-secret", secret, "-old", oldPath, "-new", newPath}, &updOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(updOut.String(), "patched 1 chunks") {
		t.Errorf("update output: %q", updOut.String())
	}

	// Fetch returns the new version.
	outPath := filepath.Join(dir, "v.out")
	if err := run([]string{"fetch", "-key", keyPath, "-handle", handlePath,
		"-secret", secret, "-out", outPath}, &discard); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Fatal("fetched file is not the updated version")
	}

	// List shows the stored generation.
	var listOut bytes.Buffer
	if err := run([]string{"list", "-key", keyPath, "-peer", addr}, &listOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(listOut.String(), "1 stored generations") {
		t.Errorf("list output: %q", listOut.String())
	}
}

func TestUpdateListMissingFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"update", "-key", "k"}, &out); err == nil {
		t.Error("update without required flags accepted")
	}
	if err := run([]string{"list"}, &out); err == nil {
		t.Error("list without required flags accepted")
	}
}

func TestAuditRepairSubcommands(t *testing.T) {
	dir := t.TempDir()
	keyPath := filepath.Join(dir, "user.key")
	var discard bytes.Buffer
	if err := run([]string{"keygen", "-out", keyPath}, &discard); err != nil {
		t.Fatal(err)
	}
	st := store.NewMemory()
	id, err := auth.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	node, err := peer.New(peer.Config{Identity: id, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	addr := node.Addr().String()

	filePath := filepath.Join(dir, "f.bin")
	data := make([]byte, 12<<10)
	rand.New(rand.NewSource(2)).Read(data)
	if err := os.WriteFile(filePath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	handlePath := filepath.Join(dir, "f.handle")
	var shareOut bytes.Buffer
	if err := run([]string{"share", "-key", keyPath, "-file", filePath, "-peers", addr, "-out", handlePath}, &shareOut); err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`secret \(keep private!\): ([0-9a-f]+)`).FindStringSubmatch(shareOut.String())
	if m == nil {
		t.Fatal("no secret printed")
	}

	var auditOut bytes.Buffer
	if err := run([]string{"audit", "-key", keyPath, "-handle", handlePath}, &auditOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(auditOut.String(), "replication healthy") {
		t.Errorf("audit output: %q", auditOut.String())
	}

	// Lose the data and verify audit flags it and repair restores it.
	for _, fid := range st.Files() {
		if err := st.Drop(fid); err != nil {
			t.Fatal(err)
		}
	}
	auditOut.Reset()
	if err := run([]string{"audit", "-key", keyPath, "-handle", handlePath}, &auditOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(auditOut.String(), "DEGRADED") {
		t.Errorf("audit after loss: %q", auditOut.String())
	}
	var repairOut bytes.Buffer
	if err := run([]string{"repair", "-key", keyPath, "-handle", handlePath,
		"-secret", m[1], "-file", filePath}, &repairOut); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(repairOut.String(), "re-uploaded 0 messages") {
		t.Errorf("repair output: %q", repairOut.String())
	}
	auditOut.Reset()
	if err := run([]string{"audit", "-key", keyPath, "-handle", handlePath}, &auditOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(auditOut.String(), "replication healthy") {
		t.Errorf("audit after repair: %q", auditOut.String())
	}
}

func TestPlacedShareSubcommand(t *testing.T) {
	dir := t.TempDir()
	keyPath := filepath.Join(dir, "user.key")
	var discard bytes.Buffer
	if err := run([]string{"keygen", "-out", keyPath}, &discard); err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for i := 0; i < 3; i++ {
		id, err := auth.NewIdentity()
		if err != nil {
			t.Fatal(err)
		}
		node, err := peer.New(peer.Config{Identity: id, Store: store.NewMemory()})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		addrs = append(addrs, node.Addr().String())
	}
	filePath := filepath.Join(dir, "p.bin")
	data := make([]byte, 8<<10)
	rand.New(rand.NewSource(3)).Read(data)
	if err := os.WriteFile(filePath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	handlePath := filepath.Join(dir, "p.handle")
	var shareOut bytes.Buffer
	err := run([]string{"share", "-key", keyPath, "-file", filePath,
		"-peers", strings.Join(addrs, ","), "-out", handlePath, "-replicas", "2"}, &shareOut)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`secret \(keep private!\): ([0-9a-f]+)`).FindStringSubmatch(shareOut.String())
	if m == nil {
		t.Fatal("no secret printed")
	}
	outPath := filepath.Join(dir, "p.out")
	if err := run([]string{"fetch", "-key", keyPath, "-handle", handlePath,
		"-secret", m[1], "-out", outPath}, &discard); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("placed share fetch mismatch")
	}
}
