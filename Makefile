GO ?= go

.PHONY: build test race-audit race-metrics vet bench-metrics chaos fuzz-smoke ci check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race-audit exercises the audit path — the auditor itself plus the
# ledger it debits, the wire frames it rides on, and the store it
# samples — under the race detector. Run before touching any of them.
race-audit: vet
	$(GO) test -race ./internal/audit/... ./internal/fairshare/... ./internal/wire/... ./internal/store/...

# race-metrics exercises the observability layer and everything that
# writes into it concurrently: scrape-while-write in the registry, the
# shaped serving path, and the token bucket's SetRate/WaitN storm.
race-metrics: vet
	$(GO) test -race ./internal/metrics/... ./internal/peer/... ./internal/ratelimit/... ./internal/store/...

# bench-metrics reports allocs/op for the metrics hot path; Counter.Inc
# and Histogram.Observe must stay at 0 (TestHotPathAllocFree enforces
# it, this target is for eyeballing the numbers).
bench-metrics:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/metrics/

# chaos runs the deterministic fault-injection suite — the netsim
# fabric's own tests plus the end-to-end harness (tracker + peers +
# clients over simulated partitions, blackholes and drops) — twice,
# under the race detector. Every harness test logs its fabric seed
# (shown with -v and on failure); replay an exact failure with
# NETSIM_SEED=<seed> make chaos.
chaos: vet
	$(GO) test -race -count=2 ./internal/netsim/...

# fuzz-smoke gives each wire fuzz target a short adversarial run on
# top of the checked-in seed corpus (which plain `go test` already
# replays). New crashers land in internal/wire/testdata/fuzz/.
fuzz-smoke:
	$(GO) test -fuzz FuzzReadFrame -fuzztime 10s -run '^$$' ./internal/wire/
	$(GO) test -fuzz FuzzHandshakeResponder -fuzztime 10s -run '^$$' ./internal/wire/
	$(GO) test -fuzz FuzzHandshakeInitiator -fuzztime 10s -run '^$$' ./internal/wire/

# ci is what the GitHub workflow runs.
ci: vet build test race-metrics race-audit chaos

check: build test race-audit race-metrics chaos
