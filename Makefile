GO ?= go

.PHONY: build test race-audit race-metrics vet bench-metrics ci check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race-audit exercises the audit path — the auditor itself plus the
# ledger it debits, the wire frames it rides on, and the store it
# samples — under the race detector. Run before touching any of them.
race-audit: vet
	$(GO) test -race ./internal/audit/... ./internal/fairshare/... ./internal/wire/... ./internal/store/...

# race-metrics exercises the observability layer and everything that
# writes into it concurrently: scrape-while-write in the registry, the
# shaped serving path, and the token bucket's SetRate/WaitN storm.
race-metrics: vet
	$(GO) test -race ./internal/metrics/... ./internal/peer/... ./internal/ratelimit/... ./internal/store/...

# bench-metrics reports allocs/op for the metrics hot path; Counter.Inc
# and Histogram.Observe must stay at 0 (TestHotPathAllocFree enforces
# it, this target is for eyeballing the numbers).
bench-metrics:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/metrics/

# ci is what the GitHub workflow runs.
ci: vet build test race-metrics race-audit

check: build test race-audit race-metrics
