GO ?= go

.PHONY: build test race-audit vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race-audit exercises the audit path — the auditor itself plus the
# ledger it debits, the wire frames it rides on, and the store it
# samples — under the race detector. Run before touching any of them.
race-audit: vet
	$(GO) test -race ./internal/audit/... ./internal/fairshare/... ./internal/wire/... ./internal/store/...

check: build test race-audit
