GO ?= go

.PHONY: build test race-audit race-metrics race-codec race-store race-dht race-contract race-wire race-fairshare race-overload vet bench-alloc bench-alloc-smoke bench-metrics bench-rlnc bench-rlnc-smoke bench-swarm bench-swarm-smoke bench-wire bench-wire-smoke chaos churn-smoke crash-smoke fuzz-smoke overload-smoke swarm-smoke ci check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race-audit exercises the audit path — the auditor itself plus the
# ledger it debits, the wire frames it rides on, and the store it
# samples — under the race detector. Run before touching any of them.
race-audit: vet
	$(GO) test -race ./internal/audit/... ./internal/fairshare/... ./internal/wire/... ./internal/store/...

# race-metrics exercises the observability layer and everything that
# writes into it concurrently: scrape-while-write in the registry, the
# shaped serving path, and the token bucket's SetRate/WaitN storm.
race-metrics: vet
	$(GO) test -race ./internal/metrics/... ./internal/peer/... ./internal/ratelimit/... ./internal/store/...

# race-codec exercises the parallel decode engine and everything that
# feeds it: concurrent producers into rlnc.Pipeline, the GF kernels
# under them, and the client fetch path that shares one sink across
# per-peer goroutines.
race-codec: vet
	$(GO) test -race ./internal/rlnc/... ./internal/gf/... ./internal/client/...

# race-wire is the zero-copy hot-path regression suite under the race
# detector: the buffer pool's refcounting, the FrameReader/FrameWriter
# differential and allocation proofs, AddBytes into the pipeline, and
# the muxed PeerSession (demux goroutine vs per-stream consumers).
# The alloc gates themselves (`TestFrame*SteadyStateAllocs`,
# `TestMuxedDataPathSteadyStateAllocs`, `TestAddBytesSteadyStateAllocs`)
# only count allocations without -race, so run the wire package plain
# too.
race-wire: vet
	$(GO) test -race ./internal/wire/... ./internal/rlnc/... ./internal/client/... ./internal/peer/...
	$(GO) test -run 'SteadyStateAllocs' -count=1 ./internal/wire/ ./internal/rlnc/

# race-store exercises the durability layer under the race detector,
# twice: the fsx filesystem seam and fault injector, the journaled
# store's crash-point and fault sweeps, and the ledger checkpointer.
# Run before touching anything that fsyncs.
race-store: vet
	$(GO) test -race -count=2 ./internal/fsx/... ./internal/store/... ./internal/fairshare/...

# race-dht exercises the trackerless discovery stack under the race
# detector: the Kademlia node (tables, iterative lookups, concurrent
# announce/lookup storms), the Discovery seam with its failover chain,
# and the rumor-gossip engine's exchange/round machinery.
race-dht: vet
	$(GO) test -race ./internal/dht/... ./internal/discovery/... ./internal/gossip/...

# race-fairshare exercises the adaptive-allocation stack under the
# race detector: the policy seam and its property/fuzz-seed suites,
# the sharded decaying ledger, the capacity estimators, and the peer
# realloc loop that consumes all three — plus the scratch-reuse alloc
# gate, which only counts allocations without -race, so the fairshare
# package runs plain too.
race-fairshare: vet
	$(GO) test -race ./internal/fairshare/... ./internal/estimate/... ./internal/peer/...
	$(GO) test -run 'TestScratchReuseNoAlloc' -count=1 ./internal/fairshare/

# race-contract exercises the storage-contract subsystem under the
# race detector: the journaled book/set, the wire frames, the peer
# handlers and client RPCs, and the proactive repair daemon whose
# ticker races its own Close.
race-contract: vet
	$(GO) test -race ./internal/contract/... ./internal/repair/... ./internal/peer/... ./internal/client/...

# churn-smoke is the proactive-repair acceptance slice: 30% of the
# storage peers holding a file are killed and blackholed, the repair
# daemon restores the replica watermark on spare peers within a 3x
# traffic budget, a cold client still fetches byte-identical plaintext,
# and contract state on both sides survives a power cut — under -race.
churn-smoke:
	$(GO) test -race -run TestChurnRepairKeepsFileFetchable ./internal/netsim/harness/

# swarm-smoke is the CI-sized trackerless acceptance slice: a 128-peer
# netsim swarm gossips a file, the tracker is killed mid-run, and a
# cold client still fetches byte-identical plaintext through DHT
# discovery — plus the failover-direction tests — under -race.
swarm-smoke:
	$(GO) test -race -run 'TestSwarmSmoke|TestDiscoveryFailoverNetsim' ./internal/netsim/harness/

# overload-smoke is the overload-resilience acceptance slice: a 4x
# flash crowd against one admission-capped peer (goodput holds, sheds
# hit free riders in standing order and never the top quartile, shed
# clients honor the RETRY_AFTER hint), a blackholed peer survived
# within 2x the no-fault baseline via hedged fetches with breaker
# quarantine and half-open recovery, and a stalled chunk re-issued on
# the next-healthiest peer — plus the deterministic peer-side
# admission, preemption, brownout and deadline-expiry unit suite and
# the client-side breaker/session regressions.
overload-smoke:
	$(GO) test -run 'TestFlashCrowdShedsFreeRidersAndKeepsGoodput|TestHedgedFetchSurvivesBlackholedPeerWithinTwiceBaseline|TestHedgeReissuesStalledChunkOnNextPeer' \
		./internal/netsim/harness/
	$(GO) test -run 'Admission|Shed|Brownout|Expired|Breaker|Hedge|Busy|Deadline|DuplicateStreamError' \
		./internal/peer/ ./internal/client/ ./internal/wire/

# race-overload is the same acceptance slice under the race detector:
# the shared-sink hedge path (per-chunk progress counters vs the demux
# goroutine), the breaker state machine, and the peer's admission
# bookkeeping are all cross-goroutine by construction. The admission
# alloc gates (TestAdmission*Allocs) only count without -race, so the
# peer package runs those plain too.
race-overload: vet
	$(GO) test -race -run 'TestFlashCrowdShedsFreeRidersAndKeepsGoodput|TestHedgedFetchSurvivesBlackholedPeerWithinTwiceBaseline|TestHedgeReissuesStalledChunkOnNextPeer' \
		./internal/netsim/harness/
	$(GO) test -race ./internal/peer/ ./internal/client/
	$(GO) test -run 'TestAdmissionSteadyStateAllocs|TestAdmissionRefusalScanAllocs' -count=1 ./internal/peer/

# crash-smoke is the crash-recovery acceptance slice on its own: every
# power-cut and I/O-fault sweep over the journaled store, the
# checkpointer's dual-slot sweeps, and the end-to-end
# kill-peer-mid-dissemination scenario in the harness.
crash-smoke:
	$(GO) test -run 'CrashPointSweep|FaultInjectionSweep|CheckpointCrashSweep|CheckpointFaultSweep|JournalRecoveryTable|PeerCrashMidDissemination' \
		./internal/store/ ./internal/fairshare/ ./internal/netsim/harness/

# bench-metrics reports allocs/op for the metrics hot path; Counter.Inc
# and Histogram.Observe must stay at 0 (TestHotPathAllocFree enforces
# it, this target is for eyeballing the numbers).
bench-metrics:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/metrics/

# bench-rlnc measures the codec engine: the GF region kernels, both
# decode engines head to head, and the codec grid that backs
# EXPERIMENTS.md, leaving the machine-readable report in
# BENCH_rlnc.json (decode-pipeline must show >= 2x decode-sequential
# MB/s at p=8, k=64; TestPipelineSteadyStateAllocs pins the 0 B/op
# claim).
bench-rlnc:
	$(GO) test -bench 'BenchmarkMulAddSlice|BenchmarkDecode' -benchmem -run '^$$' ./internal/gf/ ./internal/rlnc/
	$(GO) run ./cmd/benchrlc -codec -size 1048576 -reps 5 -json BENCH_rlnc.json

# bench-rlnc-smoke is the quick CI variant: tiny generations, one rep,
# throwaway report — it proves the grid runs, not the numbers.
bench-rlnc-smoke:
	$(GO) run ./cmd/benchrlc -codec -size 65536 -reps 1 -json /tmp/BENCH_rlnc_smoke.json

# bench-wire measures the zero-copy wire hot path end to end over
# loopback TCP — decode-pipeline ceiling, transport-only throughput,
# and the muxed fetch — and gates the fetch at 85% of the achievable
# composite (see cmd/benchwire). Refreshes BENCH_wire.json.
bench-wire:
	$(GO) run ./cmd/benchwire -sizes 262144,1048576 -streams 1,4 -workers 0,2 -reps 3 -gate 0.85 -json BENCH_wire.json

# bench-wire-smoke is the quick CI variant: one small cell, throwaway
# report, no gate (shared runners make throughput ratios too noisy to
# fail a build on).
bench-wire-smoke:
	$(GO) run ./cmd/benchwire -sizes 262144 -streams 1,4 -reps 2 -json /tmp/BENCH_wire_smoke.json

# bench-swarm measures trackerless scaling — DHT lookup hops and gossip
# dissemination rounds/time against swarm size — leaving the
# machine-readable report in BENCH_swarm.json (median hops must grow
# sub-linearly in N; see EXPERIMENTS.md).
bench-swarm:
	$(GO) run ./cmd/benchswarm -sizes 64,256,1024 -samples 32 -json BENCH_swarm.json

# bench-swarm-smoke is the quick CI variant: one small swarm, throwaway
# report — it proves the pipeline runs, not the scaling curve.
bench-swarm-smoke:
	$(GO) run ./cmd/benchswarm -sizes 64 -samples 8 -json /tmp/BENCH_swarm_smoke.json

# bench-alloc measures the allocation subsystem — the policy grid
# (fairness, free-rider payoff, convergence, bounded-ledger fidelity)
# and the bounded-ledger realloc tick against 10^5 distinct requesters
# — leaving the machine-readable report in BENCH_alloc.json (see
# EXPERIMENTS.md; sharded entries must stay at the bound and the tick
# must scale with the active set, not the distinct population).
bench-alloc:
	$(GO) run ./cmd/benchalloc -slots 600 -json BENCH_alloc.json

# bench-alloc-smoke is the quick CI variant: a short run, throwaway
# report — it proves the grid and tick bench run, not the numbers.
bench-alloc-smoke:
	$(GO) run ./cmd/benchalloc -slots 120 -json /tmp/BENCH_alloc_smoke.json

# chaos runs the deterministic fault-injection suite — the netsim
# fabric's own tests plus the end-to-end harness (tracker + peers +
# clients over simulated partitions, blackholes and drops) — twice,
# under the race detector. Every harness test logs its fabric seed
# (shown with -v and on failure); replay an exact failure with
# NETSIM_SEED=<seed> make chaos.
chaos: vet
	$(GO) test -race -count=2 ./internal/netsim/...

# fuzz-smoke gives each wire fuzz target a short adversarial run on
# top of the checked-in seed corpus (which plain `go test` already
# replays). New crashers land in internal/wire/testdata/fuzz/.
fuzz-smoke:
	$(GO) test -fuzz FuzzReadFrame -fuzztime 10s -run '^$$' ./internal/wire/
	$(GO) test -fuzz FuzzFrameReader -fuzztime 10s -run '^$$' ./internal/wire/
	$(GO) test -fuzz FuzzHandshakeResponder -fuzztime 10s -run '^$$' ./internal/wire/
	$(GO) test -fuzz FuzzHandshakeInitiator -fuzztime 10s -run '^$$' ./internal/wire/

# ci is what the GitHub workflow runs.
ci: vet build test race-metrics race-audit race-codec race-store race-dht race-contract race-wire race-fairshare swarm-smoke churn-smoke overload-smoke race-overload chaos

check: build test race-audit race-metrics race-codec race-store race-dht race-contract race-wire race-fairshare swarm-smoke churn-smoke overload-smoke race-overload chaos
